//! A dense fixed-universe bit set, the workhorse of the iterative bit-vector
//! dataflow problems (liveness here; the `USED_C` consistency problem in the
//! allocator crate).

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-size set of small integers backed by `u64` words.
///
/// # Examples
///
/// ```
/// use lsra_analysis::BitSet;
///
/// let mut live = BitSet::new(128);
/// live.insert(3);
/// live.insert(90);
/// assert!(live.contains(3));
/// assert_eq!(live.iter().collect::<Vec<_>>(), vec![3, 90]);
///
/// let mut other = BitSet::new(128);
/// other.insert(90);
/// live.difference_with(&other);
/// assert!(!live.contains(90));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(WORD_BITS)], len }
    }

    /// The universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let newly = *w & mask == 0;
        *w |= mask;
        newly
    }

    /// Removes `i`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was = *w & mask != 0;
        *w &= !mask;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Re-sizes the universe to `0..len` and empties the set, reusing the
    /// word buffer (for scratch arenas recycled across functions).
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
    }

    /// Sets every element of the universe.
    pub fn fill(&mut self) {
        self.words.fill(!0);
        self.trim();
    }

    fn trim(&mut self) {
        let extra = self.words.len() * WORD_BITS - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self -= other`; returns true if `self` changed.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Computes `gen ∪ (other ∖ kill)` into `self` (the classic dataflow
    /// transfer); returns true if `self` changed.
    pub fn assign_transfer(&mut self, gen: &BitSet, other: &BitSet, kill: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for i in 0..self.words.len() {
            let new = gen.words[i] | (other.words[i] & !kill.words[i]);
            changed |= new != self.words[i];
            self.words[i] = new;
        }
        changed
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word_idx: 0, word: self.words.first().copied().unwrap_or(0) }
    }

    /// Makes `self` an exact copy of `other`, reusing the word buffer.
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Calls `f` for each element of `self ∖ other`, in increasing order —
    /// a word-at-a-time set difference that never materializes the result.
    pub fn for_each_difference(&self, other: &BitSet, mut f: impl FnMut(usize)) {
        debug_assert_eq!(self.len, other.len);
        for (wi, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut word = a & !b;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                f(wi * WORD_BITS + bit);
            }
        }
    }
}

/// Iterator over a [`BitSet`]'s elements.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    word: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.word = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports no change");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert!(!s.contains(129));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn set_algebra() {
        let mut a: BitSet = [1, 3, 5, 100].into_iter().collect();
        let mut b = BitSet::new(a.universe());
        b.insert(3);
        b.insert(7);
        assert!(a.union_with(&b));
        assert!(a.contains(7));
        assert!(!a.union_with(&b), "idempotent union reports no change");
        assert!(a.difference_with(&b));
        assert!(!a.contains(3) && !a.contains(7));
        let c: BitSet = [1, 5].into_iter().collect();
        let mut c2 = BitSet::new(a.universe());
        for i in &c {
            c2.insert(i);
        }
        a.intersect_with(&c2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn transfer_function() {
        // out = gen ∪ (in ∖ kill)
        let universe = 8;
        let gen: BitSet = {
            let mut s = BitSet::new(universe);
            s.insert(0);
            s
        };
        let kill: BitSet = {
            let mut s = BitSet::new(universe);
            s.insert(1);
            s
        };
        let inp: BitSet = {
            let mut s = BitSet::new(universe);
            s.insert(1);
            s.insert(2);
            s
        };
        let mut out = BitSet::new(universe);
        assert!(out.assign_transfer(&gen, &inp, &kill));
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!out.assign_transfer(&gen, &inp, &kill), "fixed point");
    }

    #[test]
    fn fill_respects_universe() {
        let mut s = BitSet::new(70);
        s.fill();
        assert_eq!(s.count(), 70);
        assert!(!s.contains(70));
    }

    #[test]
    fn iteration_order() {
        let s: BitSet = [64, 2, 63, 128].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 63, 64, 128]);
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(5));
    }
}

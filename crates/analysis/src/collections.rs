//! Flat, allocation-friendly containers for the allocation hot path.
//!
//! The allocators' per-temporary state used to live in nested structures —
//! `Vec<Vec<Segment>>` lifetime rows, `BTreeMap` interval maps, boolean
//! vectors cleared at every block — whose pointer-chasing and O(universe)
//! resets dominate at 10^5–10^6 instructions. This module holds the flat
//! replacements, shared by `lsra-core` and `lsra-poletto`:
//!
//! * [`Csr`] — compressed-sparse-row storage: all rows in one backing
//!   array plus an offsets array (the regalloc2-style layout);
//! * [`SmallVec`] — a fixed inline buffer that spills to the heap, for the
//!   tiny per-instruction scratch lists;
//! * [`IntervalMap`] — a sorted-vector interval map keyed by segment start,
//!   drop-in for the `BTreeMap<u32, (u32, Option<Temp>)>` it replaces;
//! * [`EpochSet`] — a stamped membership set whose per-block reset is O(1)
//!   instead of O(universe).

use lsra_ir::Temp;
use std::mem::MaybeUninit;

/// Compressed-sparse-row storage: `rows()` slices share one flat backing
/// array, indexed through an offsets array of row boundaries.
///
/// Rows are appended in order with [`Csr::push`] + [`Csr::finish_row`];
/// a cleared `Csr` keeps its capacity, so a scratch arena can recycle it
/// across functions.
///
/// # Examples
///
/// ```
/// use lsra_analysis::collections::Csr;
///
/// let mut c: Csr<u32> = Csr::new();
/// c.push(1);
/// c.push(2);
/// c.finish_row();
/// c.finish_row(); // an empty row
/// c.push(3);
/// c.finish_row();
/// assert_eq!(c.rows(), 3);
/// assert_eq!(c.row(0), &[1, 2]);
/// assert_eq!(c.row(1), &[]);
/// assert_eq!(c.row(2), &[3]);
/// ```
#[derive(Clone, Debug)]
pub struct Csr<T> {
    /// Row boundaries: row `r` is `data[offsets[r] as usize..offsets[r + 1] as usize]`.
    offsets: Vec<u32>,
    data: Vec<T>,
}

impl<T> Default for Csr<T> {
    fn default() -> Self {
        Csr::new()
    }
}

impl<T> Csr<T> {
    /// An empty container with zero rows.
    pub fn new() -> Self {
        Csr { offsets: vec![0], data: Vec::new() }
    }

    /// Removes every row, keeping both buffers' capacity.
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.data.clear();
    }

    /// Number of finished rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total elements across all rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no element has been pushed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `v` to the currently open row.
    #[inline]
    pub fn push(&mut self, v: T) {
        self.data.push(v);
    }

    /// Closes the open row (possibly empty) and opens the next.
    #[inline]
    pub fn finish_row(&mut self) {
        self.offsets.push(self.data.len() as u32);
    }

    /// The finished row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }

    /// Mutable view of the currently open (unfinished) row, e.g. to sort it
    /// before [`Csr::finish_row`].
    #[inline]
    pub fn open_row_mut(&mut self) -> &mut [T] {
        let start = *self.offsets.last().unwrap() as usize;
        &mut self.data[start..]
    }

    /// Assembles a `Csr` from raw parts (for counting-sort style builds
    /// that compute all offsets up front).
    ///
    /// `offsets` must be monotone, start at 0, and end at `data.len()`.
    pub fn from_parts(offsets: Vec<u32>, data: Vec<T>) -> Self {
        debug_assert!(offsets.first() == Some(&0));
        debug_assert!(offsets.last() == Some(&(data.len() as u32)));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr { offsets, data }
    }

    /// Dismantles the container so its buffers can be recycled.
    pub fn into_parts(self) -> (Vec<u32>, Vec<T>) {
        (self.offsets, self.data)
    }
}

/// A vector with `N` elements of inline storage that spills to the heap.
///
/// Restricted to `Copy` element types (all hot-path uses are small `Copy`
/// tuples), which keeps the inline buffer free of drop obligations.
///
/// # Examples
///
/// ```
/// use lsra_analysis::collections::SmallVec;
///
/// let mut v: SmallVec<u32, 4> = SmallVec::new();
/// for i in 0..6 {
///     v.push(i);
/// }
/// assert_eq!(&v[..], &[0, 1, 2, 3, 4, 5]);
/// assert!(v.spilled());
/// v.clear();
/// assert!(v.is_empty());
/// ```
#[derive(Debug)]
pub struct SmallVec<T: Copy, const N: usize> {
    inline: [MaybeUninit<T>; N],
    /// Length of the inline prefix; ignored once spilled.
    len: usize,
    spill: Option<Vec<T>>,
}

impl<T: Copy, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Copy, const N: usize> SmallVec<T, N> {
    /// An empty vector using inline storage.
    pub fn new() -> Self {
        SmallVec { inline: [MaybeUninit::uninit(); N], len: 0, spill: None }
    }

    /// Appends an element, moving to the heap when the inline buffer fills.
    #[inline]
    pub fn push(&mut self, v: T) {
        if let Some(s) = &mut self.spill {
            s.push(v);
        } else if self.len < N {
            self.inline[self.len] = MaybeUninit::new(v);
            self.len += 1;
        } else {
            let mut s = Vec::with_capacity(N * 2);
            s.extend_from_slice(self.as_slice());
            s.push(v);
            self.len = 0;
            self.spill = Some(s);
        }
    }

    /// Removes and returns the element at `i`, replacing it with the last
    /// element (O(1), order not preserved).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: usize) -> T {
        if let Some(s) = &mut self.spill {
            return s.swap_remove(i);
        }
        assert!(i < self.len, "swap_remove index {i} out of bounds {}", self.len);
        // SAFETY: `inline[..len]` is initialised and `i < len`.
        let v = unsafe { self.inline[i].assume_init() };
        self.len -= 1;
        self.inline[i] = self.inline[self.len];
        v
    }

    /// Removes all elements. A heap spill keeps its capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        if let Some(s) = &mut self.spill {
            s.clear();
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once elements have moved to the heap.
    pub fn spilled(&self) -> bool {
        self.spill.is_some()
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.spill {
            Some(s) => s,
            // SAFETY: `inline[..len]` was written by `push` and `T: Copy`.
            None => unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr() as *const T, self.len)
            },
        }
    }
}

impl<T: Copy, const N: usize> std::ops::Deref for SmallVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One register's set of occupied intervals, keyed by interval start.
///
/// A sorted-vector drop-in for the `BTreeMap<u32, (u32, Option<Temp>)>` the
/// interval allocators used: inserting an interval with an existing start
/// replaces it, [`IntervalMap::overlapping_owner`] finds an overlap through
/// one binary search, and iteration is in ascending start order. Interval
/// counts per register are small (one per lifetime segment assigned to the
/// register), so the O(n) insert shift beats the tree's pointer chasing.
#[derive(Clone, Debug, Default)]
pub struct IntervalMap {
    /// `(start, end, owner)`, sorted by `start` (unique). `None` owners are
    /// precolored blocks.
    entries: Vec<(u32, u32, Option<Temp>)>,
}

impl IntervalMap {
    /// An empty map.
    pub fn new() -> Self {
        IntervalMap::default()
    }

    /// Removes every interval, keeping capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Inserts `[start, end]` for `owner`, replacing any interval with the
    /// same start (BTreeMap insert semantics).
    pub fn insert(&mut self, start: u32, end: u32, owner: Option<Temp>) {
        match self.entries.binary_search_by_key(&start, |e| e.0) {
            Ok(i) => self.entries[i] = (start, end, owner),
            Err(i) => self.entries.insert(i, (start, end, owner)),
        }
    }

    /// The owner of some interval overlapping `[start, end]`, if any
    /// (`Some(None)` for a precolored block).
    ///
    /// Like the BTreeMap original, this inspects only the interval with the
    /// greatest start `<= end` — sufficient when the stored intervals are
    /// mutually disjoint, which register occupancy maps are.
    pub fn overlapping_owner(&self, start: u32, end: u32) -> Option<Option<Temp>> {
        // An interval [s, e] overlaps [start, end] iff s <= end && e >= start.
        let i = self.entries.partition_point(|e| e.0 <= end);
        self.entries[..i].last().filter(|(_, e, _)| *e >= start).map(|(_, _, o)| *o)
    }

    /// True if any interval overlaps `[start, end]`.
    pub fn overlaps(&self, start: u32, end: u32) -> bool {
        self.overlapping_owner(start, end).is_some()
    }

    /// Removes every interval owned by `t` (order-preserving).
    pub fn remove_owner(&mut self, t: Temp) {
        self.entries.retain(|(_, _, o)| *o != Some(t));
    }

    /// All intervals as `(start, end, owner)`, ascending by start.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u32, Option<Temp>)> + '_ {
        self.entries.iter().copied()
    }

    /// Every interval overlapping `[start, end]`, ascending by start.
    ///
    /// Requires the stored intervals to be mutually disjoint (register
    /// occupancy maps are): disjoint intervals sorted by start are also
    /// sorted by end, so both window boundaries fall out of one
    /// `partition_point` each.
    pub fn overlapping_entries(
        &self,
        start: u32,
        end: u32,
    ) -> impl Iterator<Item = (u32, u32, Option<Temp>)> + '_ {
        let hi = self.entries.partition_point(|e| e.0 <= end);
        let lo = self.entries[..hi].partition_point(|e| e.1 < start);
        self.entries[lo..hi].iter().copied()
    }
}

/// A set over `0..universe` whose `clear` is O(1): membership is "stamp
/// equals current epoch", so advancing the epoch empties the set without
/// touching the stamp array.
///
/// The set also records insertion order, so a sparse iteration over the
/// members costs O(members) rather than O(universe).
///
/// # Examples
///
/// ```
/// use lsra_analysis::collections::EpochSet;
///
/// let mut s = EpochSet::new(100);
/// s.insert(7);
/// s.insert(42);
/// assert!(s.contains(7));
/// assert_eq!(s.touched(), &[7, 42]);
/// s.advance(); // O(1) clear
/// assert!(!s.contains(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EpochSet {
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl EpochSet {
    /// An empty set over `0..universe`.
    pub fn new(universe: usize) -> Self {
        EpochSet { stamp: vec![0; universe], epoch: 1, touched: Vec::new() }
    }

    /// Re-sizes to `universe` and empties the set, reusing the stamp buffer.
    pub fn reset(&mut self, universe: usize) {
        self.stamp.clear();
        self.stamp.resize(universe, 0);
        self.epoch = 1;
        self.touched.clear();
    }

    /// Empties the set in O(1) by advancing the epoch.
    pub fn advance(&mut self) {
        self.touched.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // One O(universe) re-zero every 2^32 advances.
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Inserts `i`; returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            return false;
        }
        self.stamp[i] = self.epoch;
        self.touched.push(i as u32);
        true
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// The members inserted this epoch, in insertion order.
    #[inline]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trip() {
        let mut c: Csr<(u32, u32)> = Csr::new();
        for r in 0..5u32 {
            for k in 0..r {
                c.push((r, k));
            }
            c.finish_row();
        }
        assert_eq!(c.rows(), 5);
        assert_eq!(c.row(0), &[]);
        assert_eq!(c.row(3), &[(3, 0), (3, 1), (3, 2)]);
        assert_eq!(c.len(), 10);
        let (off, data) = c.into_parts();
        let c2 = Csr::from_parts(off, data);
        assert_eq!(c2.row(4).len(), 4);
    }

    #[test]
    fn csr_open_row_mut_sorts_in_place() {
        let mut c: Csr<u32> = Csr::new();
        c.push(3);
        c.push(1);
        c.push(2);
        c.open_row_mut().sort_unstable();
        c.finish_row();
        assert_eq!(c.row(0), &[1, 2, 3]);
        c.clear();
        assert_eq!(c.rows(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn smallvec_inline_then_spill() {
        let mut v: SmallVec<u64, 3> = SmallVec::new();
        assert!(v.is_empty());
        v.push(10);
        v.push(20);
        v.push(30);
        assert!(!v.spilled());
        assert_eq!(&v[..], &[10, 20, 30]);
        v.push(40);
        assert!(v.spilled());
        assert_eq!(&v[..], &[10, 20, 30, 40]);
        assert_eq!(v.iter().sum::<u64>(), 100);
        v.clear();
        assert_eq!(v.len(), 0);
        v.push(1);
        assert_eq!(&v[..], &[1]);
    }

    #[test]
    fn interval_map_matches_btree_semantics() {
        use std::collections::BTreeMap;
        // Differential check against the exact structure it replaces.
        let mut map = IntervalMap::new();
        let mut reference: BTreeMap<u32, (u32, Option<Temp>)> = BTreeMap::new();
        let ops: &[(u32, u32, u32)] = &[
            (10, 20, 1),
            (30, 40, 2),
            (10, 15, 3), // same start: replaces
            (50, 60, 1),
            (5, 8, 4),
        ];
        for &(s, e, t) in ops {
            map.insert(s, e, Some(Temp(t)));
            reference.insert(s, (e, Some(Temp(t))));
        }
        for probe_start in 0..70u32 {
            let probe_end = probe_start + 4;
            let want = reference
                .range(..=probe_end)
                .next_back()
                .filter(|(_, (end, _))| *end >= probe_start)
                .map(|(_, (_, o))| *o);
            assert_eq!(
                map.overlapping_owner(probe_start, probe_end),
                want,
                "probe [{probe_start}, {probe_end}]"
            );
        }
        map.remove_owner(Temp(1));
        reference.retain(|_, (_, o)| *o != Some(Temp(1)));
        let got: Vec<_> = map.entries().collect();
        let want: Vec<_> = reference.iter().map(|(&s, &(e, o))| (s, e, o)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn epoch_set_advances_in_constant_time() {
        let mut s = EpochSet::new(10);
        assert!(s.insert(3));
        assert!(!s.insert(3), "double insert reports no change");
        s.insert(9);
        assert_eq!(s.touched(), &[3, 9]);
        s.advance();
        assert!(!s.contains(3));
        assert!(s.touched().is_empty());
        s.insert(0);
        assert_eq!(s.touched(), &[0]);
        s.reset(4);
        assert!(!s.contains(0));
    }

    #[test]
    fn epoch_set_survives_epoch_wraparound() {
        let mut s = EpochSet::new(4);
        s.insert(2);
        s.epoch = u32::MAX; // simulate 2^32 - 1 advances
        s.insert(1);
        s.advance(); // wraps: stamps re-zeroed
        assert!(!s.contains(1));
        assert!(!s.contains(2));
        s.insert(3);
        assert!(s.contains(3));
    }
}

//! A small generic solver for iterative bit-vector dataflow problems of the
//! gen/kill family — the machinery behind liveness, the allocator's
//! `USED_C` consistency problem (§2.4 of the paper), and spill-slot
//! liveness.
//!
//! All problems here use the classic transfer `in = gen ∪ (out ∖ kill)`
//! (backward) or its mirror (forward), with union as the meet. The solver
//! visits blocks in an order supplied by the caller and iterates to a fixed
//! point, reporting the iteration count (the paper's §2.6 leans on this
//! being 2–3 in practice).

use lsra_ir::{BlockId, Function};

use crate::bitset::BitSet;

/// The result of a backward gen/kill solve.
#[derive(Clone, Debug)]
pub struct BackwardSolution {
    /// `in[b] = gen[b] ∪ (out[b] ∖ kill[b])` at the fixed point.
    pub live_in: Vec<BitSet>,
    /// `out[b] = ∪ in[s]` over successors.
    pub live_out: Vec<BitSet>,
    /// Iterations taken to converge.
    pub iterations: u32,
}

/// Solves a backward gen/kill problem over `f`'s CFG.
///
/// `order` should list blocks in an order that converges quickly for
/// backward problems (reverse of a reverse postorder works well); blocks
/// not listed are still correct but may cost extra iterations if listed
/// orders skip them — pass every block of interest.
pub fn solve_backward(
    f: &Function,
    universe: usize,
    gen: &[BitSet],
    kill: &[BitSet],
    order: &[BlockId],
) -> BackwardSolution {
    let nb = f.num_blocks();
    debug_assert_eq!(gen.len(), nb);
    debug_assert_eq!(kill.len(), nb);
    let mut live_in = vec![BitSet::new(universe); nb];
    let mut live_out = vec![BitSet::new(universe); nb];
    let mut iterations = 0;
    let mut changed = true;
    while changed {
        changed = false;
        iterations += 1;
        for &b in order {
            let bi = b.index();
            let mut out = std::mem::replace(&mut live_out[bi], BitSet::new(0));
            out.clear();
            for s in f.succs(b) {
                out.union_with(&live_in[s.index()]);
            }
            let c = live_in[bi].assign_transfer(&gen[bi], &out, &kill[bi]);
            live_out[bi] = out;
            changed |= c;
        }
    }
    BackwardSolution { live_in, live_out, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::Order;
    use lsra_ir::{Cond, FunctionBuilder, MachineSpec};

    /// A two-block loop: gen in the body propagates around the back edge.
    #[test]
    fn backward_solve_loop() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "l", &[]);
        let t = b.int_temp("t");
        b.movi(t, 3);
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.branch(Cond::Gt, t, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();

        let universe = 2;
        let mut gen = vec![BitSet::new(universe); f.num_blocks()];
        let kill = vec![BitSet::new(universe); f.num_blocks()];
        gen[1].insert(0); // "bit 0 used in the loop head"
        let order = Order::compute(&f);
        let rev: Vec<_> = order.rpo.iter().rev().copied().collect();
        let sol = solve_backward(&f, universe, &gen, &kill, &rev);
        assert!(sol.live_in[1].contains(0));
        assert!(sol.live_out[0].contains(0), "propagates to the entry's out");
        assert!(sol.live_out[1].contains(0), "propagates around the back edge");
        assert!(!sol.live_in[2].contains(0));
        assert!(sol.iterations <= 3);
    }

    #[test]
    fn kill_stops_propagation() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "k", &[]);
        let b1 = b.block();
        let b2 = b.block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        let f = b.finish();

        let universe = 1;
        let mut gen = vec![BitSet::new(universe); 3];
        let mut kill = vec![BitSet::new(universe); 3];
        gen[2].insert(0);
        kill[1].insert(0); // b1 kills it
        let order = Order::compute(&f);
        let rev: Vec<_> = order.rpo.iter().rev().copied().collect();
        let sol = solve_backward(&f, universe, &gen, &kill, &rev);
        assert!(sol.live_in[2].contains(0));
        assert!(sol.live_out[1].contains(0));
        assert!(!sol.live_in[1].contains(0), "killed in b1");
        assert!(!sol.live_out[0].contains(0));
    }
}

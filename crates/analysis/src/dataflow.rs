//! A small generic solver for iterative bit-vector dataflow problems of the
//! gen/kill family — the machinery behind liveness, the allocator's
//! `USED_C` consistency problem (§2.4 of the paper), and spill-slot
//! liveness.
//!
//! All problems here use the classic transfer `in = gen ∪ (out ∖ kill)`
//! (backward) or its mirror (forward), with union as the meet. The solver
//! visits blocks in an order supplied by the caller and iterates to a fixed
//! point, reporting the iteration count (the paper's §2.6 leans on this
//! being 2–3 in practice).

use lsra_ir::{BlockId, Function};

use crate::bitset::BitSet;
use crate::order::Order;

/// The result of a backward gen/kill solve.
#[derive(Clone, Debug)]
pub struct BackwardSolution {
    /// `in[b] = gen[b] ∪ (out[b] ∖ kill[b])` at the fixed point.
    pub live_in: Vec<BitSet>,
    /// `out[b] = ∪ in[s]` over successors.
    pub live_out: Vec<BitSet>,
    /// Iterations taken to converge.
    pub iterations: u32,
}

/// Solves a backward gen/kill problem over `f`'s CFG.
///
/// `order` should list blocks in an order that converges quickly for
/// backward problems (reverse of a reverse postorder works well); blocks
/// not listed are still correct but may cost extra iterations if listed
/// orders skip them — pass every block of interest.
pub fn solve_backward(
    f: &Function,
    universe: usize,
    gen: &[BitSet],
    kill: &[BitSet],
    order: &[BlockId],
) -> BackwardSolution {
    let nb = f.num_blocks();
    debug_assert_eq!(gen.len(), nb);
    debug_assert_eq!(kill.len(), nb);
    let mut live_in = vec![BitSet::new(universe); nb];
    let mut live_out = vec![BitSet::new(universe); nb];
    let mut iterations = 0;
    let mut changed = true;
    while changed {
        changed = false;
        iterations += 1;
        for &b in order {
            let bi = b.index();
            let mut out = std::mem::replace(&mut live_out[bi], BitSet::new(0));
            out.clear();
            for s in f.succs(b) {
                out.union_with(&live_in[s.index()]);
            }
            let c = live_in[bi].assign_transfer(&gen[bi], &out, &kill[bi]);
            live_out[bi] = out;
            changed |= c;
        }
    }
    BackwardSolution { live_in, live_out, iterations }
}

/// The result of a forward *must* (all-paths) gen/kill solve.
#[derive(Clone, Debug)]
pub struct ForwardMustSolution {
    /// `in[b] = ∩ out[p]` over reachable predecessors at the fixed point
    /// (`entry_in` for the entry block). Unreachable blocks keep an empty
    /// set — callers should consult [`Order::is_reachable`].
    pub must_in: Vec<BitSet>,
    /// `out[b] = gen[b] ∪ (in[b] ∖ kill[b])`.
    pub must_out: Vec<BitSet>,
    /// Iterations taken to converge.
    pub iterations: u32,
}

/// Solves a forward gen/kill problem with *intersection* as the meet: a bit
/// holds at a block entry only if it holds along **every** path from the
/// entry block. This is the meet the symbolic allocation checker uses, and
/// here it backs must-be-defined analyses (use-before-def, redundant
/// reloads).
///
/// The solver is optimistic: a predecessor whose out-set has not been
/// computed yet contributes ⊤ (everything) to the meet, and the fixpoint
/// iterates over `order.rpo` until nothing changes. Only reachable blocks
/// participate.
pub fn solve_forward_must(
    f: &Function,
    universe: usize,
    gen: &[BitSet],
    kill: &[BitSet],
    entry_in: &BitSet,
    order: &Order,
) -> ForwardMustSolution {
    let nb = f.num_blocks();
    debug_assert_eq!(gen.len(), nb);
    debug_assert_eq!(kill.len(), nb);
    let preds = f.compute_preds();
    let mut outs: Vec<Option<BitSet>> = vec![None; nb];
    let mut ins: Vec<Option<BitSet>> = vec![None; nb];
    let entry = f.entry();
    let mut iterations = 0;
    let mut changed = true;
    while changed {
        changed = false;
        iterations += 1;
        for &b in &order.rpo {
            let bi = b.index();
            let mut inb = if b == entry {
                entry_in.clone()
            } else {
                let mut acc: Option<BitSet> = None;
                for p in &preds[bi] {
                    if !order.is_reachable(*p) {
                        continue;
                    }
                    if let Some(out) = &outs[p.index()] {
                        match &mut acc {
                            Some(a) => {
                                a.intersect_with(out);
                            }
                            None => acc = Some(out.clone()),
                        }
                    }
                }
                acc.unwrap_or_else(|| {
                    let mut top = BitSet::new(universe);
                    top.fill();
                    top
                })
            };
            let mut out = BitSet::new(universe);
            out.assign_transfer(&gen[bi], &inb, &kill[bi]);
            if outs[bi].as_ref() != Some(&out) {
                outs[bi] = Some(out);
                changed = true;
            }
            if ins[bi].as_ref() != Some(&inb) {
                // Reuse the buffer rather than cloning on every iteration.
                std::mem::swap(&mut inb, ins[bi].get_or_insert_with(|| BitSet::new(0)));
                changed = true;
            }
        }
    }
    let unwrap = |v: Vec<Option<BitSet>>| {
        v.into_iter().map(|s| s.unwrap_or_else(|| BitSet::new(universe))).collect()
    };
    ForwardMustSolution { must_in: unwrap(ins), must_out: unwrap(outs), iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::Order;
    use lsra_ir::{Cond, FunctionBuilder, MachineSpec};

    /// A two-block loop: gen in the body propagates around the back edge.
    #[test]
    fn backward_solve_loop() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "l", &[]);
        let t = b.int_temp("t");
        b.movi(t, 3);
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.branch(Cond::Gt, t, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();

        let universe = 2;
        let mut gen = vec![BitSet::new(universe); f.num_blocks()];
        let kill = vec![BitSet::new(universe); f.num_blocks()];
        gen[1].insert(0); // "bit 0 used in the loop head"
        let order = Order::compute(&f);
        let rev: Vec<_> = order.rpo.iter().rev().copied().collect();
        let sol = solve_backward(&f, universe, &gen, &kill, &rev);
        assert!(sol.live_in[1].contains(0));
        assert!(sol.live_out[0].contains(0), "propagates to the entry's out");
        assert!(sol.live_out[1].contains(0), "propagates around the back edge");
        assert!(!sol.live_in[2].contains(0));
        assert!(sol.iterations <= 3);
    }

    /// Diamond: a def on only one arm must NOT reach the join (must-meet),
    /// while a def before the branch must.
    #[test]
    fn forward_must_meets_with_intersection() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "d", &[]);
        let t = b.int_temp("t");
        b.movi(t, 1);
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.branch(Cond::Ne, t, l, r);
        b.switch_to(l);
        b.jump(j);
        b.switch_to(r);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();

        let universe = 2;
        let mut gen = vec![BitSet::new(universe); f.num_blocks()];
        let kill = vec![BitSet::new(universe); f.num_blocks()];
        gen[0].insert(0); // defined before the branch
        gen[1].insert(1); // defined on the left arm only
        let order = Order::compute(&f);
        let sol = solve_forward_must(&f, universe, &gen, &kill, &BitSet::new(universe), &order);
        assert!(sol.must_in[3].contains(0), "all-paths def reaches the join");
        assert!(!sol.must_in[3].contains(1), "one-arm def does not");
        assert!(sol.must_in[1].contains(0) && sol.must_in[2].contains(0));
        assert!(sol.iterations <= 3);
    }

    /// A loop back edge must not destroy facts established before the loop,
    /// and the entry's in-set is exactly `entry_in`.
    #[test]
    fn forward_must_handles_back_edges() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "l", &[]);
        let t = b.int_temp("t");
        b.movi(t, 3);
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.branch(Cond::Gt, t, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();

        let universe = 2;
        let mut gen = vec![BitSet::new(universe); f.num_blocks()];
        let kill = vec![BitSet::new(universe); f.num_blocks()];
        gen[0].insert(0);
        let mut entry_in = BitSet::new(universe);
        entry_in.insert(1);
        let order = Order::compute(&f);
        let sol = solve_forward_must(&f, universe, &gen, &kill, &entry_in, &order);
        assert_eq!(sol.must_in[0], entry_in);
        assert!(sol.must_in[1].contains(0), "survives the back-edge meet");
        assert!(sol.must_in[1].contains(1), "entry facts flow through");
        assert!(sol.must_in[2].contains(0));
    }

    #[test]
    fn kill_stops_propagation() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "k", &[]);
        let b1 = b.block();
        let b2 = b.block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        let f = b.finish();

        let universe = 1;
        let mut gen = vec![BitSet::new(universe); 3];
        let mut kill = vec![BitSet::new(universe); 3];
        gen[2].insert(0);
        kill[1].insert(0); // b1 kills it
        let order = Order::compute(&f);
        let rev: Vec<_> = order.rpo.iter().rev().copied().collect();
        let sol = solve_backward(&f, universe, &gen, &kill, &rev);
        assert!(sol.live_in[2].contains(0));
        assert!(sol.live_out[1].contains(0));
        assert!(!sol.live_in[1].contains(0), "killed in b1");
        assert!(!sol.live_out[0].contains(0));
    }
}

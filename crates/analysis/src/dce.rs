//! Dead-code elimination.
//!
//! The paper's methodology runs DCE before register allocation in both
//! compiler configurations (§3: "register allocation is preceded by dead
//! code elimination"). This pass removes instructions that define a
//! temporary that is never subsequently read, iterating until no more can
//! be removed. Instructions with side effects (stores, calls, terminators,
//! spill code, and writes to physical registers) are never removed.

use lsra_ir::{Function, Inst, Reg};

use crate::liveness::Liveness;

fn has_side_effects(inst: &Inst) -> bool {
    match inst {
        Inst::Store { .. } | Inst::SpillStore { .. } | Inst::Call { .. } => true,
        Inst::Jump { .. } | Inst::Branch { .. } | Inst::Ret { .. } => true,
        Inst::Op { op, .. } => {
            // Division can trap; keep it (like a real compiler would without
            // proving the divisor non-zero).
            matches!(op, lsra_ir::OpCode::Div | lsra_ir::OpCode::Rem)
        }
        _ => false,
    }
}

/// Removes dead instructions from `f`; returns the number removed.
///
/// An instruction is dead if it has no side effects and its only definition
/// is a temporary that is dead immediately afterwards.
pub fn eliminate_dead_code(f: &mut Function) -> usize {
    let mut removed_total = 0;
    loop {
        let live = Liveness::compute(f);
        let mut removed = 0;
        for b in f.block_ids().collect::<Vec<_>>() {
            // Backward scan with a local live set (block-local temps are not
            // in the global sets, so track everything locally).
            let nt = f.num_temps();
            let mut local_live = vec![false; nt];
            for t in live.live_out_temps(b) {
                local_live[t.index()] = true;
            }
            let block = f.block_mut(b);
            let mut keep = vec![true; block.insts.len()];
            for (i, ins) in block.insts.iter().enumerate().rev() {
                let mut defs_temp: Option<lsra_ir::Temp> = None;
                let mut defs_phys = false;
                ins.inst.for_each_def(|r| match r {
                    Reg::Temp(t) => defs_temp = Some(t),
                    Reg::Phys(_) => defs_phys = true,
                });
                let dead = !has_side_effects(&ins.inst)
                    && !defs_phys
                    && defs_temp.is_some_and(|t| !local_live[t.index()]);
                if dead {
                    keep[i] = false;
                    removed += 1;
                    continue; // do not update liveness with its uses
                }
                if let Some(t) = defs_temp {
                    local_live[t.index()] = false;
                }
                ins.inst.for_each_use(|r| {
                    if let Reg::Temp(t) = r {
                        local_live[t.index()] = true;
                    }
                });
            }
            if removed > 0 {
                let mut it = keep.iter();
                block.insts.retain(|_| *it.next().unwrap());
            }
        }
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{FunctionBuilder, MachineSpec};

    #[test]
    fn removes_dead_chain() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "dc", &[]);
        let a = b.int_temp("a");
        let c = b.int_temp("c");
        let d = b.int_temp("d");
        b.movi(a, 1); // feeds only dead code
        b.add(c, a, a); // dead
        b.movi(d, 5); // live (returned)
        let before = {
            // also a completely dead chain rooted at `c`
            b.ret(Some(d.into()));
            b.finish()
        };
        let mut f = before;
        let n = f.num_insts();
        let removed = eliminate_dead_code(&mut f);
        assert_eq!(removed, 2, "movi a and add c are dead (transitively)");
        assert_eq!(f.num_insts(), n - 2);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn keeps_side_effects() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "se", &[]);
        let a = b.int_temp("a");
        let q = b.int_temp("q");
        b.movi(a, 10);
        b.op2(lsra_ir::OpCode::Div, q, a, a); // q dead but div may trap
        b.store(a, a, 0); // store has side effects
        b.ret(None);
        let mut f = b.finish();
        let removed = eliminate_dead_code(&mut f);
        assert_eq!(removed, 0);
    }

    #[test]
    fn keeps_phys_defs() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "p", &[]);
        let a = b.int_temp("a");
        b.movi(a, 3);
        b.ret(Some(a.into())); // emits mov r0 <- a
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 0, "the move into r0 must stay");
    }
}

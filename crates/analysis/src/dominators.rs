//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use lsra_ir::{BlockId, Function};

use crate::order::Order;

/// Immediate-dominator information for a function's CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes dominators (unreachable blocks get no dominator).
    pub fn compute(f: &Function, order: &Order) -> Self {
        let n = f.num_blocks();
        let preds = f.compute_preds();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = f.entry();
        idom[entry.index()] = Some(entry);

        let intersect =
            |idom: &[Option<BlockId>], order: &Order, mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while order.rpo_pos[a.index()] > order.rpo_pos[b.index()] {
                        a = idom[a.index()].expect("processed block has idom");
                    }
                    while order.rpo_pos[b.index()] > order.rpo_pos[a.index()] {
                        b = idom[b.index()].expect("processed block has idom");
                    }
                }
                a
            };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if !order.is_reachable(p) || idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, order, cur, p),
                    });
                }
                if new_idom != idom[b.index()] {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (the entry dominates itself;
    /// unreachable blocks return `None`).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, FunctionBuilder, MachineSpec};

    /// Builds:
    /// ```text
    ///   b0 -> b1 -> b2 -> b4
    ///          \-> b3 --/
    /// ```
    fn cfg() -> Function {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "f", &[]);
        let t = b.int_temp("t");
        b.movi(t, 1);
        let b1 = b.block();
        let b2 = b.block();
        let b3 = b.block();
        let b4 = b.block();
        b.jump(b1);
        b.switch_to(b1);
        b.branch(Cond::Ne, t, b2, b3);
        b.switch_to(b2);
        b.jump(b4);
        b.switch_to(b3);
        b.jump(b4);
        b.switch_to(b4);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn idoms_of_diamond() {
        let f = cfg();
        let o = Order::compute(&f);
        let d = Dominators::compute(&f, &o);
        assert_eq!(d.idom(BlockId(0)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(1)));
        assert_eq!(d.idom(BlockId(4)), Some(BlockId(1)), "join is dominated by the fork");
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = cfg();
        let o = Order::compute(&f);
        let d = Dominators::compute(&f, &o);
        assert!(d.dominates(BlockId(2), BlockId(2)));
        assert!(d.dominates(BlockId(0), BlockId(4)));
        assert!(d.dominates(BlockId(1), BlockId(4)));
        assert!(!d.dominates(BlockId(2), BlockId(4)));
        assert!(!d.dominates(BlockId(4), BlockId(1)));
    }
}

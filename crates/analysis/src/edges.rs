//! CFG edge utilities: critical-edge splitting.
//!
//! The resolution phase of the binpacking allocator (§2.4) places fix-up
//! code at the top of a block with a unique predecessor, at the bottom of a
//! block with a unique successor, and otherwise *splits the critical edge*,
//! "safely creating a location to place the resolution code".

use lsra_ir::{BlockId, Function, Inst};

/// Retargets every occurrence of `from` in `b`'s terminator to `to`.
pub fn retarget(f: &mut Function, b: BlockId, from: BlockId, to: BlockId) {
    let term = &mut f.block_mut(b).insts.last_mut().expect("block has terminator").inst;
    match term {
        Inst::Jump { target } if *target == from => *target = to,
        Inst::Jump { .. } => {}
        Inst::Branch { then_tgt, else_tgt, .. } => {
            if *then_tgt == from {
                *then_tgt = to;
            }
            if *else_tgt == from {
                *else_tgt = to;
            }
        }
        _ => {}
    }
}

/// Splits the edge `pred -> succ` by inserting a fresh block containing only
/// a jump to `succ`, and retargeting `pred`'s terminator. Returns the new
/// block (appended at the end of the linear order).
pub fn split_edge(f: &mut Function, pred: BlockId, succ: BlockId) -> BlockId {
    let new = f.add_block();
    f.block_mut(new).insts.push(Inst::Jump { target: succ }.into());
    retarget(f, pred, succ, new);
    new
}

/// True if `pred -> succ` is a critical edge (multi-successor predecessor
/// into a multi-predecessor successor), given precomputed predecessor lists.
pub fn is_critical(f: &Function, preds: &[Vec<BlockId>], pred: BlockId, succ: BlockId) -> bool {
    f.succs(pred).len() > 1 && preds[succ.index()].len() > 1
}

/// Splits every critical edge in `f`; returns the number split.
pub fn split_critical_edges(f: &mut Function) -> usize {
    let preds = f.compute_preds();
    let mut to_split = Vec::new();
    for b in f.block_ids() {
        for s in f.succs(b) {
            if is_critical(f, &preds, b, s) {
                to_split.push((b, s));
            }
        }
    }
    let n = to_split.len();
    for (p, s) in to_split {
        split_edge(f, p, s);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, FunctionBuilder, MachineSpec};

    /// b0 branches to b1/b2; b1 jumps to b2 — so b0->b2 is critical.
    fn with_critical_edge() -> Function {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "ce", &[]);
        let t = b.int_temp("t");
        b.movi(t, 1);
        let b1 = b.block();
        let b2 = b.block();
        b.branch(Cond::Ne, t, b1, b2);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn detects_and_splits_critical_edge() {
        let mut f = with_critical_edge();
        let preds = f.compute_preds();
        assert!(is_critical(&f, &preds, BlockId(0), BlockId(2)));
        assert!(!is_critical(&f, &preds, BlockId(0), BlockId(1)));
        let n = split_critical_edges(&mut f);
        assert_eq!(n, 1);
        assert!(f.validate().is_ok());
        // b0 no longer targets b2 directly.
        assert!(!f.succs(BlockId(0)).contains(&BlockId(2)));
        let preds = f.compute_preds();
        for b in f.block_ids() {
            for s in f.succs(b) {
                assert!(!is_critical(&f, &preds, b, s), "no critical edges remain");
            }
        }
    }

    #[test]
    fn split_preserves_cfg_semantics() {
        let mut f = with_critical_edge();
        let new = split_edge(&mut f, BlockId(0), BlockId(2));
        assert_eq!(f.succs(new), vec![BlockId(2)]);
        assert!(f.succs(BlockId(0)).contains(&new));
        assert!(f.validate().is_ok());
    }

    #[test]
    fn branch_with_both_targets_equal_retargets_both() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "bb", &[]);
        let t = b.int_temp("t");
        b.movi(t, 0);
        let b1 = b.block();
        b.branch(Cond::Ne, t, b1, b1);
        b.switch_to(b1);
        b.ret(None);
        let mut f = b.finish();
        let new = split_edge(&mut f, BlockId(0), b1);
        assert_eq!(f.succs(BlockId(0)), vec![new]);
    }
}

//! Shared CFG analyses for the register-allocation reproduction.
//!
//! The paper's methodology (§3) keeps everything except the central
//! allocation algorithm identical between the linear-scan and graph-coloring
//! configurations: CFG construction, liveness, loop-depth analysis,
//! dead-code elimination, and the peephole move-removal pass are common
//! infrastructure. This crate is that infrastructure:
//!
//! * [`BitSet`] — dense bit vectors for the iterative dataflow problems;
//! * [`collections`] — flat hot-path containers (CSR rows, inline small
//!   vectors, sorted-vec interval maps, epoch-stamped sets);
//! * [`Liveness`] — live-in/live-out per block, excluding block-local
//!   temporaries from the bit vectors as the paper does;
//! * [`Dominators`], [`LoopInfo`] — loop nesting for spill-cost weighting;
//! * [`Lifetimes`] — lifetimes, *lifetime holes* (§2.1), reference lists,
//!   and per-register blocked segments (register holes, §2.5), computed in
//!   one reverse pass over the linear order;
//! * [`eliminate_dead_code`], [`remove_identity_moves`] — the pre/post
//!   passes of the paper's pipeline;
//! * edge utilities (critical-edge splitting) used by the resolution phase.
//!
//! # Examples
//!
//! ```
//! use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
//! use lsra_analysis::{Lifetimes, Liveness};
//!
//! let spec = MachineSpec::alpha_like();
//! let mut b = FunctionBuilder::new(&spec, "f", &[RegClass::Int]);
//! let x = b.param(0);
//! let y = b.int_temp("y");
//! b.add(y, x, x);
//! b.ret(Some(y.into()));
//! let f = b.finish();
//!
//! let live = Liveness::compute(&f);
//! assert!(live.iterations <= 3);
//! let lt = Lifetimes::of(&f, &spec);
//! assert!(lt.lifetime(y).is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitset;
pub mod collections;
mod dataflow;
mod dce;
mod dominators;
mod edges;
mod lifetimes;
mod liveness;
mod loops;
mod order;
mod peephole;

pub use bitset::BitSet;
pub use collections::{Csr, EpochSet, IntervalMap, SmallVec};
pub use dataflow::{solve_backward, solve_forward_must, BackwardSolution, ForwardMustSolution};
pub use dce::eliminate_dead_code;
pub use dominators::Dominators;
pub use edges::{is_critical, retarget, split_critical_edges, split_edge};
pub use lifetimes::{check_phys_block_local, AnalysisScratch, Lifetimes, Point, RefPoint, Segment};
pub use liveness::Liveness;
pub use loops::LoopInfo;
pub use order::Order;
pub use peephole::remove_identity_moves;

//! Lifetimes and lifetime holes (§2.1 of the paper), computed in a single
//! reverse pass over the linear order of the code.
//!
//! # The point scale
//!
//! Instructions are numbered globally in linear (layout) order. Instruction
//! `i` reads its sources at point `4i + 4` and writes its destination at
//! `4i + 6`. Block boundaries get their own points: the top of a block whose
//! first instruction is `i0` is `4*i0 + 3`, and its bottom is `4*(i1+1) + 3`
//! where `i1` is its last instruction — so the bottom of a block coincides
//! with the top of the next block in linear order, which is exactly how the
//! paper's Figure 1 lets holes open and close at block boundaries.
//!
//! A temporary's *lifetime* is the span from the first point where it is
//! live (in linear order) to the last; its live *segments* are the
//! sub-intervals where it actually carries a useful value; the gaps between
//! segments are its *lifetime holes*.
//!
//! Physical registers get the same treatment: a register is *blocked* while
//! a precolored value lives in it and across every call that clobbers it
//! (caller-saved registers, §2.5); the complement of the blocked segments
//! are the register's lifetime holes.

use lsra_ir::{BlockId, Function, Inst, MachineSpec, PhysReg, Reg, RegClass, Temp};

use crate::bitset::BitSet;
use crate::collections::Csr;
use crate::liveness::Liveness;
use crate::loops::LoopInfo;

/// A point on the linear scale. Ordered; see the module docs for layout.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Point(pub u32);

impl Point {
    /// The read (source) slot of global instruction `i`.
    #[inline]
    pub const fn read(i: u32) -> Point {
        Point(4 * i + 4)
    }

    /// The write (destination) slot of global instruction `i`.
    #[inline]
    pub const fn write(i: u32) -> Point {
        Point(4 * i + 6)
    }

    /// The boundary point *before* global instruction `i`.
    #[inline]
    pub const fn before(i: u32) -> Point {
        Point(4 * i + 3)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let q = self.0 / 4;
        match self.0 % 4 {
            // Boundary before instruction q.
            3 => write!(f, "B{q}"),
            // Read slot of instruction q-1.
            0 => write!(f, "{}r", q - 1),
            // Write slot of instruction q-1.
            2 => write!(f, "{}w", q - 1),
            _ => write!(f, "p{}", self.0),
        }
    }
}

/// A closed interval `[start, end]` of points during which a value lives (or
/// a register is blocked).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// First point of the interval.
    pub start: Point,
    /// Last point of the interval (inclusive).
    pub end: Point,
}

impl Segment {
    /// Creates a segment; `start` must not exceed `end`.
    pub fn new(start: Point, end: Point) -> Segment {
        debug_assert!(start <= end, "segment start after end");
        Segment { start, end }
    }

    /// True if the segment contains `p`.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.start <= p && p <= self.end
    }

    /// True if the two segments share any point.
    #[inline]
    pub fn overlaps(&self, other: &Segment) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// One reference (use or definition) of a temporary.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct RefPoint {
    /// Where the reference occurs.
    pub point: Point,
    /// True for definitions, false for uses. A reference that both reads and
    /// writes appears twice.
    pub is_def: bool,
    /// The loop-depth weight (`10^depth`) of the enclosing block — the
    /// paper's eviction heuristic weights the distance to the next reference
    /// by this (§2.3).
    pub weight: f64,
}

/// Reusable buffers for [`Lifetimes::compute_in`]: the reverse-pass working
/// state plus the CSR backing arrays a recycled [`Lifetimes`] hands back
/// through [`Lifetimes::recycle`]. One per worker thread; dead state between
/// functions.
#[derive(Debug, Default)]
pub struct AnalysisScratch {
    /// Reverse-chronological `(temp, segment)` events from the pass.
    seg_events: Vec<(u32, Segment)>,
    /// Reverse-chronological `(temp, ref)` events from the pass.
    ref_events: Vec<(u32, RefPoint)>,
    /// Per-temp event counts, then (in place) the counting-sort cursors.
    seg_cursor: Vec<u32>,
    ref_cursor: Vec<u32>,
    /// Recycled CSR backing arrays.
    seg_offsets: Vec<u32>,
    seg_data: Vec<Segment>,
    ref_offsets: Vec<u32>,
    ref_data: Vec<RefPoint>,
    /// End point of each temp's currently open segment.
    open_t: Vec<Option<Point>>,
    /// End point of each register's currently open blocked segment, plus
    /// the list of registers possibly open (so block boundaries don't scan
    /// the whole register file).
    open_r: Vec<Option<Point>>,
    open_r_list: Vec<u32>,
    /// The global temporaries with an open segment, kept exactly in sync
    /// with `open_t` so block boundaries are word-wise set differences
    /// instead of an O(temps) sweep.
    open_globals: BitSet,
}

/// Lifetimes, lifetime holes, reference lists, and register blocked
/// segments, for one function.
///
/// Per-temp segment and reference rows live in CSR containers — one flat
/// backing array each — rather than a `Vec` per temp.
#[derive(Clone, Debug)]
pub struct Lifetimes {
    segments: Csr<Segment>,
    refs: Csr<RefPoint>,
    block_first: Vec<u32>,
    block_last: Vec<u32>,
    reg_blocked: Vec<Vec<Segment>>,
    num_int_regs: usize,
    num_insts: u32,
}

impl Lifetimes {
    /// Computes lifetime information in one reverse pass over the linear
    /// order (plus the liveness analysis supplied by the caller).
    pub fn compute(f: &Function, live: &Liveness, loops: &LoopInfo, spec: &MachineSpec) -> Self {
        Lifetimes::compute_in(f, live, loops, spec, &mut AnalysisScratch::default())
    }

    /// Like [`Lifetimes::compute`], but drawing every working buffer and the
    /// result's CSR backing from `scratch`; pair with
    /// [`Lifetimes::recycle`] to reuse the backing across functions.
    pub fn compute_in(
        f: &Function,
        live: &Liveness,
        loops: &LoopInfo,
        spec: &MachineSpec,
        scratch: &mut AnalysisScratch,
    ) -> Self {
        let nt = f.num_temps();
        let num_int = spec.num_regs(RegClass::Int) as usize;
        let num_float = spec.num_regs(RegClass::Float) as usize;
        let phys_index = |p: PhysReg| -> usize {
            match p.class {
                RegClass::Int => p.index as usize,
                RegClass::Float => num_int + p.index as usize,
            }
        };

        // Global instruction numbering per block.
        let mut block_first = vec![0u32; f.num_blocks()];
        let mut block_last = vec![0u32; f.num_blocks()];
        let mut next = 0u32;
        for b in f.block_ids() {
            let n = f.block(b).insts.len() as u32;
            block_first[b.index()] = next;
            block_last[b.index()] = next + n - 1;
            next += n;
        }
        let num_insts = next;

        // Reverse pass state, recycled from the scratch arena. Segment and
        // reference rows are not built directly: the pass appends to flat
        // event lists (with per-temp counts), and a counting sort lays the
        // rows out afterwards.
        let mut reg_blocked: Vec<Vec<Segment>> = vec![Vec::new(); num_int + num_float];
        scratch.seg_events.clear();
        scratch.ref_events.clear();
        let seg_events = &mut scratch.seg_events;
        let ref_events = &mut scratch.ref_events;
        scratch.seg_cursor.clear();
        scratch.seg_cursor.resize(nt, 0);
        scratch.ref_cursor.clear();
        scratch.ref_cursor.resize(nt, 0);
        let seg_count = &mut scratch.seg_cursor;
        let ref_count = &mut scratch.ref_cursor;
        scratch.open_t.clear();
        scratch.open_t.resize(nt, None);
        let open_t = &mut scratch.open_t;
        scratch.open_r.clear();
        scratch.open_r.resize(num_int + num_float, None);
        let open_r = &mut scratch.open_r;
        scratch.open_r_list.clear();
        let open_r_list = &mut scratch.open_r_list;
        scratch.open_globals.reset(live.num_globals());
        let open_globals = &mut scratch.open_globals;

        for b in f.block_ids().rev() {
            let bi = b.index();
            let bottom = Point::before(block_last[bi] + 1);
            let weight = loops.weight(b);

            // Align the open-temp set with this block's live-out: temps live
            // out of b continue (or open) here; temps that were open (live
            // into the linearly-following block) but are not live out of b
            // close at this block's bottom boundary. Only globals can be
            // open at a boundary (block-locals always close within their
            // block), so both transitions are bitset differences.
            let out = live.live_out(b);
            open_globals.for_each_difference(out, |g| {
                let t = live.temp_of(g).index();
                let end = open_t[t].take().expect("open global with no open segment");
                seg_count[t] += 1;
                seg_events.push((t as u32, Segment::new(bottom, end)));
            });
            out.for_each_difference(open_globals, |g| {
                open_t[live.temp_of(g).index()] = Some(bottom);
            });
            open_globals.copy_from(out);
            // Precolored registers must not be live across block boundaries
            // (an IR invariant; see `check_phys_block_local`): close any
            // still-open register segment at this boundary.
            for r in open_r_list.drain(..) {
                if let Some(end) = open_r[r as usize].take() {
                    reg_blocked[r as usize].push(Segment::new(bottom, end));
                }
            }

            for (k, ins) in f.block(b).insts.iter().enumerate().rev() {
                let gi = block_first[bi] + k as u32;
                let rp = Point::read(gi);
                let wp = Point::write(gi);
                // A call clobbers every caller-saved register over the span
                // of the instruction.
                if let Inst::Call { .. } = ins.inst {
                    for class in RegClass::ALL {
                        for p in spec.caller_saved(class) {
                            let i = phys_index(p);
                            match open_r[i] {
                                Some(_) => {} // already blocked across this point
                                None => reg_blocked[i].push(Segment::new(rp, wp)),
                            }
                        }
                    }
                }
                // Definitions first (they come later on the point scale).
                ins.inst.for_each_def(|r| match r {
                    Reg::Temp(t) => {
                        ref_count[t.index()] += 1;
                        ref_events.push((t.0, RefPoint { point: wp, is_def: true, weight }));
                        seg_count[t.index()] += 1;
                        match open_t[t.index()].take() {
                            Some(end) => {
                                seg_events.push((t.0, Segment::new(wp, end)));
                                if let Some(g) = live.global_of(t) {
                                    open_globals.remove(g);
                                }
                            }
                            // Dead def: a point segment, nothing was open.
                            None => seg_events.push((t.0, Segment::new(wp, wp))),
                        }
                    }
                    Reg::Phys(p) => {
                        let i = phys_index(p);
                        match open_r[i].take() {
                            Some(end) => reg_blocked[i].push(Segment::new(wp, end)),
                            None => reg_blocked[i].push(Segment::new(wp, wp)),
                        }
                    }
                });
                // Then uses.
                ins.inst.for_each_use(|r| match r {
                    Reg::Temp(t) => {
                        ref_count[t.index()] += 1;
                        ref_events.push((t.0, RefPoint { point: rp, is_def: false, weight }));
                        if open_t[t.index()].is_none() {
                            open_t[t.index()] = Some(rp);
                            if let Some(g) = live.global_of(t) {
                                open_globals.insert(g);
                            }
                        }
                    }
                    Reg::Phys(p) => {
                        let i = phys_index(p);
                        if open_r[i].is_none() {
                            open_r[i] = Some(rp);
                            open_r_list.push(i as u32);
                        }
                    }
                });
            }
        }

        // Close anything still live at the top of the entry block
        // (upward-exposed temporaries; argument registers).
        let top = Point::before(0);
        for g in open_globals.iter() {
            let t = live.temp_of(g).index();
            if let Some(end) = open_t[t].take() {
                seg_count[t] += 1;
                seg_events.push((t as u32, Segment::new(top, end)));
            }
        }
        debug_assert!(open_t.iter().all(Option::is_none), "non-global temp open at entry");
        for r in open_r_list.drain(..) {
            if let Some(end) = open_r[r as usize].take() {
                reg_blocked[r as usize].push(Segment::new(top, end));
            }
        }

        // Counting sort: prefix-sum the per-temp counts into row offsets,
        // then back-fill the flat rows by walking the events in reverse —
        // which is chronological order, so every row comes out sorted
        // without a per-row reverse.
        let segments = csr_from_events(
            seg_count,
            seg_events,
            std::mem::take(&mut scratch.seg_offsets),
            std::mem::take(&mut scratch.seg_data),
            Segment::new(Point(0), Point(0)),
        );
        let refs = csr_from_events(
            ref_count,
            ref_events,
            std::mem::take(&mut scratch.ref_offsets),
            std::mem::take(&mut scratch.ref_data),
            RefPoint { point: Point(0), is_def: false, weight: 0.0 },
        );

        // Coalesce adjacent register blocks (these rows were built in
        // reverse and stay nested: the register file is small and fixed).
        for blocked in &mut reg_blocked {
            blocked.reverse();
            let mut merged: Vec<Segment> = Vec::with_capacity(blocked.len());
            for s in blocked.drain(..) {
                match merged.last_mut() {
                    Some(last) if s.start <= last.end || s.start.0 == last.end.0 + 1 => {
                        last.end = last.end.max(s.end);
                    }
                    _ => merged.push(s),
                }
            }
            *blocked = merged;
        }

        Lifetimes {
            segments,
            refs,
            block_first,
            block_last,
            reg_blocked,
            num_int_regs: num_int,
            num_insts,
        }
    }

    /// Convenience constructor that runs the prerequisite analyses.
    pub fn of(f: &Function, spec: &MachineSpec) -> Self {
        let live = Liveness::compute(f);
        let loops = LoopInfo::of(f);
        Lifetimes::compute(f, &live, &loops, spec)
    }

    /// Hands the CSR backing arrays back to `scratch` so the next
    /// [`Lifetimes::compute_in`] call allocates nothing.
    pub fn recycle(self, scratch: &mut AnalysisScratch) {
        let (so, sd) = self.segments.into_parts();
        scratch.seg_offsets = so;
        scratch.seg_data = sd;
        let (ro, rd) = self.refs.into_parts();
        scratch.ref_offsets = ro;
        scratch.ref_data = rd;
    }

    fn phys_index(&self, p: PhysReg) -> usize {
        match p.class {
            RegClass::Int => p.index as usize,
            RegClass::Float => self.num_int_regs + p.index as usize,
        }
    }

    /// The live segments of `t`, in increasing order.
    #[inline]
    pub fn segments(&self, t: Temp) -> &[Segment] {
        self.segments.row(t.index())
    }

    /// The overall lifetime of `t` (`None` if `t` is never referenced).
    pub fn lifetime(&self, t: Temp) -> Option<Segment> {
        let s = self.segments.row(t.index());
        match (s.first(), s.last()) {
            (Some(a), Some(b)) => Some(Segment::new(a.start, b.end)),
            _ => None,
        }
    }

    /// The lifetime holes of `t`: the gaps strictly between consecutive live
    /// segments, as `(end of previous, start of next)` exclusive bounds.
    pub fn holes(&self, t: Temp) -> Vec<(Point, Point)> {
        let s = self.segments.row(t.index());
        s.windows(2).map(|w| (w[0].end, w[1].start)).collect()
    }

    /// The references of `t` in increasing point order.
    #[inline]
    pub fn refs(&self, t: Temp) -> &[RefPoint] {
        self.refs.row(t.index())
    }

    /// The blocked segments of physical register `p` (precolored values and
    /// call clobbers), in increasing order, coalesced.
    #[inline]
    pub fn blocked(&self, p: PhysReg) -> &[Segment] {
        &self.reg_blocked[self.phys_index(p)]
    }

    /// The boundary point at the top of block `b`.
    pub fn top(&self, b: BlockId) -> Point {
        Point::before(self.block_first[b.index()])
    }

    /// The boundary point at the bottom of block `b`.
    pub fn bottom(&self, b: BlockId) -> Point {
        Point::before(self.block_last[b.index()] + 1)
    }

    /// Global index of the first instruction of `b`.
    pub fn first_inst(&self, b: BlockId) -> u32 {
        self.block_first[b.index()]
    }

    /// Global index of the last instruction of `b`.
    pub fn last_inst(&self, b: BlockId) -> u32 {
        self.block_last[b.index()]
    }

    /// Total number of instructions in the function.
    pub fn num_insts(&self) -> u32 {
        self.num_insts
    }

    /// True if `t` is live at `p`.
    pub fn live_at(&self, t: Temp, p: Point) -> bool {
        self.segments.row(t.index()).iter().any(|s| s.contains(p))
    }
}

/// Lays per-temp rows out in one flat array from a reverse-chronological
/// event list: `counts[t]` is rewritten in place into the row cursor, and
/// walking the events backwards fills each row in increasing point order.
fn csr_from_events<T: Copy>(
    counts: &mut [u32],
    events: &[(u32, T)],
    mut offsets: Vec<u32>,
    mut data: Vec<T>,
    fill: T,
) -> Csr<T> {
    offsets.clear();
    offsets.reserve(counts.len() + 1);
    offsets.push(0);
    let mut acc = 0u32;
    for c in counts.iter_mut() {
        let n = *c;
        *c = acc; // becomes the cursor for this row
        acc += n;
        offsets.push(acc);
    }
    data.clear();
    data.resize(acc as usize, fill);
    for &(t, v) in events.iter().rev() {
        let cur = &mut counts[t as usize];
        data[*cur as usize] = v;
        *cur += 1;
    }
    Csr::from_parts(offsets, data)
}

/// Checks the IR invariant that precolored physical registers are never live
/// across a block boundary (argument registers at the function entry are the
/// one exception — they carry the parameters in).
pub fn check_phys_block_local(f: &Function, spec: &MachineSpec) -> bool {
    for b in f.block_ids() {
        let mut defined: Vec<bool> = vec![false; spec.total_regs()];
        let idx = |p: PhysReg| -> usize {
            match p.class {
                RegClass::Int => p.index as usize,
                RegClass::Float => spec.num_regs(RegClass::Int) as usize + p.index as usize,
            }
        };
        let mut ok = true;
        for ins in &f.block(b).insts {
            ins.inst.for_each_use(|r| {
                if let Reg::Phys(p) = r {
                    if !defined[idx(p)] {
                        // Upward-exposed physical use: only argument
                        // registers in the entry block may do this.
                        let is_entry_arg =
                            b == f.entry() && spec.arg_regs(p.class).contains(&p.index);
                        if !is_entry_arg {
                            ok = false;
                        }
                    }
                }
            });
            ins.inst.for_each_def(|r| {
                if let Reg::Phys(p) = r {
                    defined[idx(p)] = true;
                }
            });
        }
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, ExtFn, FunctionBuilder, MachineSpec, RegClass};

    #[test]
    fn straight_line_lifetime() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "s", &[]);
        let x = b.int_temp("x"); // inst 0: x = 1
        let y = b.int_temp("y"); // inst 1: y = x + x
        b.movi(x, 1);
        b.add(y, x, x);
        b.ret(Some(y.into())); // inst 2: mov r0, y ; inst 3: ret
        let f = b.finish();
        let lt = Lifetimes::of(&f, &spec);
        // x: defined at write of inst 0, last used at read of inst 1.
        assert_eq!(lt.segments(x), &[Segment::new(Point::write(0), Point::read(1))]);
        // y: defined at write of 1, used at read of 2.
        assert_eq!(lt.segments(y), &[Segment::new(Point::write(1), Point::read(2))]);
        assert!(lt.holes(x).is_empty());
    }

    #[test]
    fn redefinition_creates_hole() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "h", &[]);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        let z = b.int_temp("z");
        b.movi(x, 1); // 0
        b.mov(y, x); // 1: last use of x's first value
        b.movi(z, 5); // 2: hole for x here
        b.movi(x, 2); // 3: x redefined
        b.add(y, x, z); // 4
        b.ret(Some(y.into()));
        let f = b.finish();
        let lt = Lifetimes::of(&f, &spec);
        let holes = lt.holes(x);
        assert_eq!(holes.len(), 1);
        assert_eq!(holes[0], (Point::read(1), Point::write(3)));
        assert!(lt.live_at(x, Point::read(1)));
        assert!(!lt.live_at(x, Point::read(2)));
    }

    #[test]
    fn dead_def_is_point_segment() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "d", &[]);
        let x = b.int_temp("x");
        b.movi(x, 1); // inst 0; x never used
        b.ret(None);
        let f = b.finish();
        let lt = Lifetimes::of(&f, &spec);
        assert_eq!(lt.segments(x), &[Segment::new(Point::write(0), Point::write(0))]);
    }

    #[test]
    fn block_boundary_hole_like_figure_1() {
        // Figure 1's essence: a temp live in B1 and B4 but dead through the
        // linearly intervening blocks gets a hole spanning them.
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "f1", &[RegClass::Int]);
        let p = b.param(0);
        let t1 = b.int_temp("t1");
        let t4 = b.int_temp("t4");
        let b1 = b.block();
        let b2 = b.block();
        let b3 = b.block();
        b.jump(b1);
        b.switch_to(b1);
        b.movi(t1, 7);
        b.movi(t4, 1);
        b.branch(Cond::Ne, p, b2, b3);
        b.switch_to(b2);
        // t1 dead here; t4 used
        b.add(t4, t4, t4);
        b.jump(b3);
        b.switch_to(b3);
        let s = b.int_temp("s");
        b.add(s, t1, t4);
        b.ret(Some(s.into()));
        let f = b.finish();
        let lt = Lifetimes::of(&f, &spec);
        // t1 has no hole: it's live-out of b1, live-in b2? No — t1 unused in
        // b2 but live *through* it (live-out of b2 since b2->b3 uses it). So
        // single segment.
        assert_eq!(lt.segments(t1).len(), 1);
        // Now check an actual boundary hole: t4 in a variant below.
        let _ = t4;
    }

    #[test]
    fn boundary_hole_when_value_dead_through_linear_gap() {
        // CFG: b0 -> b1, b0 -> b2; b1 -> b3, b2 -> b3. Linear order
        // b0,b1,b2,b3. A temp defined in b1 and used in b3 is dead
        // throughout b2 (no path b1->b2), so its linear view has a hole
        // covering b2... but liveness says it IS live-out of b1 and live-in
        // of b3; through b2 it is NOT live (b2's live-in doesn't contain it
        // only if b2 doesn't reach a use without redefinition — b2->b3 uses
        // it!). To make it dead in b2, b2 must redefine it.
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "g", &[RegClass::Int]);
        let p = b.param(0);
        let t = b.int_temp("t");
        let b1 = b.block();
        let b2 = b.block();
        let b3 = b.block();
        b.branch(Cond::Ne, p, b1, b2);
        b.switch_to(b1);
        b.movi(t, 1);
        b.jump(b3);
        b.switch_to(b2);
        b.movi(t, 2);
        b.jump(b3);
        b.switch_to(b3);
        b.ret(Some(t.into()));
        let f = b.finish();
        let lt = Lifetimes::of(&f, &spec);
        // t is defined in both b1 and b2; in the linear order its lifetime
        // runs from the def in b1 to the use in b3 with a hole between the
        // bottom of b1 (where its first value's liveness pauses — it is not
        // live into b2) and the def in b2.
        let segs = lt.segments(t);
        assert_eq!(segs.len(), 2, "segments: {segs:?}");
        assert_eq!(segs[0].end, lt.bottom(b1));
        assert_eq!(segs[1].start.0, Point::write(lt.first_inst(b2)).0);
    }

    #[test]
    fn call_blocks_caller_saved_registers() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "c", &[]);
        let r = b.call_ext(ExtFn::GetChar, &[], Some(RegClass::Int)).unwrap();
        b.ret(Some(r.into()));
        let f = b.finish();
        let lt = Lifetimes::of(&f, &spec);
        // Call is instruction 0. A caller-saved register that is neither an
        // arg nor ret register is blocked exactly across the call.
        let cs = lsra_ir::PhysReg::int(10);
        assert!(spec.is_caller_saved(cs));
        let blocked = lt.blocked(cs);
        assert_eq!(blocked, &[Segment::new(Point::read(0), Point::write(0))]);
        // A callee-saved register is never blocked.
        let callee = lsra_ir::PhysReg::int(20);
        assert!(lt.blocked(callee).is_empty());
        // The return register is blocked twice: from the call's write to the
        // result move's read, and again from the `ret`-value move to the
        // `ret` itself.
        let ret0 = spec.ret_reg(RegClass::Int);
        let rb = lt.blocked(ret0);
        assert_eq!(rb.len(), 2, "blocked: {rb:?}");
        assert_eq!(rb[0], Segment::new(Point::write(0), Point::read(1)));
        assert_eq!(rb[1], Segment::new(Point::write(2), Point::read(3)));
    }

    #[test]
    fn phys_block_local_check() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "ok", &[RegClass::Int]);
        let p = b.param(0);
        b.ret(Some(p.into()));
        let f = b.finish();
        assert!(check_phys_block_local(&f, &spec));
    }

    #[test]
    fn refs_carry_loop_weights() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "w", &[RegClass::Int]);
        let n = b.param(0);
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.add(acc, acc, n);
        b.addi(n, n, -1);
        b.branch(Cond::Gt, n, head, exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let f = b.finish();
        let lt = Lifetimes::of(&f, &spec);
        let refs = lt.refs(acc);
        // acc: def in entry (weight 1), use+def in loop (weight 10), use in
        // exit's mov (weight 1).
        assert!(refs.iter().any(|r| r.weight == 10.0));
        assert!(refs.first().unwrap().is_def);
        assert_eq!(refs.first().unwrap().weight, 1.0);
        // Refs are sorted by point.
        for w in refs.windows(2) {
            assert!(w[0].point <= w[1].point);
        }
    }
}

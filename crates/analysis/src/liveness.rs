//! Iterative bit-vector liveness over temporaries.
//!
//! Following the paper (§3), temporaries that are live only within a single
//! basic block are excluded from the dataflow bit vectors, "which greatly
//! reduces bit vector sizes". Only *global* temporaries — those referenced
//! in more than one block, or upward-exposed in their only block — occupy
//! bit positions.

use lsra_ir::{BlockId, Function, Temp};

use crate::bitset::BitSet;
use crate::order::Order;

/// Per-block live-in/live-out sets over global temporaries.
///
/// # Examples
///
/// ```
/// use lsra_analysis::Liveness;
/// use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
///
/// let spec = MachineSpec::alpha_like();
/// let mut b = FunctionBuilder::new(&spec, "f", &[RegClass::Int]);
/// let x = b.param(0);
/// let blk = b.block();
/// b.jump(blk);
/// b.switch_to(blk);
/// b.ret(Some(x.into()));
/// let f = b.finish();
///
/// let live = Liveness::compute(&f);
/// assert!(live.is_live_in(blk, x), "x flows into the second block");
/// ```
#[derive(Clone, Debug)]
pub struct Liveness {
    global_index: Vec<Option<u32>>,
    globals: Vec<Temp>,
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
    /// Number of iterations the solver took to reach the fixed point
    /// (exposed because the paper's complexity discussion, §2.6, leans on
    /// this being 2–3 in practice).
    pub iterations: u32,
}

/// Per-chunk classification state for pass 1.
struct ChunkClass {
    seen: Vec<bool>,
    multi_block: Vec<bool>,
    upward_exposed: Vec<bool>,
}

/// Pass 1 over a contiguous run of blocks: classifies each temporary as
/// seen / multi-block / upward-exposed *within these blocks*. The
/// "defined in this block before this use" test uses an epoch stamp (one
/// u32 per temp, allocated once) instead of a per-block boolean buffer,
/// making the pass O(blocks + insts) instead of O(blocks × temps).
fn classify_blocks(f: &Function, blocks: &[BlockId], nt: usize) -> ChunkClass {
    let mut seen_in: Vec<Option<BlockId>> = vec![None; nt];
    let mut multi_block = vec![false; nt];
    let mut upward_exposed = vec![false; nt];
    let mut defined_epoch = vec![0u32; nt];
    for &b in blocks {
        let epoch = b.index() as u32 + 1; // 0 means "never defined"
        for ins in &f.block(b).insts {
            ins.inst.for_each_use(|r| {
                if let Some(t) = r.as_temp() {
                    match seen_in[t.index()] {
                        None => seen_in[t.index()] = Some(b),
                        Some(prev) if prev != b => multi_block[t.index()] = true,
                        _ => {}
                    }
                    if defined_epoch[t.index()] != epoch {
                        upward_exposed[t.index()] = true;
                    }
                }
            });
            ins.inst.for_each_def(|r| {
                if let Some(t) = r.as_temp() {
                    match seen_in[t.index()] {
                        None => seen_in[t.index()] = Some(b),
                        Some(prev) if prev != b => multi_block[t.index()] = true,
                        _ => {}
                    }
                    defined_epoch[t.index()] = epoch;
                }
            });
        }
    }
    ChunkClass { seen: seen_in.iter().map(Option::is_some).collect(), multi_block, upward_exposed }
}

/// Pass 2 over a contiguous run of blocks: per-block gen (upward-exposed
/// uses) and kill (defs). `gen`/`kill` are the slices for exactly `blocks`.
fn gen_kill_blocks(
    f: &Function,
    blocks: &[BlockId],
    global_index: &[Option<u32>],
    gen: &mut [BitSet],
    kill: &mut [BitSet],
) {
    for (i, &b) in blocks.iter().enumerate() {
        for ins in &f.block(b).insts {
            ins.inst.for_each_use(|r| {
                if let Some(g) = r.as_temp().and_then(|t| global_index[t.index()]) {
                    if !kill[i].contains(g as usize) {
                        gen[i].insert(g as usize);
                    }
                }
            });
            ins.inst.for_each_def(|r| {
                if let Some(g) = r.as_temp().and_then(|t| global_index[t.index()]) {
                    kill[i].insert(g as usize);
                }
            });
        }
    }
}

impl Liveness {
    /// Computes liveness for `f`.
    pub fn compute(f: &Function) -> Self {
        Liveness::compute_with_workers(f, 1)
    }

    /// Computes liveness for `f`, splitting the per-block passes
    /// (classification and gen/kill construction) across up to `workers`
    /// threads over contiguous block ranges. The result is identical to the
    /// serial computation: classification merges are order-independent
    /// (a temp referenced in two disjoint chunks is multi-block by
    /// definition), global bit positions are assigned by temp index, and
    /// the fixed-point solve stays serial.
    pub fn compute_with_workers(f: &Function, workers: usize) -> Self {
        let nt = f.num_temps();
        let nb = f.num_blocks();
        let workers = workers.clamp(1, nb.max(1));
        let block_ids: Vec<BlockId> = f.block_ids().collect();
        let chunk = nb.div_ceil(workers);

        // Pass 1: classify temporaries as global or block-local.
        let (mut multi_block, upward_exposed) = if workers == 1 {
            let c = classify_blocks(f, &block_ids, nt);
            (c.multi_block, c.upward_exposed)
        } else {
            let results: Vec<ChunkClass> = std::thread::scope(|s| {
                let handles: Vec<_> = block_ids
                    .chunks(chunk)
                    .map(|blocks| s.spawn(move || classify_blocks(f, blocks, nt)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("liveness worker panicked")).collect()
            });
            let mut multi_block = vec![false; nt];
            let mut upward_exposed = vec![false; nt];
            let mut chunks_seen = vec![0u8; nt];
            for c in &results {
                for t in 0..nt {
                    if c.seen[t] {
                        chunks_seen[t] = chunks_seen[t].saturating_add(1);
                    }
                    multi_block[t] |= c.multi_block[t];
                    upward_exposed[t] |= c.upward_exposed[t];
                }
            }
            // Chunks are disjoint block ranges: a temp seen in two chunks is
            // necessarily referenced in two different blocks.
            for t in 0..nt {
                multi_block[t] |= chunks_seen[t] > 1;
            }
            (multi_block, upward_exposed)
        };
        for t in 0..nt {
            multi_block[t] |= upward_exposed[t];
        }
        let mut global_index = vec![None; nt];
        let mut globals = Vec::new();
        for (t, &is_global) in multi_block.iter().enumerate() {
            if is_global {
                global_index[t] = Some(globals.len() as u32);
                globals.push(Temp(t as u32));
            }
        }
        let ng = globals.len();

        // Pass 2: per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![BitSet::new(ng); nb];
        let mut kill = vec![BitSet::new(ng); nb];
        if workers == 1 {
            gen_kill_blocks(f, &block_ids, &global_index, &mut gen, &mut kill);
        } else {
            let global_index = &global_index;
            std::thread::scope(|s| {
                let mut gen_rest: &mut [BitSet] = &mut gen;
                let mut kill_rest: &mut [BitSet] = &mut kill;
                for blocks in block_ids.chunks(chunk) {
                    let (g, gr) = gen_rest.split_at_mut(blocks.len());
                    let (k, kr) = kill_rest.split_at_mut(blocks.len());
                    gen_rest = gr;
                    kill_rest = kr;
                    s.spawn(move || gen_kill_blocks(f, blocks, global_index, g, k));
                }
            });
        }

        // Pass 3: solve to the fixed point, visiting blocks in reverse
        // reverse-postorder (a good order for backward problems). Serial:
        // the propagation order is the algorithm.
        let order = Order::compute(f);
        let rev: Vec<_> = order.rpo.iter().rev().copied().collect();
        let sol = crate::dataflow::solve_backward(f, ng, &gen, &kill, &rev);

        Liveness {
            global_index,
            globals,
            live_in: sol.live_in,
            live_out: sol.live_out,
            iterations: sol.iterations,
        }
    }

    /// Number of global (cross-block) temporaries.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// True if `t` participates in cross-block liveness.
    #[inline]
    pub fn is_global(&self, t: Temp) -> bool {
        self.global_of(t).is_some()
    }

    /// The dense bit position of a global temporary. Temporaries created
    /// *after* the analysis ran (e.g. by spill-code insertion, which only
    /// creates block-local temporaries) report `None`.
    #[inline]
    pub fn global_of(&self, t: Temp) -> Option<usize> {
        self.global_index.get(t.index()).copied().flatten().map(|g| g as usize)
    }

    /// The temporary at bit position `g`.
    #[inline]
    pub fn temp_of(&self, g: usize) -> Temp {
        self.globals[g]
    }

    /// Live-in set of `b` (bit positions; map through [`Liveness::temp_of`]).
    #[inline]
    pub fn live_in(&self, b: BlockId) -> &BitSet {
        &self.live_in[b.index()]
    }

    /// Live-out set of `b`.
    #[inline]
    pub fn live_out(&self, b: BlockId) -> &BitSet {
        &self.live_out[b.index()]
    }

    /// True if `t` is live into `b`.
    pub fn is_live_in(&self, b: BlockId, t: Temp) -> bool {
        self.global_of(t).is_some_and(|g| self.live_in[b.index()].contains(g))
    }

    /// True if `t` is live out of `b`.
    pub fn is_live_out(&self, b: BlockId, t: Temp) -> bool {
        self.global_of(t).is_some_and(|g| self.live_out[b.index()].contains(g))
    }

    /// Iterates over the temporaries live out of `b`.
    pub fn live_out_temps<'a>(&'a self, b: BlockId) -> impl Iterator<Item = Temp> + 'a {
        self.live_out[b.index()].iter().map(move |g| self.temp_of(g))
    }

    /// Iterates over the temporaries live into `b`.
    pub fn live_in_temps<'a>(&'a self, b: BlockId) -> impl Iterator<Item = Temp> + 'a {
        self.live_in[b.index()].iter().map(move |g| self.temp_of(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, FunctionBuilder, MachineSpec, RegClass};

    /// A loop where `acc` is live around the back edge and `k` is local.
    fn loop_func() -> (Function, Temp, Temp) {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "l", &[RegClass::Int]);
        let n = b.param(0);
        let acc = b.int_temp("acc");
        let k = b.int_temp("k");
        b.movi(acc, 0);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.branch(Cond::Gt, n, body, exit);
        b.switch_to(body);
        b.movi(k, 3);
        b.add(acc, acc, k);
        b.addi(n, n, -1);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        (b.finish(), acc, k)
    }

    #[test]
    fn loop_carried_values_are_live_around_back_edge() {
        let (f, acc, k) = loop_func();
        let l = Liveness::compute(&f);
        assert!(l.is_global(acc));
        assert!(!l.is_global(k), "k is defined before use within one block");
        let head = BlockId(1);
        let body = BlockId(2);
        assert!(l.is_live_in(head, acc));
        assert!(l.is_live_out(body, acc));
        assert!(l.is_live_in(BlockId(3), acc), "returned value is live into the exit block");
    }

    #[test]
    fn dead_temp_is_not_live() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "d", &[]);
        let x = b.int_temp("x");
        b.movi(x, 1);
        let b1 = b.block();
        b.jump(b1);
        b.switch_to(b1);
        b.ret(None);
        let f = b.finish();
        let l = Liveness::compute(&f);
        assert!(!l.is_live_out(BlockId(0), x));
        assert_eq!(l.live_in(BlockId(1)).count(), 0);
    }

    #[test]
    fn upward_exposed_single_block_temp_is_global() {
        // Use-before-def in the only block referencing the temp: must stay in
        // the dataflow universe for safety.
        let spec = MachineSpec::alpha_like();
        let mut fb = FunctionBuilder::new(&spec, "u", &[]);
        let x = fb.int_temp("x");
        let y = fb.int_temp("y");
        fb.add(y, x, x); // x used before any def
        fb.ret(Some(y.into()));
        let f = fb.finish();
        let l = Liveness::compute(&f);
        assert!(l.is_global(x));
        assert!(l.is_live_in(BlockId(0), x));
    }

    #[test]
    fn solver_terminates_quickly() {
        let (f, _, _) = loop_func();
        let l = Liveness::compute(&f);
        assert!(l.iterations <= 4, "expected 2-3 iterations, got {}", l.iterations);
    }

    #[test]
    fn parallel_liveness_matches_serial() {
        let (f, _, _) = loop_func();
        let serial = Liveness::compute(&f);
        for workers in [2, 3, 7] {
            let par = Liveness::compute_with_workers(&f, workers);
            assert_eq!(par.num_globals(), serial.num_globals(), "workers={workers}");
            for g in 0..serial.num_globals() {
                assert_eq!(par.temp_of(g), serial.temp_of(g), "workers={workers}");
            }
            for b in f.block_ids() {
                assert_eq!(par.live_in(b), serial.live_in(b), "workers={workers} b={b:?}");
                assert_eq!(par.live_out(b), serial.live_out(b), "workers={workers} b={b:?}");
            }
        }
    }
}

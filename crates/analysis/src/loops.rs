//! Natural-loop detection and loop depth.
//!
//! Both allocators in the paper weight occurrence counts by loop depth
//! (§3: "Loop depth is used in the same way to weight occurrence counts in
//! both allocators"); the binpacking eviction heuristic weights the distance
//! to the next reference by it (§2.3).

use lsra_ir::{BlockId, Function};

use crate::dominators::Dominators;
use crate::order::Order;

/// Loop-nesting information: the nesting depth of every block (0 = not in
/// any loop).
#[derive(Clone, Debug)]
pub struct LoopInfo {
    depth: Vec<u32>,
}

impl LoopInfo {
    /// Finds natural loops (back edges `t -> h` where `h` dominates `t`) and
    /// accumulates nesting depth per block.
    pub fn compute(f: &Function, order: &Order, doms: &Dominators) -> Self {
        let n = f.num_blocks();
        let preds = f.compute_preds();
        let mut depth = vec![0u32; n];
        for b in f.block_ids() {
            if !order.is_reachable(b) {
                continue;
            }
            for h in f.succs(b) {
                if doms.dominates(h, b) {
                    // Natural loop of back edge b -> h: h plus all blocks
                    // that reach b without passing through h.
                    let mut in_loop = vec![false; n];
                    in_loop[h.index()] = true;
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if in_loop[x.index()] {
                            continue;
                        }
                        in_loop[x.index()] = true;
                        for &p in &preds[x.index()] {
                            if !in_loop[p.index()] {
                                stack.push(p);
                            }
                        }
                    }
                    for (i, &inl) in in_loop.iter().enumerate() {
                        if inl {
                            depth[i] += 1;
                        }
                    }
                }
            }
        }
        LoopInfo { depth }
    }

    /// Convenience constructor running the prerequisite analyses.
    pub fn of(f: &Function) -> Self {
        let order = Order::compute(f);
        let doms = Dominators::compute(f, &order);
        LoopInfo::compute(f, &order, &doms)
    }

    /// Nesting depth of `b` (0 outside all loops).
    #[inline]
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// The paper-style frequency weight for a block: `10^depth`, capped to
    /// avoid overflow in cost sums.
    pub fn weight(&self, b: BlockId) -> f64 {
        10f64.powi(self.depth(b).min(8) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, FunctionBuilder, MachineSpec};

    /// Two nested loops:
    /// ```text
    /// b0 -> b1(outer head) -> b2(inner head) -> b2 ... -> b3 -> b1 ... -> b4
    /// ```
    fn nested() -> Function {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "n", &[]);
        let t = b.int_temp("t");
        b.movi(t, 1);
        let b1 = b.block();
        let b2 = b.block();
        let b3 = b.block();
        let b4 = b.block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.branch(Cond::Ne, t, b2, b3); // inner self-loop
        b.switch_to(b3);
        b.branch(Cond::Ne, t, b1, b4); // outer back edge
        b.switch_to(b4);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn nested_loop_depths() {
        let f = nested();
        let li = LoopInfo::of(&f);
        assert_eq!(li.depth(BlockId(0)), 0);
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 2, "inner head is in both loops");
        assert_eq!(li.depth(BlockId(3)), 1);
        assert_eq!(li.depth(BlockId(4)), 0);
    }

    #[test]
    fn weights_scale_by_ten() {
        let f = nested();
        let li = LoopInfo::of(&f);
        assert_eq!(li.weight(BlockId(0)), 1.0);
        assert_eq!(li.weight(BlockId(2)), 100.0);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "s", &[]);
        b.ret(None);
        let f = b.finish();
        let li = LoopInfo::of(&f);
        assert_eq!(li.depth(BlockId(0)), 0);
    }
}

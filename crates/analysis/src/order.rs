//! Block orderings: reverse postorder, used by the iterative dataflow
//! solvers and the dominator computation.

use lsra_ir::{BlockId, Function};

/// Depth-first preorder/postorder information over a function's CFG.
#[derive(Clone, Debug)]
pub struct Order {
    /// Blocks in reverse postorder (entry first).
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`, or `usize::MAX` if unreachable.
    pub rpo_pos: Vec<usize>,
}

impl Order {
    /// Computes a reverse postorder from the entry block.
    pub fn compute(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
                                      // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
        let entry = f.entry();
        state[entry.index()] = 1;
        stack.push((entry, f.succs(entry), 0));
        while let Some((b, succs, i)) = stack.last_mut() {
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    let ss = f.succs(s);
                    stack.push((s, ss, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(*b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in post.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        Order { rpo: post, rpo_pos }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, FunctionBuilder, MachineSpec};

    fn diamond() -> Function {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "d", &[]);
        let t = b.int_temp("t");
        b.movi(t, 1);
        let l = b.block();
        let r = b.block();
        let j = b.block();
        b.branch(Cond::Ne, t, l, r);
        b.switch_to(l);
        b.jump(j);
        b.switch_to(r);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn rpo_starts_at_entry_and_ends_at_exit() {
        let f = diamond();
        let o = Order::compute(&f);
        assert_eq!(o.rpo.len(), 4);
        assert_eq!(o.rpo[0], f.entry());
        assert_eq!(*o.rpo.last().unwrap(), BlockId(3));
        for b in f.block_ids() {
            assert!(o.is_reachable(b));
        }
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "u", &[]);
        b.ret(None);
        let dead = b.block();
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let o = Order::compute(&f);
        assert!(o.is_reachable(BlockId(0)));
        assert!(!o.is_reachable(dead));
        assert_eq!(o.rpo.len(), 1);
    }
}

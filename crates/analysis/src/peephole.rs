//! The post-allocation peephole pass.
//!
//! Both allocator configurations in the paper are "followed by a peephole
//! optimization pass that removes moves" (§3). After allocation, a
//! coalesced move has identical physical source and destination; this pass
//! deletes such moves.

use lsra_ir::{Function, Inst};

/// Removes `mov rX, rX` identity moves; returns the number removed.
pub fn remove_identity_moves(f: &mut Function) -> usize {
    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let block = f.block_mut(b);
        let before = block.insts.len();
        block.insts.retain(|ins| match ins.inst {
            Inst::Mov { dst, src } => dst != src,
            _ => true,
        });
        removed += before - block.insts.len();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{FunctionBuilder, MachineSpec, PhysReg, Reg};

    #[test]
    fn removes_only_identity_moves() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "pm", &[]);
        let r1: Reg = PhysReg::int(1).into();
        let r2: Reg = PhysReg::int(2).into();
        b.mov(r1, r1); // identity
        b.mov(r2, r1); // real move
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(remove_identity_moves(&mut f), 1);
        assert_eq!(f.count_insts(|i| i.is_move()), 1);
    }
}

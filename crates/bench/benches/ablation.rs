//! Ablation study over the design choices DESIGN.md calls out: each §2
//! mechanism of second-chance binpacking is switched off individually and
//! the dynamic spill cost re-measured on the spilling benchmarks.
//!
//! * `-holes`: no insufficiently-large (register) holes — temporaries live
//!   across calls compete only for callee-saved registers (§2.5);
//! * `-early2c`: no early second chance (eviction-to-move, §2.5);
//! * `-coalesce`: no move-coalescing check (§2.5);
//! * `-suppress`: no spill-store suppression via `ARE_CONSISTENT` (§2.3);
//! * `conserv`: the strictly linear conservative consistency mode (§2.6)
//!   instead of the iterative `USED_C` dataflow.
//!
//! ```sh
//! cargo bench -p lsra-bench --bench ablation
//! ```

use lsra_bench::{measure, BinpackWithCleanup};
use lsra_core::{BinpackAllocator, BinpackConfig, ConsistencyMode};
use lsra_ir::MachineSpec;

fn main() {
    let spec = MachineSpec::alpha_like();
    let variants: Vec<(&str, BinpackConfig)> = vec![
        ("full", BinpackConfig::default()),
        ("-holes", BinpackConfig { allow_insufficient_holes: false, ..Default::default() }),
        ("-early2c", BinpackConfig { early_second_chance: false, ..Default::default() }),
        ("-coalesce", BinpackConfig { move_coalescing: false, ..Default::default() }),
        ("-suppress", BinpackConfig { store_suppression: false, ..Default::default() }),
        (
            "conserv",
            BinpackConfig { consistency: ConsistencyMode::Conservative, ..Default::default() },
        ),
        ("two-pass", BinpackConfig::two_pass()),
    ];

    let interesting = ["doduc", "espresso", "fpppp", "m88ksim", "sort", "wc", "li"];
    println!("Ablation: dynamic instruction totals per configuration");
    print!("{:<10}", "benchmark");
    for (name, _) in &variants {
        print!(" {name:>12}");
    }
    print!(" {:>12}", "+cleanup");
    println!();
    println!("{}", "-".repeat(10 + (variants.len() + 1) * 13));
    for wname in interesting {
        let w = lsra_workloads::by_name(wname).expect("known workload");
        print!("{wname:<10}");
        for (_, cfg) in &variants {
            let m = measure(&w, &BinpackAllocator::new(*cfg), &spec, 1);
            print!(" {:>12}", m.counts.total);
        }
        // The paper's suggested post-allocation cleanup (§2.4), applied on
        // top of the full configuration.
        let m = measure(&w, &BinpackWithCleanup::default(), &spec, 1);
        print!(" {:>12}", m.counts.total);
        println!();
    }
    println!();
    println!(
        "Each cell is the verified dynamic instruction count; 'full' is the paper's algorithm."
    );
}

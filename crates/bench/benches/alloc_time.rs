//! Regenerates the paper's **Table 3**: allocation time on modules with
//! small, large, and very large average register-candidate counts, showing
//! coloring's superlinear slowdown as interference graphs grow.
//!
//! The three module generators mirror the paper's rows:
//!
//! | paper module | avg candidates | avg interference edges |
//! |--------------|---------------:|-----------------------:|
//! | cvrin.c      |            245 |                  1,061 |
//! | twldrv.f     |          6,218 |                 51,796 |
//! | fpppp.f      |          6,697 |                116,926 |
//!
//! ```sh
//! cargo bench -p lsra-bench --bench alloc_time
//! ```

use lsra_bench::time_allocation;
use lsra_core::BinpackAllocator;
use lsra_coloring::ColoringAllocator;
use lsra_ir::MachineSpec;
use lsra_workloads::scaling;

fn main() {
    let spec = MachineSpec::alpha_like();
    let runs = 5; // best of five, as in the paper

    let modules = [
        ("cvrin-like", scaling::cvrin_like()),
        ("twldrv-like", scaling::twldrv_like()),
        ("fpppp-like", scaling::fpppp_like()),
    ];

    println!("Table 3: allocation times (best of {runs})");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>14} {:>8}",
        "module", "candidates", "graph edges", "coloring (ms)", "binpack (ms)", "gc/bp"
    );
    println!("{}", "-".repeat(80));
    for (name, module) in &modules {
        // Average candidates over the "procedure" functions (main excluded,
        // mirroring the paper's per-procedure averages).
        let procs: Vec<_> =
            module.funcs.iter().filter(|f| f.name.starts_with("proc")).collect();
        let avg_candidates =
            procs.iter().map(|f| f.num_temps()).sum::<usize>() / procs.len().max(1);

        let (gc_time, gc_stats) = time_allocation(module, &ColoringAllocator, &spec, runs);
        let (bp_time, _) = time_allocation(module, &BinpackAllocator::default(), &spec, runs);
        println!(
            "{:<12} {:>12} {:>14} {:>14.2} {:>14.2} {:>8.2}",
            name,
            avg_candidates,
            gc_stats.interference_edges / procs.len().max(1) as u64,
            gc_time * 1e3,
            bp_time * 1e3,
            gc_time / bp_time,
        );
    }
    println!();
    println!(
        "The paper reports 0.4s vs 1.5s (coloring faster) at 245 candidates and \
         15.8s vs 4.5s (coloring 3.5x slower) at 6,697; the crossover and the \
         superlinear growth are the claims under test."
    );
}

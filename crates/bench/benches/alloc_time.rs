//! Allocation-time benchmark: the paper's **Table 3** plus a per-phase
//! breakdown and a serial-vs-parallel comparison of `allocate_module`.
//!
//! The Table 3 section regenerates allocation time on modules with small,
//! large, and very large average register-candidate counts, showing
//! coloring's superlinear slowdown as interference graphs grow:
//!
//! | paper module | avg candidates | avg interference edges |
//! |--------------|---------------:|-----------------------:|
//! | cvrin.c      |            245 |                  1,061 |
//! | twldrv.f     |          6,218 |                 51,796 |
//! | fpppp.f      |          6,697 |                116,926 |
//!
//! The phase section times every SPEC-like workload under `time_phases`
//! (ordering/liveness/lifetimes/scan/resolution/consistency), and the
//! parallel section times `allocate_module` at one worker versus all
//! available cores. Everything is written to `BENCH_alloc_time.json` at the
//! workspace root.
//!
//! ```sh
//! cargo bench -p lsra-bench --bench alloc_time
//! ```

use lsra_bench::time_allocation;
use lsra_coloring::ColoringAllocator;
use lsra_core::{AllocStats, BinpackAllocator, BinpackConfig, PHASE_NAMES};
use lsra_ir::{MachineSpec, Module};
use lsra_trace::JsonWriter;
use lsra_workloads::scaling;

/// One timed configuration, ready for JSON.
struct Entry {
    workload: String,
    allocator: &'static str,
    best_seconds: f64,
    stats: AllocStats,
}

/// One serial-vs-parallel comparison, ready for JSON.
struct ParallelEntry {
    workload: String,
    allocator: &'static str,
    serial_seconds: f64,
    parallel_seconds: f64,
    workers: usize,
}

/// One throughput measurement on a synthetic scaling module.
struct ScalingEntry {
    workload: String,
    shape: &'static str,
    insts: usize,
    allocator: &'static str,
    best_seconds: f64,
    stats: AllocStats,
}

fn binpack(workers: usize) -> BinpackAllocator {
    BinpackAllocator::new(BinpackConfig { workers, time_phases: true, ..Default::default() })
}

fn two_pass(workers: usize) -> BinpackAllocator {
    BinpackAllocator::new(BinpackConfig { workers, time_phases: true, ..BinpackConfig::two_pass() })
}

/// The pre-arena behaviour: a fresh scratch per function (what the default
/// trait `allocate_module` did before the reuse layer), for the
/// before-vs-after comparison.
struct FreshPerFunction(BinpackAllocator);

impl lsra_core::RegisterAllocator for FreshPerFunction {
    fn name(&self) -> &str {
        "fresh-scratch"
    }

    fn allocate_function(&self, f: &mut lsra_ir::Function, spec: &MachineSpec) -> AllocStats {
        self.0.allocate_function(f, spec)
    }

    fn allocate_module(&self, m: &mut Module, spec: &MachineSpec) -> AllocStats {
        // Serial, one fresh arena per function.
        let mut total = AllocStats::default();
        for f in &mut m.funcs {
            total.merge(&self.0.allocate_function(f, spec));
        }
        total
    }
}

fn json(
    entries: &[Entry],
    parallel: &[ParallelEntry],
    scaling: &[ScalingEntry],
    runs: usize,
    workers: usize,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("machine", "alpha-like");
    w.field_uint("runs", runs as u64);
    w.field_uint("workers_available", workers as u64);
    w.key("phase_names");
    w.begin_array();
    for n in PHASE_NAMES {
        w.string(n);
    }
    w.end_array();
    w.key("entries");
    w.begin_array();
    for e in entries {
        let timings = e.stats.timings.unwrap_or_default();
        w.begin_object();
        w.field_str("workload", &e.workload);
        w.field_str("allocator", e.allocator);
        w.field_float("alloc_seconds", e.best_seconds);
        w.field_uint("candidates", e.stats.candidates as u64);
        w.key("phases");
        w.begin_object();
        for (n, v) in PHASE_NAMES.iter().zip(timings.seconds) {
            w.field_float(n, v);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("parallel");
    w.begin_array();
    for p in parallel {
        w.begin_object();
        w.field_str("workload", &p.workload);
        w.field_str("allocator", p.allocator);
        w.field_uint("workers", p.workers as u64);
        w.field_float("serial_seconds", p.serial_seconds);
        w.field_float("parallel_seconds", p.parallel_seconds);
        w.field_float("speedup", p.serial_seconds / p.parallel_seconds);
        w.end_object();
    }
    w.end_array();
    w.key("scaling");
    w.begin_array();
    for s in scaling {
        w.begin_object();
        w.field_str("workload", &s.workload);
        w.field_str("shape", s.shape);
        w.field_uint("insts", s.insts as u64);
        w.field_str("allocator", s.allocator);
        w.field_float("alloc_seconds", s.best_seconds);
        w.field_uint("candidates", s.stats.candidates as u64);
        w.field_float("insts_per_sec", s.insts as f64 / s.best_seconds);
        w.key("phases");
        w.begin_object();
        if let Some(t) = s.stats.timings {
            for (n, v) in PHASE_NAMES.iter().zip(t.seconds) {
                w.key(n);
                w.begin_object();
                w.field_float("seconds", v);
                w.field_float("insts_per_sec", if v > 0.0 { s.insts as f64 / v } else { 0.0 });
                w.end_object();
            }
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let doc = w.finish();
    lsra_trace::json::validate(&doc).expect("writer produced invalid JSON");
    doc
}

fn main() {
    let spec = MachineSpec::alpha_like();
    let runs = 5; // best of five, as in the paper
    let workers_available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // ---- Table 3: coloring vs binpacking as candidate counts grow ----
    let modules = [
        ("cvrin-like", scaling::cvrin_like()),
        ("twldrv-like", scaling::twldrv_like()),
        ("fpppp-like", scaling::fpppp_like()),
    ];

    println!("Table 3: allocation times (best of {runs})");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>14} {:>8}",
        "module", "candidates", "graph edges", "coloring (ms)", "binpack (ms)", "gc/bp"
    );
    println!("{}", "-".repeat(80));
    for (name, module) in &modules {
        // Average candidates over the "procedure" functions (main excluded,
        // mirroring the paper's per-procedure averages).
        let procs: Vec<_> = module.funcs.iter().filter(|f| f.name.starts_with("proc")).collect();
        let avg_candidates =
            procs.iter().map(|f| f.num_temps()).sum::<usize>() / procs.len().max(1);

        let (gc_time, gc_stats) = time_allocation(module, &ColoringAllocator, &spec, runs);
        let (bp_time, _) = time_allocation(module, &BinpackAllocator::default(), &spec, runs);
        println!(
            "{:<12} {:>12} {:>14} {:>14.2} {:>14.2} {:>8.2}",
            name,
            avg_candidates,
            gc_stats.interference_edges / procs.len().max(1) as u64,
            gc_time * 1e3,
            bp_time * 1e3,
            gc_time / bp_time,
        );
    }
    println!();
    println!(
        "The paper reports 0.4s vs 1.5s (coloring faster) at 245 candidates and \
         15.8s vs 4.5s (coloring 3.5x slower) at 6,697; the crossover and the \
         superlinear growth are the claims under test."
    );
    println!();

    // ---- Per-phase breakdown: every workload, both binpack variants ----
    let mut entries: Vec<Entry> = Vec::new();
    println!("Per-phase allocation time (best of {runs}, ms)");
    println!(
        "{:<12} {:<10} {:>8} {:>8} {:>9} {:>8} {:>8} {:>11} {:>8}",
        "workload",
        "allocator",
        "order",
        "liveness",
        "lifetimes",
        "scan",
        "resolve",
        "consistency",
        "total"
    );
    println!("{}", "-".repeat(90));
    let workload_modules: Vec<(String, Module)> = lsra_workloads::all()
        .iter()
        .map(|w| (w.name.to_string(), (w.build)()))
        .chain(modules.iter().map(|(n, m)| (n.to_string(), m.clone())))
        .collect();
    for (name, module) in &workload_modules {
        for (alloc_name, alloc) in [("binpack", binpack(1)), ("two-pass", two_pass(1))] {
            let (best, stats) = time_allocation(module, &alloc, &spec, runs);
            let t = stats.timings.unwrap_or_default();
            println!(
                "{:<12} {:<10} {:>8.3} {:>8.3} {:>9.3} {:>8.3} {:>8.3} {:>11.3} {:>8.3}",
                name,
                alloc_name,
                t.seconds[0] * 1e3,
                t.seconds[1] * 1e3,
                t.seconds[2] * 1e3,
                t.seconds[3] * 1e3,
                t.seconds[4] * 1e3,
                t.seconds[5] * 1e3,
                best * 1e3,
            );
            entries.push(Entry {
                workload: name.clone(),
                allocator: alloc_name,
                best_seconds: best,
                stats,
            });
        }
    }
    println!();

    // ---- Serial vs parallel allocate_module ----
    let par_workers = workers_available.max(2);
    let mut parallel: Vec<ParallelEntry> = Vec::new();
    println!(
        "Serial vs parallel allocate_module (1 worker vs {par_workers}, \
         {workers_available} core(s) available, best of {runs})"
    );
    println!(
        "{:<12} {:<10} {:>12} {:>14} {:>8}",
        "workload", "allocator", "serial (ms)", "parallel (ms)", "speedup"
    );
    println!("{}", "-".repeat(62));
    for (name, module) in &workload_modules {
        for (alloc_name, serial, par) in [
            ("binpack", binpack(1), binpack(par_workers)),
            ("two-pass", two_pass(1), two_pass(par_workers)),
        ] {
            let (serial_s, _) = time_allocation(module, &serial, &spec, runs);
            let (par_s, _) = time_allocation(module, &par, &spec, runs);
            println!(
                "{:<12} {:<10} {:>12.3} {:>14.3} {:>8.2}",
                name,
                alloc_name,
                serial_s * 1e3,
                par_s * 1e3,
                serial_s / par_s,
            );
            parallel.push(ParallelEntry {
                workload: name.clone(),
                allocator: alloc_name,
                serial_seconds: serial_s,
                parallel_seconds: par_s,
                workers: par_workers,
            });
        }
    }

    // ---- Scratch-arena reuse: fresh per function vs reused ----
    println!();
    println!("Scratch-arena reuse (serial, best of {runs})");
    println!("{:<12} {:>11} {:>12} {:>8}", "workload", "fresh (ms)", "reused (ms)", "ratio");
    println!("{}", "-".repeat(48));
    for (name, module) in &workload_modules {
        let fresh = FreshPerFunction(BinpackAllocator::new(BinpackConfig {
            workers: 1,
            ..Default::default()
        }));
        let reused = BinpackAllocator::new(BinpackConfig { workers: 1, ..Default::default() });
        let (fresh_s, _) = time_allocation(module, &fresh, &spec, runs);
        let (reused_s, _) = time_allocation(module, &reused, &spec, runs);
        println!(
            "{:<12} {:>11.3} {:>12.3} {:>8.2}",
            name,
            fresh_s * 1e3,
            reused_s * 1e3,
            fresh_s / reused_s,
        );
    }

    // ---- Scaling: throughput on 10^4..10^6-instruction modules ----
    //
    // `LSRA_SCALING_MAX_INSTS` caps the largest module measured, so the
    // harness can run quickly (or on slow baselines) without editing code.
    let max_insts: usize = std::env::var("LSRA_SCALING_MAX_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let shapes: [(&str, usize); 5] = [
        ("medium", 10_000),
        ("medium", 100_000),
        ("huge", 100_000),
        ("medium", 1_000_000),
        ("huge", 1_000_000),
    ];
    let mut scaling_entries: Vec<ScalingEntry> = Vec::new();
    println!();
    println!("Scaling throughput (serial, static instructions per second of allocation)");
    println!(
        "{:<18} {:>9} {:<10} {:>12} {:>14}",
        "module", "insts", "allocator", "alloc (ms)", "insts/sec"
    );
    println!("{}", "-".repeat(68));
    for (shape, target) in shapes {
        if target > max_insts {
            println!("(skipping {shape} at {target}: over LSRA_SCALING_MAX_INSTS={max_insts})");
            continue;
        }
        let module = lsra_workloads::scaling::scale_module(shape, target).unwrap();
        let insts = module.num_insts();
        let name = format!("scale-{shape}-{target}");
        let scale_runs = if target >= 1_000_000 { 2 } else { 3 };
        // Coloring's interference-graph build is superlinear in simultaneous
        // liveness, and the simple allocators re-walk whole lifetimes; they
        // are measured only where they finish in reasonable time. The
        // binpack family runs at every size.
        for (alloc_name, alloc) in [("binpack", binpack(1)), ("two-pass", two_pass(1))] {
            let (best, stats) = time_allocation(&module, &alloc, &spec, scale_runs);
            println!(
                "{:<18} {:>9} {:<10} {:>12.2} {:>14.0}",
                name,
                insts,
                alloc_name,
                best * 1e3,
                insts as f64 / best
            );
            scaling_entries.push(ScalingEntry {
                workload: name.clone(),
                shape,
                insts,
                allocator: alloc_name,
                best_seconds: best,
                stats,
            });
        }
        if shape == "medium" && target <= 100_000 {
            let (best, stats) = time_allocation(&module, &ColoringAllocator, &spec, scale_runs);
            println!(
                "{:<18} {:>9} {:<10} {:>12.2} {:>14.0}",
                name,
                insts,
                "coloring",
                best * 1e3,
                insts as f64 / best
            );
            scaling_entries.push(ScalingEntry {
                workload: name.clone(),
                shape,
                insts,
                allocator: "coloring",
                best_seconds: best,
                stats,
            });
        } else {
            println!("(coloring skipped on {name}: graph build too slow at this size)");
        }
        if target <= 100_000 {
            let (best, stats) =
                time_allocation(&module, &lsra_poletto::PolettoAllocator, &spec, scale_runs);
            println!(
                "{:<18} {:>9} {:<10} {:>12.2} {:>14.0}",
                name,
                insts,
                "poletto",
                best * 1e3,
                insts as f64 / best
            );
            scaling_entries.push(ScalingEntry {
                workload: name.clone(),
                shape,
                insts,
                allocator: "poletto",
                best_seconds: best,
                stats,
            });
        } else {
            println!("(poletto skipped on {name}: measured only up to 10^5)");
        }
    }

    // ---- JSON ----
    let out = json(&entries, &parallel, &scaling_entries, runs, workers_available);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_alloc_time.json");
    match std::fs::write(&path, &out) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}

//! Micro-benchmarks of allocation time as a function of the
//! register-candidate count — the continuous version of the paper's
//! Table 3 (and the "linear scan is linear, coloring is not" claim of
//! §2.6/§3.2).
//!
//! Runs on a dependency-free internal harness (best-of-N wall clock, the
//! paper's own methodology) so the suite builds without registry access.
//!
//! ```sh
//! cargo bench -p lsra-bench --bench criterion_scaling
//! ```

use lsra_bench::time_allocation;
use lsra_coloring::ColoringAllocator;
use lsra_core::{BinpackAllocator, RegisterAllocator};
use lsra_ir::MachineSpec;
use lsra_poletto::PolettoAllocator;
use lsra_workloads::scaling;

fn main() {
    let spec = MachineSpec::alpha_like();
    let runs = 10;

    println!("allocation_time_vs_candidates (best of {runs})");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "candidates", "binpack (ms)", "coloring (ms)", "poletto (ms)"
    );
    println!("{}", "-".repeat(58));
    for &candidates in &[100, 300, 1000, 3000] {
        let overlap = (candidates / 12).clamp(16, 56);
        let module = scaling::module_with_candidates("scal", candidates, overlap, 1);
        let allocators: [&dyn RegisterAllocator; 3] =
            [&BinpackAllocator::default(), &ColoringAllocator, &PolettoAllocator];
        let times: Vec<f64> = allocators
            .iter()
            .map(|alloc| time_allocation(&module, *alloc, &spec, runs).0)
            .collect();
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>14.3}",
            candidates,
            times[0] * 1e3,
            times[1] * 1e3,
            times[2] * 1e3,
        );
    }
    println!();
    println!(
        "Linear scan's time should grow linearly with the candidate count; \
         coloring's superlinearly with the interference graph."
    );
}

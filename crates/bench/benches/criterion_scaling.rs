//! Criterion micro-benchmarks of allocation time as a function of the
//! register-candidate count — the continuous version of the paper's
//! Table 3 (and the "linear scan is linear, coloring is not" claim of
//! §2.6/§3.2).
//!
//! ```sh
//! cargo bench -p lsra-bench --bench criterion_scaling
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsra_core::{BinpackAllocator, RegisterAllocator};
use lsra_coloring::ColoringAllocator;
use lsra_ir::MachineSpec;
use lsra_poletto::PolettoAllocator;
use lsra_workloads::scaling;

fn scaling_benches(c: &mut Criterion) {
    let spec = MachineSpec::alpha_like();
    let mut group = c.benchmark_group("allocation_time_vs_candidates");
    group.sample_size(10);
    for &candidates in &[100, 300, 1000, 3000] {
        let overlap = (candidates / 12).clamp(16, 56);
        let module = scaling::module_with_candidates("scal", candidates, overlap, 1);
        group.bench_with_input(
            BenchmarkId::new("binpack", candidates),
            &module,
            |b, module| {
                b.iter(|| {
                    let mut m = module.clone();
                    BinpackAllocator::default().allocate_module(&mut m, &spec)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("coloring", candidates),
            &module,
            |b, module| {
                b.iter(|| {
                    let mut m = module.clone();
                    ColoringAllocator.allocate_module(&mut m, &spec)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("poletto", candidates),
            &module,
            |b, module| {
                b.iter(|| {
                    let mut m = module.clone();
                    PolettoAllocator.allocate_module(&mut m, &spec)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, scaling_benches);
criterion_main!(benches);

//! Regenerates the paper's **Table 1** (dynamic instruction counts and run
//! times, second-chance binpacking vs. graph coloring, with ratios),
//! **Table 2** (percentage of dynamic instructions due to spill code), and
//! **Figure 3** (spill-code composition normalized to binpacking's total),
//! then a five-allocator comparison table (spill percentage and allocation
//! time for binpack, two-pass, coloring, poletto, and ion) that extends the
//! evaluation to the allocators the paper compares against in discussion.
//!
//! ```sh
//! cargo bench -p lsra-bench --bench paper_tables
//! ```

use lsra_bench::{measure, ratio, spill_percent, Measurement};
use lsra_coloring::ColoringAllocator;
use lsra_core::{BinpackAllocator, BinpackConfig, RegisterAllocator};
use lsra_ion::IonAllocator;
use lsra_ir::MachineSpec;
use lsra_poletto::PolettoAllocator;

fn main() {
    let spec = MachineSpec::alpha_like();
    let runs = 5; // the paper: "best of five consecutive runs"
    let workloads = lsra_workloads::all();

    let mut rows: Vec<(Measurement, Measurement)> = Vec::new();
    for w in &workloads {
        let bp = measure(w, &BinpackAllocator::default(), &spec, runs);
        let gc = measure(w, &ColoringAllocator, &spec, runs);
        rows.push((bp, gc));
    }

    println!("Table 1: dynamic instruction counts and run times");
    println!(
        "{:<10} {:>14} {:>14} {:>7} | {:>10} {:>10} {:>7}",
        "benchmark", "binpack", "coloring", "ratio", "bp (ms)", "gc (ms)", "ratio"
    );
    println!("{}", "-".repeat(82));
    for (bp, gc) in &rows {
        println!(
            "{:<10} {:>14} {:>14} {:>7} | {:>10.2} {:>10.2} {:>7}",
            bp.workload,
            bp.counts.total,
            gc.counts.total,
            ratio(bp.counts.total as f64, gc.counts.total as f64),
            bp.run_seconds * 1e3,
            gc.run_seconds * 1e3,
            ratio(bp.run_seconds, gc.run_seconds),
        );
    }

    println!();
    println!("Table 2: percentage of dynamic instructions due to spill code");
    println!("{:<10} {:>16} {:>16}", "benchmark", "binpacking", "coloring");
    println!("{}", "-".repeat(44));
    for (bp, gc) in &rows {
        println!(
            "{:<10} {:>16} {:>16}",
            bp.workload,
            spill_percent(&bp.counts),
            spill_percent(&gc.counts)
        );
    }

    println!();
    println!("Figure 3: spill-code composition, normalized to binpacking's total");
    println!("(benchmarks with spill code under either allocator)");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "bench-alloc", "ev.load", "ev.store", "ev.move", "rs.load", "rs.store", "rs.move", "total"
    );
    println!("{}", "-".repeat(84));
    for (bp, gc) in &rows {
        let base = bp.counts.spill_total();
        if base == 0 && gc.counts.spill_total() == 0 {
            continue;
        }
        let denom = if base == 0 { 1 } else { base } as f64;
        for m in [bp, gc] {
            let tag = if m.allocator.contains("binpack") { "b" } else { "c" };
            let (el, es, em) = m.counts.evict();
            let (rl, rs, rm) = m.counts.resolve();
            println!(
                "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                format!("{}-{}", m.workload, tag),
                el as f64 / denom,
                es as f64 / denom,
                em as f64 / denom,
                rl as f64 / denom,
                rs as f64 / denom,
                rm as f64 / denom,
                m.counts.spill_total() as f64 / denom,
            );
        }
    }

    println!();
    println!("Five-allocator comparison: spill percentage / allocation time (ms)");
    let allocators: Vec<(&str, Box<dyn RegisterAllocator>)> = vec![
        ("binpack", Box::new(BinpackAllocator::default())),
        ("two-pass", Box::new(BinpackAllocator::new(BinpackConfig::two_pass()))),
        ("coloring", Box::new(ColoringAllocator)),
        ("poletto", Box::new(PolettoAllocator)),
        ("ion", Box::new(IonAllocator)),
    ];
    print!("{:<10}", "benchmark");
    for (name, _) in &allocators {
        print!(" {name:>19}");
    }
    println!();
    println!("{}", "-".repeat(10 + 20 * allocators.len()));
    for w in &workloads {
        print!("{:<10}", w.name);
        for (_, alloc) in &allocators {
            let m = measure(w, alloc.as_ref(), &spec, runs);
            print!(" {:>11} {:>6.2}", spill_percent(&m.counts), m.stats.alloc_seconds * 1e3);
        }
        println!();
    }
}

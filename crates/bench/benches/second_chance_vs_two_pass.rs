//! Regenerates the paper's **§3.1 two-pass experiment**: second-chance
//! binpacking vs. a version of the allocator "that assigns a whole lifetime
//! to either memory or register".
//!
//! The paper's observations:
//! * **wc** runs 38% slower under two-pass binpacking (1,445,466 vs
//!   1,046,734 dynamic instructions) — temporaries live through the getchar
//!   loop cannot use caller-saved registers without lifetime splitting;
//! * **eqntott** is nearly identical under both (2,783,984,589 vs
//!   2,782,873,030) — its hot function needs no spilling at all.
//!
//! ```sh
//! cargo bench -p lsra-bench --bench second_chance_vs_two_pass
//! ```

use lsra_bench::measure;
use lsra_core::BinpackAllocator;
use lsra_ir::MachineSpec;

fn main() {
    let spec = MachineSpec::alpha_like();
    println!("Section 3.1: second-chance vs. traditional two-pass binpacking");
    println!(
        "{:<10} {:>16} {:>16} {:>10} {:>12} {:>12}",
        "benchmark", "second-chance", "two-pass", "slowdown", "sc spill%", "tp spill%"
    );
    println!("{}", "-".repeat(82));
    for w in lsra_workloads::all() {
        let sc = measure(&w, &BinpackAllocator::default(), &spec, 3);
        let tp = measure(&w, &BinpackAllocator::two_pass(), &spec, 3);
        println!(
            "{:<10} {:>16} {:>16} {:>9.1}% {:>11.3}% {:>11.3}%",
            w.name,
            sc.counts.total,
            tp.counts.total,
            100.0 * (tp.counts.total as f64 / sc.counts.total as f64 - 1.0),
            100.0 * sc.counts.spill_fraction(),
            100.0 * tp.counts.spill_fraction(),
        );
    }
    println!();
    println!(
        "Paper: wc +38% under two-pass; eqntott ~0%. The wc gap comes from \
         lifetime splitting around the I/O call plus spill-store suppression."
    );
}

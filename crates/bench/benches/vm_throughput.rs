//! Interpreter throughput: how many dynamic instructions per second the
//! execution substrate delivers, per workload. Not a paper table — this
//! calibrates the harness itself (the paper's equivalent was "a lightly
//! loaded Alpha").
//!
//! ```sh
//! cargo bench -p lsra-bench --bench vm_throughput
//! ```

use std::time::Instant;

use lsra_ir::MachineSpec;

fn main() {
    let spec = MachineSpec::alpha_like();
    println!("{:<10} {:>12} {:>10} {:>12}", "workload", "dyn insts", "ms", "Minst/s");
    let mut total_insts = 0u64;
    let mut total_secs = 0f64;
    for w in lsra_workloads::all() {
        let module = (w.build)();
        let input = (w.input)();
        let mut best = f64::INFINITY;
        let mut insts = 0;
        for _ in 0..3 {
            let t = Instant::now();
            let r = lsra_vm::run_module(&module, &spec, &input).expect("reference run");
            best = best.min(t.elapsed().as_secs_f64());
            insts = r.counts.total;
        }
        total_insts += insts;
        total_secs += best;
        println!(
            "{:<10} {:>12} {:>10.2} {:>12.1}",
            w.name,
            insts,
            best * 1e3,
            insts as f64 / best / 1e6
        );
    }
    println!(
        "{:<10} {:>12} {:>10.2} {:>12.1}",
        "total",
        total_insts,
        total_secs * 1e3,
        total_insts as f64 / total_secs / 1e6
    );
}

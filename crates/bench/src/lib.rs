//! Shared harness utilities for the benchmark targets that regenerate the
//! paper's tables and figures.
//!
//! Each `benches/*.rs` target prints one table/figure; see `DESIGN.md` for
//! the experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results.

#![warn(missing_docs)]

use std::time::Instant;

use lsra_core::{AllocStats, RegisterAllocator};
use lsra_ir::{MachineSpec, Module};
use lsra_vm::{verify_allocation, DynCounts, VmOptions};
use lsra_workloads::Workload;

/// One benchmark × allocator measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name.
    pub workload: &'static str,
    /// Allocator name.
    pub allocator: String,
    /// Dynamic counters from the verified run.
    pub counts: DynCounts,
    /// Static allocation statistics.
    pub stats: AllocStats,
    /// Wall-clock of the verified VM run, best of `runs` (the paper's
    /// "best of five consecutive runs").
    pub run_seconds: f64,
}

/// Allocates `workload` with `alloc` (including the post-allocation
/// peephole pass), verifies the result by differential execution, and
/// times the allocated program's interpretation (best of `runs`).
///
/// # Panics
///
/// Panics if the allocation changes program behaviour — a harness this
/// paper-faithful refuses to time broken code.
pub fn measure(
    workload: &Workload,
    alloc: &dyn RegisterAllocator,
    spec: &MachineSpec,
    runs: usize,
) -> Measurement {
    let original = (workload.build)();
    let input = (workload.input)();
    let mut allocated = original.clone();
    let stats = alloc.allocate_module(&mut allocated, spec);
    for id in allocated.func_ids().collect::<Vec<_>>() {
        lsra_analysis::remove_identity_moves(allocated.func_mut(id));
    }
    let counts = verify_allocation(&original, &allocated, spec, &input, VmOptions::default())
        .unwrap_or_else(|e| panic!("{}/{}: {e}", workload.name, alloc.name()))
        .counts;
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let r = lsra_vm::run_module(&allocated, spec, &input).expect("timed run");
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);
    }
    Measurement {
        workload: workload.name,
        allocator: alloc.name().to_string(),
        counts,
        stats,
        run_seconds: best,
    }
}

/// Re-runs only the allocation core on a module (best of `runs`), the
/// quantity Table 3 reports. The module is cloned per run so each timing
/// starts from unallocated code; the returned statistics (including any
/// per-phase timings) are those of the best run, so they stay consistent
/// with the reported time.
pub fn time_allocation(
    module: &Module,
    alloc: &dyn RegisterAllocator,
    spec: &MachineSpec,
    runs: usize,
) -> (f64, AllocStats) {
    let mut best = f64::INFINITY;
    let mut stats = AllocStats::default();
    for _ in 0..runs.max(1) {
        let mut m = module.clone();
        let t = Instant::now();
        let s = alloc.allocate_module(&mut m, spec);
        let dt = t.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
            stats = s;
        }
        std::hint::black_box(&m);
    }
    (best, stats)
}

/// Second-chance binpacking followed by the §2.4 "future work" cleanup
/// pass (spill load forwarding + dead spill-store elimination).
#[derive(Clone, Debug, Default)]
pub struct BinpackWithCleanup(pub lsra_core::BinpackConfig);

impl RegisterAllocator for BinpackWithCleanup {
    fn name(&self) -> &str {
        "binpack + cleanup"
    }

    fn allocate_function(&self, f: &mut lsra_ir::Function, spec: &MachineSpec) -> AllocStats {
        let stats = lsra_core::BinpackAllocator::new(self.0).allocate_function(f, spec);
        lsra_core::optimize_spill_code(f, spec);
        stats
    }
}

/// Formats a ratio column the way the paper does (three decimals).
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".to_string()
    } else {
        format!("{:.3}", a / b)
    }
}

/// Formats a spill percentage the way the paper's Table 2 does: tiny
/// percentages keep three decimals, exact zero prints "0%".
pub fn spill_percent(counts: &DynCounts) -> String {
    if counts.spill_total() == 0 {
        "0%".to_string()
    } else {
        format!("{:.3}%", 100.0 * counts.spill_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_core::BinpackAllocator;

    #[test]
    fn measure_runs_and_verifies() {
        let spec = MachineSpec::alpha_like();
        let w = lsra_workloads::by_name("eqntott").unwrap();
        let m = measure(&w, &BinpackAllocator::default(), &spec, 1);
        assert!(m.counts.total > 0);
        assert!(m.run_seconds > 0.0);
        assert_eq!(m.workload, "eqntott");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(2.0, 1.0), "2.000");
        assert_eq!(ratio(1.0, 0.0), "-");
        let mut c = DynCounts::default();
        c.record(lsra_ir::SpillTag::None);
        assert_eq!(spill_percent(&c), "0%");
        c.record(lsra_ir::SpillTag::EvictLoad);
        assert_eq!(spill_percent(&c), "50.000%");
    }
}

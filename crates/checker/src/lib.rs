//! Independent validation tooling for register allocations.
//!
//! The paper's correctness burden sits on the resolution and consistency
//! machinery (§2.3–2.4) — exactly where linear-scan allocators hide
//! wrong-value bugs that execution-based tests miss. This crate supplies
//! the two pieces of an allocator-independent validation loop:
//!
//! * [`check_function`] / [`check_module`] — a *symbolic* dataflow checker
//!   over allocated code. It tracks, per physical register and spill slot,
//!   the set of temporaries whose value the location is guaranteed to hold
//!   (joins intersect, calls clobber caller-saved registers,
//!   allocator-inserted moves/loads/stores transfer symbol sets), and
//!   rejects any use that can read a location not guaranteed to hold that
//!   use's temporary. This is strictly stronger than the VM's static
//!   validity check: it distinguishes *which* value a location holds, not
//!   merely whether it holds *a* value.
//! * [`shrink_module`] — a delta-debugging minimizer that reduces a failing
//!   module to a small `.lsra`-printable repro by dropping functions,
//!   truncating and simplifying control flow, and deleting instructions,
//!   re-running a caller-supplied failure oracle after each candidate edit.
//!
//! Both are pure over [`lsra_ir`] and know nothing about any particular
//! allocator, so they can referee all of them.

#![warn(missing_docs)]

mod shrink;
mod symbolic;

pub use shrink::{shrink_module, ShrinkStats};
pub use symbolic::{check_function, check_module, CheckError};

//! Delta-debugging minimization of failing modules.
//!
//! Given a module and an oracle ("does this module still exhibit the
//! failure?"), [`shrink_module`] greedily applies structure-preserving
//! reductions — dropping whole helper functions, collapsing conditional
//! branches to jumps, removing the blocks that become unreachable, and
//! chunked deletion of straight-line instructions — re-running the oracle
//! after every candidate edit and keeping only edits that preserve the
//! failure. Every intermediate candidate passes [`Module::validate`], so
//! the oracle never sees structurally broken input, and the final module is
//! a well-formed minimal repro that can be printed as `.lsra` text
//! (`format!("{module}")`) and re-read with `lsra_ir::parse_module`.

use lsra_analysis::Order;
use lsra_ir::{BlockId, Callee, FuncId, Inst, Module};

/// Bookkeeping from one [`shrink_module`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Oracle invocations (each typically allocates and runs the module).
    pub oracle_calls: usize,
    /// Full passes over the strategy list.
    pub rounds: usize,
    /// Instruction count of the input module.
    pub insts_before: usize,
    /// Instruction count of the shrunk module.
    pub insts_after: usize,
}

struct Shrinker<'a> {
    cur: Module,
    oracle: &'a mut dyn FnMut(&Module) -> bool,
    stats: ShrinkStats,
}

impl Shrinker<'_> {
    /// Adopts `cand` if it is well-formed and still fails.
    fn accept(&mut self, cand: Module) -> bool {
        if cand.validate().is_err() {
            return false;
        }
        self.stats.oracle_calls += 1;
        if (self.oracle)(&cand) {
            self.cur = cand;
            true
        } else {
            false
        }
    }

    /// Tries to delete non-entry functions outright (remapping the call
    /// graph); functions that are still called are skipped.
    fn drop_functions(&mut self) -> bool {
        let mut progressed = false;
        let mut idx = self.cur.funcs.len();
        while idx > 0 {
            idx -= 1;
            if idx == self.cur.entry.index() || self.cur.funcs.len() <= 1 {
                continue;
            }
            let removed = FuncId(idx as u32);
            let mut called = false;
            for f in &self.cur.funcs {
                for b in &f.blocks {
                    for ins in &b.insts {
                        if matches!(&ins.inst, Inst::Call { callee: Callee::Func(id), .. } if *id == removed)
                        {
                            called = true;
                        }
                    }
                }
            }
            if called {
                continue;
            }
            let mut cand = self.cur.clone();
            cand.funcs.remove(idx);
            if cand.entry.index() > idx {
                cand.entry = FuncId(cand.entry.0 - 1);
            }
            for f in &mut cand.funcs {
                for b in &mut f.blocks {
                    for ins in &mut b.insts {
                        if let Inst::Call { callee: Callee::Func(id), .. } = &mut ins.inst {
                            if id.index() > idx {
                                *id = FuncId(id.0 - 1);
                            }
                        }
                    }
                }
            }
            progressed |= self.accept(cand);
        }
        progressed
    }

    /// Tries to replace each block's terminator with a bare `ret`,
    /// truncating everything the block used to lead to.
    fn truncate_to_ret(&mut self) -> bool {
        let mut progressed = false;
        for fi in 0..self.cur.funcs.len() {
            for bi in 0..self.cur.funcs[fi].blocks.len() {
                let Some(ins) = self.cur.funcs[fi].blocks[bi].insts.last() else { continue };
                if matches!(ins.inst, Inst::Ret { .. }) {
                    continue;
                }
                let mut cand = self.cur.clone();
                let last = cand.funcs[fi].blocks[bi].insts.last_mut().unwrap();
                last.inst = Inst::Ret { ret_regs: vec![] };
                progressed |= self.accept(cand);
            }
        }
        progressed
    }

    /// Tries to collapse each conditional branch to an unconditional jump
    /// (either arm), pruning control flow.
    fn simplify_branches(&mut self) -> bool {
        let mut progressed = false;
        for fi in 0..self.cur.funcs.len() {
            for bi in 0..self.cur.funcs[fi].blocks.len() {
                let Some(ins) = self.cur.funcs[fi].blocks[bi].insts.last() else { continue };
                let Inst::Branch { then_tgt, else_tgt, .. } = ins.inst else { continue };
                for tgt in [else_tgt, then_tgt] {
                    let mut cand = self.cur.clone();
                    let last = cand.funcs[fi].blocks[bi].insts.last_mut().unwrap();
                    last.inst = Inst::Jump { target: tgt };
                    if self.accept(cand) {
                        progressed = true;
                        break;
                    }
                }
            }
        }
        progressed
    }

    /// Drops unreachable blocks (remapping block ids). Execution never sees
    /// them, but allocators and checkers still walk them, so this both
    /// shrinks the repro text and narrows the fault surface.
    fn drop_unreachable_blocks(&mut self) -> bool {
        let mut progressed = false;
        for fi in 0..self.cur.funcs.len() {
            let f = &self.cur.funcs[fi];
            let order = Order::compute(f);
            if f.block_ids().all(|b| order.is_reachable(b)) {
                continue;
            }
            let mut remap = vec![None; f.num_blocks()];
            let mut next = 0u32;
            for b in f.block_ids() {
                if order.is_reachable(b) {
                    remap[b.index()] = Some(BlockId(next));
                    next += 1;
                }
            }
            let mut cand = self.cur.clone();
            let cf = &mut cand.funcs[fi];
            let blocks = std::mem::take(&mut cf.blocks);
            cf.blocks = blocks
                .into_iter()
                .enumerate()
                .filter(|(i, _)| remap[*i].is_some())
                .map(|(_, b)| b)
                .collect();
            for b in &mut cf.blocks {
                if let Some(ins) = b.insts.last_mut() {
                    match &mut ins.inst {
                        Inst::Jump { target } => *target = remap[target.index()].unwrap(),
                        Inst::Branch { then_tgt, else_tgt, .. } => {
                            *then_tgt = remap[then_tgt.index()].unwrap();
                            *else_tgt = remap[else_tgt.index()].unwrap();
                        }
                        _ => {}
                    }
                }
            }
            progressed |= self.accept(cand);
        }
        progressed
    }

    /// Chunked deletion of non-terminator instructions (ddmin-style: big
    /// chunks first, halving on failure).
    fn drop_instructions(&mut self) -> bool {
        let mut progressed = false;
        for fi in 0..self.cur.funcs.len() {
            for bi in 0..self.cur.funcs[fi].blocks.len() {
                let body = self.cur.funcs[fi].blocks[bi].insts.len().saturating_sub(1);
                if body == 0 {
                    continue;
                }
                let mut chunk = body;
                while chunk >= 1 {
                    let mut i = 0;
                    loop {
                        let body = self.cur.funcs[fi].blocks[bi].insts.len().saturating_sub(1);
                        if i >= body {
                            break;
                        }
                        let end = (i + chunk).min(body);
                        let mut cand = self.cur.clone();
                        cand.funcs[fi].blocks[bi].insts.drain(i..end);
                        if self.accept(cand) {
                            progressed = true;
                            // Deleted; the next chunk now starts at `i`.
                        } else {
                            i = end;
                        }
                    }
                    if chunk == 1 {
                        break;
                    }
                    chunk /= 2;
                }
            }
        }
        progressed
    }
}

/// Minimizes `seed` while `still_failing` keeps returning `true`.
///
/// `still_failing` is the failure oracle: it must return `true` for any
/// module that exhibits the bug being chased (the caller is responsible for
/// making it deterministic and for guarding against unrelated breakage,
/// e.g. by rejecting modules whose *reference* execution faults). The seed
/// module itself is assumed to fail; if it does not, the seed is returned
/// unchanged.
///
/// Returns the minimized module together with [`ShrinkStats`].
pub fn shrink_module(
    seed: &Module,
    still_failing: &mut dyn FnMut(&Module) -> bool,
) -> (Module, ShrinkStats) {
    let mut sh = Shrinker {
        cur: seed.clone(),
        oracle: still_failing,
        stats: ShrinkStats { insts_before: seed.num_insts(), ..ShrinkStats::default() },
    };
    loop {
        sh.stats.rounds += 1;
        let mut progressed = false;
        progressed |= sh.drop_functions();
        progressed |= sh.truncate_to_ret();
        progressed |= sh.simplify_branches();
        progressed |= sh.drop_unreachable_blocks();
        progressed |= sh.drop_instructions();
        if !progressed || sh.stats.rounds >= 64 {
            break;
        }
    }
    sh.stats.insts_after = sh.cur.num_insts();
    let Shrinker { cur, stats, .. } = sh;
    (cur, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::MachineSpec;
    use lsra_workloads::random::{RandomConfig, RandomProgram};

    #[test]
    fn shrinks_marker_to_a_handful_of_instructions() {
        // Synthetic failure: "the module still contains a `movi _, 424242`".
        // The shrinker should strip a whole random program down to little
        // more than that instruction and the entry block's terminator.
        let spec = MachineSpec::alpha_like();
        let cfg = RandomConfig { helpers: 0, ..RandomConfig::default() };
        let mut m = RandomProgram::new(7, cfg).build(&spec);
        let marker = Inst::MovI {
            dst: lsra_ir::Reg::Temp(m.funcs[0].new_temp(lsra_ir::RegClass::Int, None)),
            imm: 424_242,
        };
        m.funcs[0].blocks[0].insts.insert(0, marker.into());
        m.validate().unwrap();

        let mut oracle = |c: &Module| {
            c.funcs.iter().any(|f| {
                f.blocks.iter().any(|b| {
                    b.insts.iter().any(|i| matches!(i.inst, Inst::MovI { imm: 424_242, .. }))
                })
            })
        };
        assert!(oracle(&m));
        let (small, stats) = shrink_module(&m, &mut oracle);
        assert!(oracle(&small));
        small.validate().unwrap();
        assert!(
            small.num_insts() <= 6,
            "expected <= 6 instructions, got {} ({} oracle calls)",
            small.num_insts(),
            stats.oracle_calls
        );
        assert!(stats.insts_after < stats.insts_before);
        // The repro round-trips through the text format.
        let text = format!("{small}");
        let reparsed = lsra_ir::parse_module(&text).expect("repro must re-parse");
        assert_eq!(reparsed.num_insts(), small.num_insts());
    }

    #[test]
    fn returns_seed_when_oracle_rejects_everything_smaller() {
        let spec = MachineSpec::alpha_like();
        let m = RandomProgram::new(3, RandomConfig::default()).build(&spec);
        let total = m.num_insts();
        // Oracle: only the exact seed fails.
        let mut oracle = move |c: &Module| c.num_insts() == total;
        let (same, _) = shrink_module(&m, &mut oracle);
        assert_eq!(same.num_insts(), total);
    }
}

//! A symbolic dataflow checker for register allocations.
//!
//! Where the VM's static check ([`lsra_vm::check_module`]) only proves that
//! every read sees *a* valid value, this checker proves it sees the *right
//! temporary's* value. It runs a forward must-dataflow over the allocated
//! code that tracks, per physical register and per spill slot, the set of
//! symbols (original temporaries plus convention-defined physical-register
//! values) the location is guaranteed to hold:
//!
//! * an original instruction defining temporary `t` into register `r` kills
//!   `t` from every location and sets `r = {t}`;
//! * an original move additionally *transfers* the source location's symbol
//!   set (which makes a coalesced identity move `rX = rX` check out);
//! * allocator-inserted moves, spill loads, spill stores, and the spill
//!   store/load pairs that break parallel-move cycles simply copy symbol
//!   sets between locations;
//! * calls empty every caller-saved register and redefine the return-value
//!   symbols;
//! * joins intersect (a location holds `t` only if it does on *every*
//!   incoming path).
//!
//! A use of temporary `t` rewritten to register `r` is an error unless `t`
//! is in `r`'s set. Because the domain distinguishes *which* value a
//! location holds, the checker rejects wrong-value bugs — e.g. a swapped
//! pair of resolution moves on one CFG edge — that the static validity
//! check happily accepts.
//!
//! The checker relies on the lockstep-correspondence invariant every
//! allocator in this workspace maintains: blocks `0..orig.num_blocks()` of
//! the allocated function contain the original instructions, untagged and
//! in order, interleaved with tagged ([`SpillTag::is_spill`]) insertions;
//! appended blocks (from critical-edge splitting) contain only tagged
//! instructions plus one untagged `Jump`. Run it *before*
//! `remove_identity_moves`, like the static check.

use lsra_analysis::{BitSet, Order};
use lsra_ir::{BlockId, Function, Inst, MachineSpec, Module, PhysReg, Reg, RegClass, SlotId, Temp};

/// A violation found by [`check_function`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The allocated function does not structurally correspond to the
    /// original (lockstep pairing broken, operand shape changed, virtual
    /// operand left behind). This signals a harness or allocator bug
    /// independent of any dataflow.
    Mismatch {
        /// Function name.
        func: String,
        /// Block containing the offending instruction.
        block: BlockId,
        /// Instruction index within the allocated block.
        inst: usize,
        /// Description of the structural problem.
        what: String,
    },
    /// A use may read a location that is not guaranteed to hold the used
    /// temporary's value on some path.
    WrongValue {
        /// Function name.
        func: String,
        /// Block containing the offending instruction.
        block: BlockId,
        /// Instruction index within the allocated block.
        inst: usize,
        /// Description of the read and the missing symbol.
        what: String,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Mismatch { func, block, inst, what } => {
                write!(f, "in {func}, {block} inst {inst}: structural mismatch: {what}")
            }
            CheckError::WrongValue { func, block, inst, what } => {
                write!(f, "in {func}, {block} inst {inst}: {what} on some path")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Location and symbol numbering.
///
/// Locations are physical registers (integer file, then float file) followed
/// by spill slots. Symbols are the original temporaries followed by one
/// symbol per physical register, denoting "the value the original program
/// most recently placed in that register by convention" (entry arguments,
/// explicit moves into argument/return registers, call results).
struct Universe {
    ni: usize,
    nregs: usize,
    nslots: usize,
    ntemps: usize,
}

impl Universe {
    fn loc_reg(&self, p: PhysReg) -> usize {
        match p.class {
            RegClass::Int => p.index as usize,
            RegClass::Float => self.ni + p.index as usize,
        }
    }

    fn loc_slot(&self, s: SlotId) -> usize {
        self.nregs + s.index()
    }

    fn num_locs(&self) -> usize {
        self.nregs + self.nslots
    }

    fn sym_temp(&self, t: Temp) -> usize {
        t.index()
    }

    fn sym_phys(&self, p: PhysReg) -> usize {
        self.ntemps + self.loc_reg(p)
    }

    fn num_syms(&self) -> usize {
        self.ntemps + self.nregs
    }
}

/// One symbol set per location.
type State = Vec<BitSet>;

struct Ctx<'a> {
    orig: &'a Function,
    alloc: &'a Function,
    spec: &'a MachineSpec,
    uni: Universe,
}

impl<'a> Ctx<'a> {
    fn mismatch(&self, block: BlockId, inst: usize, what: String) -> CheckError {
        CheckError::Mismatch { func: self.alloc.name.clone(), block, inst, what }
    }

    fn temp_desc(&self, t: Temp) -> String {
        match &self.orig.temps.get(t.index()).and_then(|i| i.name.clone()) {
            Some(n) => format!("{t} ({n})"),
            None => t.to_string(),
        }
    }

    fn entry_state(&self) -> State {
        let mut st: State =
            (0..self.uni.num_locs()).map(|_| BitSet::new(self.uni.num_syms())).collect();
        for class in RegClass::ALL {
            for &i in self.spec.arg_regs(class) {
                let p = PhysReg::new(class, i);
                st[self.uni.loc_reg(p)].insert(self.uni.sym_phys(p));
            }
        }
        st
    }

    /// Maps an original defined operand to its symbol, checking it against
    /// the allocated destination register.
    fn def_sym(&self, od: Reg, q: PhysReg, b: BlockId, i: usize) -> Result<usize, CheckError> {
        match od {
            Reg::Temp(t) => {
                if self.orig.temp_class(t) != q.class {
                    return Err(self.mismatch(
                        b,
                        i,
                        format!("{t} of class {} defined into {q}", self.orig.temp_class(t)),
                    ));
                }
                Ok(self.uni.sym_temp(t))
            }
            Reg::Phys(p) => {
                if p != q {
                    return Err(self.mismatch(
                        b,
                        i,
                        format!("fixed definition of {p} rewritten to {q}"),
                    ));
                }
                Ok(self.uni.sym_phys(p))
            }
        }
    }

    /// Checks the uses of one paired instruction against the current state.
    fn check_uses(
        &self,
        oi: &Inst,
        ai: &Inst,
        st: &State,
        b: BlockId,
        i: usize,
        report: bool,
    ) -> Result<(), CheckError> {
        let mut ouses = Vec::new();
        oi.for_each_use(|r| ouses.push(r));
        let mut auses = Vec::new();
        ai.for_each_use(|r| auses.push(r));
        if ouses.len() != auses.len() {
            return Err(self.mismatch(b, i, "operand count changed".into()));
        }
        for (&ou, &au) in ouses.iter().zip(&auses) {
            let q = match au {
                Reg::Phys(p) => p,
                Reg::Temp(t) => {
                    return Err(self.mismatch(
                        b,
                        i,
                        format!("virtual operand {t} survived allocation"),
                    ))
                }
            };
            let (sym, desc) = match ou {
                Reg::Temp(t) => {
                    if self.orig.temp_class(t) != q.class {
                        return Err(self.mismatch(
                            b,
                            i,
                            format!("{t} of class {} read from {q}", self.orig.temp_class(t)),
                        ));
                    }
                    (self.uni.sym_temp(t), self.temp_desc(t))
                }
                Reg::Phys(p) => {
                    if p != q {
                        return Err(self.mismatch(
                            b,
                            i,
                            format!("fixed use of {p} rewritten to {q}"),
                        ));
                    }
                    (self.uni.sym_phys(p), format!("the value of {p}"))
                }
            };
            if report && !st[self.uni.loc_reg(q)].contains(sym) {
                return Err(CheckError::WrongValue {
                    func: self.alloc.name.clone(),
                    block: b,
                    inst: i,
                    what: format!("{q} is not guaranteed to hold {desc}"),
                });
            }
        }
        Ok(())
    }

    /// Transfer for one paired (original) instruction.
    fn step_paired(
        &self,
        oi: &Inst,
        ai: &Inst,
        st: &mut State,
        b: BlockId,
        i: usize,
        report: bool,
    ) -> Result<(), CheckError> {
        if std::mem::discriminant(oi) != std::mem::discriminant(ai) {
            return Err(self.mismatch(b, i, "instruction kind changed".into()));
        }
        // Shape checks beyond the discriminant: opcodes, conditions, and the
        // call/return convention operands (which are not rewritable).
        match (oi, ai) {
            (Inst::Op { op: a, .. }, Inst::Op { op: c, .. }) if a != c => {
                return Err(self.mismatch(b, i, "opcode changed".into()));
            }
            (Inst::Branch { cond: a, .. }, Inst::Branch { cond: c, .. }) if a != c => {
                return Err(self.mismatch(b, i, "branch condition changed".into()));
            }
            (
                Inst::Call { callee: c1, arg_regs: a1, ret_regs: r1 },
                Inst::Call { callee: c2, arg_regs: a2, ret_regs: r2 },
            ) if (c1, a1, r1) != (c2, a2, r2) => {
                return Err(self.mismatch(b, i, "call convention operands changed".into()));
            }
            (Inst::Ret { ret_regs: r1 }, Inst::Ret { ret_regs: r2 }) if r1 != r2 => {
                return Err(self.mismatch(b, i, "return registers changed".into()));
            }
            _ => {}
        }
        self.check_uses(oi, ai, st, b, i, report)?;
        // Effects.
        match (oi, ai) {
            (Inst::Mov { dst: od, .. }, Inst::Mov { dst: Reg::Phys(qd), src: Reg::Phys(qs) }) => {
                let d = self.def_sym(*od, *qd, b, i)?;
                // The moved value *is* the redefined symbol's new value, so
                // claims on the source location remain true; stale claims
                // everywhere else die.
                let src_loc = self.uni.loc_reg(*qs);
                for (l, set) in st.iter_mut().enumerate() {
                    if l != src_loc {
                        set.remove(d);
                    }
                }
                let mut nd = st[src_loc].clone();
                nd.insert(d);
                st[self.uni.loc_reg(*qd)] = nd;
            }
            (Inst::Call { .. }, Inst::Call { ret_regs, .. }) => {
                for class in RegClass::ALL {
                    for p in self.spec.caller_saved(class) {
                        st[self.uni.loc_reg(p)].clear();
                    }
                }
                for &r in ret_regs {
                    let s = self.uni.sym_phys(r);
                    for set in st.iter_mut() {
                        set.remove(s);
                    }
                    let l = self.uni.loc_reg(r);
                    st[l].clear();
                    st[l].insert(s);
                }
            }
            _ => {
                let mut odef = None;
                oi.for_each_def(|r| odef = Some(r));
                let mut adef = None;
                ai.for_each_def(|r| adef = Some(r));
                match (odef, adef) {
                    (None, None) => {}
                    (Some(or), Some(Reg::Phys(q))) => {
                        let d = self.def_sym(or, q, b, i)?;
                        for set in st.iter_mut() {
                            set.remove(d);
                        }
                        let l = self.uni.loc_reg(q);
                        st[l].clear();
                        st[l].insert(d);
                    }
                    _ => {
                        return Err(self.mismatch(b, i, "definition shape changed".into()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Transfer for one allocator-inserted instruction: pure symbol-set
    /// copies between locations.
    fn step_inserted(
        &self,
        ai: &Inst,
        st: &mut State,
        b: BlockId,
        i: usize,
    ) -> Result<(), CheckError> {
        match ai {
            Inst::Mov { dst: Reg::Phys(d), src: Reg::Phys(s) } => {
                st[self.uni.loc_reg(*d)] = st[self.uni.loc_reg(*s)].clone();
            }
            Inst::SpillLoad { dst: Reg::Phys(d), temp } => {
                let slot = self.alloc.spill_slots[temp.index()].ok_or_else(|| {
                    self.mismatch(b, i, format!("spill load of {temp} which has no slot"))
                })?;
                st[self.uni.loc_reg(*d)] = st[self.uni.loc_slot(slot)].clone();
            }
            Inst::SpillStore { src: Reg::Phys(s), temp } => {
                let slot = self.alloc.spill_slots[temp.index()].ok_or_else(|| {
                    self.mismatch(b, i, format!("spill store of {temp} which has no slot"))
                })?;
                st[self.uni.loc_slot(slot)] = st[self.uni.loc_reg(*s)].clone();
            }
            other => {
                return Err(self.mismatch(
                    b,
                    i,
                    format!("unexpected allocator-inserted instruction {other:?}"),
                ));
            }
        }
        Ok(())
    }

    /// Runs the whole-block transfer, pairing untagged instructions with the
    /// original block's instructions in order.
    fn step_block(&self, b: BlockId, st: &mut State, report: bool) -> Result<(), CheckError> {
        let appended = b.index() >= self.orig.num_blocks();
        let empty: &[lsra_ir::Ins] = &[];
        let orig_insts = if appended { empty } else { &self.orig.block(b).insts[..] };
        let mut j = 0usize;
        for (i, ins) in self.alloc.block(b).insts.iter().enumerate() {
            if ins.tag.is_spill() {
                self.step_inserted(&ins.inst, st, b, i)?;
            } else if appended {
                // Split blocks carry exactly one untagged instruction: the
                // jump to the original successor. It has no operands.
                if !matches!(ins.inst, Inst::Jump { .. }) {
                    return Err(self.mismatch(
                        b,
                        i,
                        "non-jump untagged instruction in split block".into(),
                    ));
                }
            } else {
                let Some(oi) = orig_insts.get(j) else {
                    return Err(self.mismatch(
                        b,
                        i,
                        "more untagged instructions than the original block".into(),
                    ));
                };
                j += 1;
                self.step_paired(&oi.inst, &ins.inst, st, b, i, report)?;
            }
        }
        if j != orig_insts.len() {
            return Err(self.mismatch(
                b,
                self.alloc.block(b).insts.len(),
                format!(
                    "original block has {} instructions, allocated block pairs only {j}",
                    orig_insts.len()
                ),
            ));
        }
        Ok(())
    }

    /// The block's IN state: the entry convention for block 0, otherwise the
    /// intersection of every computed reachable predecessor's OUT state
    /// (TOP, all symbols everywhere, when nothing is computed yet).
    fn in_state(
        &self,
        b: BlockId,
        preds: &[Vec<BlockId>],
        order: &Order,
        outs: &[Option<State>],
        entry: &State,
    ) -> State {
        if b == self.alloc.entry() {
            return entry.clone();
        }
        let mut acc: Option<State> = None;
        for &p in &preds[b.index()] {
            if !order.is_reachable(p) {
                continue;
            }
            let Some(out) = &outs[p.index()] else { continue };
            match &mut acc {
                None => acc = Some(out.clone()),
                Some(a) => {
                    for (x, y) in a.iter_mut().zip(out) {
                        x.intersect_with(y);
                    }
                }
            }
        }
        acc.unwrap_or_else(|| {
            (0..self.uni.num_locs())
                .map(|_| {
                    let mut s = BitSet::new(self.uni.num_syms());
                    s.fill();
                    s
                })
                .collect()
        })
    }
}

/// Symbolically checks one allocated function against its pre-allocation
/// original.
///
/// # Examples
///
/// ```
/// use lsra_core::{BinpackAllocator, RegisterAllocator};
/// use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
///
/// let spec = MachineSpec::small(3, 2);
/// let mut b = FunctionBuilder::new(&spec, "f", &[RegClass::Int]);
/// let x = b.param(0);
/// let y = b.int_temp("y");
/// b.add(y, x, x);
/// b.ret(Some(y.into()));
/// let orig = b.finish();
/// let mut alloc = orig.clone();
/// BinpackAllocator::default().allocate_function(&mut alloc, &spec);
/// assert!(lsra_checker::check_function(&orig, &alloc, &spec).is_ok());
/// ```
///
/// # Errors
///
/// Returns the first structural mismatch or potentially wrong-valued read
/// found.
///
/// # Panics
///
/// Panics if `alloc` is not marked allocated.
pub fn check_function(
    orig: &Function,
    alloc: &Function,
    spec: &MachineSpec,
) -> Result<(), CheckError> {
    assert!(alloc.allocated, "symbolic check requires an allocated function");
    if alloc.num_blocks() < orig.num_blocks() {
        return Err(CheckError::Mismatch {
            func: alloc.name.clone(),
            block: BlockId(0),
            inst: 0,
            what: "allocated function has fewer blocks than the original".into(),
        });
    }
    let uni = Universe {
        ni: spec.num_regs(RegClass::Int) as usize,
        nregs: spec.total_regs(),
        nslots: alloc.num_slots as usize,
        ntemps: orig.num_temps().max(alloc.num_temps()),
    };
    let ctx = Ctx { orig, alloc, spec, uni };
    let order = Order::compute(alloc);
    let preds = alloc.compute_preds();
    let entry = ctx.entry_state();
    let mut outs: Vec<Option<State>> = vec![None; alloc.num_blocks()];
    // Optimistic fixpoint: run effects to convergence first (spurious
    // optimism can only over-fill sets, never report false errors once
    // stable), then one reporting pass over the stable IN states.
    loop {
        let mut changed = false;
        for b in alloc.block_ids() {
            if !order.is_reachable(b) {
                continue;
            }
            let mut st = ctx.in_state(b, &preds, &order, &outs, &entry);
            ctx.step_block(b, &mut st, false)?;
            if outs[b.index()].as_ref() != Some(&st) {
                outs[b.index()] = Some(st);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for b in alloc.block_ids() {
        if !order.is_reachable(b) {
            continue;
        }
        let mut st = ctx.in_state(b, &preds, &order, &outs, &entry);
        ctx.step_block(b, &mut st, true)?;
    }
    Ok(())
}

/// Symbolically checks every function of an allocated module against the
/// pre-allocation original. Like the static check, run this *before*
/// `remove_identity_moves`.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_module(orig: &Module, alloc: &Module, spec: &MachineSpec) -> Result<(), CheckError> {
    if orig.funcs.len() != alloc.funcs.len() {
        return Err(CheckError::Mismatch {
            func: alloc.name.clone(),
            block: BlockId(0),
            inst: 0,
            what: "function count changed during allocation".into(),
        });
    }
    for (of, af) in orig.funcs.iter().zip(&alloc.funcs) {
        check_function(of, af, spec)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, Ins, SpillTag};

    fn spec() -> MachineSpec {
        MachineSpec::alpha_like()
    }

    /// Hand-builds a diamond whose original computes `t0 + t1` at the join,
    /// with `t0 -> r8`, `t1 -> r9`, `t2 -> r8`.
    fn diamond() -> (Function, Function) {
        let mut orig = Function::new("d");
        let t0 = orig.new_temp(RegClass::Int, Some("a".into()));
        let t1 = orig.new_temp(RegClass::Int, Some("b".into()));
        let t2 = orig.new_temp(RegClass::Int, Some("c".into()));
        let b0 = orig.add_block();
        let l = orig.add_block();
        let r = orig.add_block();
        let j = orig.add_block();
        let t = Reg::Temp;
        orig.block_mut(b0).insts.extend([
            Ins::new(Inst::MovI { dst: t(t0), imm: 1 }),
            Ins::new(Inst::MovI { dst: t(t1), imm: 2 }),
            Ins::new(Inst::Branch { cond: Cond::Ne, src: t(t0), then_tgt: l, else_tgt: r }),
        ]);
        orig.block_mut(l).insts.push(Ins::new(Inst::Jump { target: j }));
        orig.block_mut(r).insts.push(Ins::new(Inst::Jump { target: j }));
        orig.block_mut(j).insts.extend([
            Ins::new(Inst::Op { op: lsra_ir::OpCode::Add, dst: t(t2), srcs: vec![t(t0), t(t1)] }),
            Ins::new(Inst::Ret { ret_regs: vec![] }),
        ]);

        let mut alloc = orig.clone();
        let r8: Reg = PhysReg::int(8).into();
        let r9: Reg = PhysReg::int(9).into();
        for blk in &mut alloc.blocks {
            for ins in &mut blk.insts {
                let rewrite = |x: &mut Reg| {
                    if let Reg::Temp(tt) = *x {
                        *x = if tt == t1 { r9 } else { r8 };
                    }
                };
                ins.inst.for_each_use_mut(rewrite);
                ins.inst.for_each_def_mut(rewrite);
            }
        }
        alloc.allocated = true;
        (orig, alloc)
    }

    #[test]
    fn accepts_clean_diamond() {
        let (orig, alloc) = diamond();
        alloc.validate().unwrap();
        assert_eq!(check_function(&orig, &alloc, &spec()), Ok(()));
    }

    #[test]
    fn rejects_swapped_resolution_pair_that_static_check_accepts() {
        let (orig, mut alloc) = diamond();
        // Corrupt one edge: resolution-style moves on the left arm swap the
        // contents of r8 and r9 through r10. Every involved register stays
        // statically valid, but the join now reads t0's value from r9 and
        // t1's from r8 on that path.
        let r8: Reg = PhysReg::int(8).into();
        let r9: Reg = PhysReg::int(9).into();
        let r10: Reg = PhysReg::int(10).into();
        let l = BlockId(1);
        let swap = [
            Ins::tagged(Inst::Mov { dst: r10, src: r8 }, SpillTag::ResolveMove),
            Ins::tagged(Inst::Mov { dst: r8, src: r9 }, SpillTag::ResolveMove),
            Ins::tagged(Inst::Mov { dst: r9, src: r10 }, SpillTag::ResolveMove),
        ];
        for (k, ins) in swap.into_iter().enumerate() {
            alloc.block_mut(l).insts.insert(k, ins);
        }
        alloc.validate().unwrap();
        // The static validity check is blind to the swap...
        assert_eq!(lsra_vm::check_function(&alloc, &spec()), Ok(()));
        // ...the symbolic checker is not.
        let e = check_function(&orig, &alloc, &spec()).unwrap_err();
        match &e {
            CheckError::WrongValue { block, what, .. } => {
                assert_eq!(*block, BlockId(3), "{e}");
                assert!(what.contains("t0") || what.contains("t1"), "{e}");
            }
            other => panic!("expected WrongValue, got {other:?}"),
        }
    }

    #[test]
    fn transfers_symbols_through_spill_slots() {
        // t0 is stored to its slot, clobbered, reloaded, then used.
        let s = spec();
        let mut orig = Function::new("spill");
        let t0 = orig.new_temp(RegClass::Int, None);
        let t1 = orig.new_temp(RegClass::Int, None);
        let b0 = orig.add_block();
        let t = Reg::Temp;
        orig.block_mut(b0).insts.extend([
            Ins::new(Inst::MovI { dst: t(t0), imm: 7 }),
            Ins::new(Inst::MovI { dst: t(t1), imm: 8 }),
            Ins::new(Inst::Op { op: lsra_ir::OpCode::Add, dst: t(t1), srcs: vec![t(t0), t(t1)] }),
            Ins::new(Inst::Ret { ret_regs: vec![] }),
        ]);
        let mut alloc = orig.clone();
        let _ = alloc.slot_for(t0);
        let r8: Reg = PhysReg::int(8).into();
        let r9: Reg = PhysReg::int(9).into();
        alloc.block_mut(b0).insts.clear();
        alloc.block_mut(b0).insts.extend([
            Ins::new(Inst::MovI { dst: r8, imm: 7 }),
            Ins::tagged(Inst::SpillStore { src: r8, temp: t0 }, SpillTag::EvictStore),
            Ins::new(Inst::MovI { dst: r8, imm: 8 }),
            Ins::tagged(Inst::SpillLoad { dst: r9, temp: t0 }, SpillTag::EvictLoad),
            Ins::new(Inst::Op { op: lsra_ir::OpCode::Add, dst: r8, srcs: vec![r9, r8] }),
            Ins::new(Inst::Ret { ret_regs: vec![] }),
        ]);
        alloc.allocated = true;
        alloc.validate().unwrap();
        assert_eq!(check_function(&orig, &alloc, &s), Ok(()));

        // Reloading into the *wrong* position of the add is caught.
        let mut bad = alloc.clone();
        bad.block_mut(b0).insts[4] =
            Ins::new(Inst::Op { op: lsra_ir::OpCode::Add, dst: r8, srcs: vec![r8, r9] });
        let e = check_function(&orig, &bad, &s).unwrap_err();
        assert!(matches!(e, CheckError::WrongValue { .. }), "{e}");
        // ...while the static check cannot tell the difference.
        assert_eq!(lsra_vm::check_function(&bad, &s), Ok(()));
    }

    #[test]
    fn rejects_broken_pairing() {
        let (orig, mut alloc) = diamond();
        // Delete an untagged original instruction from the allocation.
        alloc.block_mut(BlockId(0)).insts.remove(1);
        let e = check_function(&orig, &alloc, &spec()).unwrap_err();
        assert!(matches!(e, CheckError::Mismatch { .. }), "{e}");
    }

    #[test]
    fn call_redefines_return_symbols_and_clobbers_caller_saved() {
        let s = spec();
        let mut orig = Function::new("call");
        let t0 = orig.new_temp(RegClass::Int, None);
        let b0 = orig.add_block();
        let ret0 = s.ret_reg(RegClass::Int);
        let t = Reg::Temp;
        orig.block_mut(b0).insts.extend([
            Ins::new(Inst::Call {
                callee: lsra_ir::Callee::Ext(lsra_ir::ExtFn::GetChar),
                arg_regs: vec![],
                ret_regs: vec![ret0],
            }),
            Ins::new(Inst::Mov { dst: t(t0), src: Reg::Phys(ret0) }),
            Ins::new(Inst::Mov { dst: Reg::Phys(ret0), src: t(t0) }),
            Ins::new(Inst::Ret { ret_regs: vec![ret0] }),
        ]);
        let mut alloc = orig.clone();
        // t0 lives in callee-saved r20; the identity move back is fine.
        let r20: Reg = PhysReg::int(20).into();
        for ins in &mut alloc.block_mut(b0).insts {
            ins.inst.for_each_use_mut(|x| {
                if matches!(x, Reg::Temp(_)) {
                    *x = r20;
                }
            });
            ins.inst.for_each_def_mut(|x| {
                if matches!(x, Reg::Temp(_)) {
                    *x = r20;
                }
            });
        }
        alloc.allocated = true;
        assert_eq!(check_function(&orig, &alloc, &s), Ok(()));

        // Keeping t0 in caller-saved r10 and inserting a *second* call
        // between the two moves loses the value.
        let call = Ins::new(Inst::Call {
            callee: lsra_ir::Callee::Ext(lsra_ir::ExtFn::GetChar),
            arg_regs: vec![],
            ret_regs: vec![ret0],
        });
        let mut orig2 = orig.clone();
        orig2.block_mut(b0).insts.insert(2, call.clone());
        let mut alloc2 = orig2.clone();
        let r10: Reg = PhysReg::int(10).into();
        for ins in &mut alloc2.block_mut(b0).insts {
            ins.inst.for_each_use_mut(|x| {
                if matches!(x, Reg::Temp(_)) {
                    *x = r10;
                }
            });
            ins.inst.for_each_def_mut(|x| {
                if matches!(x, Reg::Temp(_)) {
                    *x = r10;
                }
            });
        }
        alloc2.allocated = true;
        let e = check_function(&orig2, &alloc2, &s).unwrap_err();
        assert!(matches!(e, CheckError::WrongValue { .. }), "{e}");
    }
}

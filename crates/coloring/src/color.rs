//! Iterated register coalescing for one register class, after George &
//! Appel (TOPLAS 1996), as used for the paper's baseline allocator.
//!
//! The build–simplify–coalesce–freeze–spill worklist structure follows the
//! published algorithm. Per the paper's implementation notes (§3):
//! the adjacency relation lives in a lower-triangular bit matrix, liveness
//! is computed once (spill temporaries are block-local and stay out of the
//! bit vectors), and the two register files are colored separately.

use lsra_analysis::{Liveness, LoopInfo};
use lsra_ir::{Function, Inst, Reg, RegClass, SpillTag, Temp};

use crate::matrix::TriangularBitMatrix;

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum NodeState {
    Precolored,
    Initial,
    SimplifyWl,
    FreezeWl,
    SpillWl,
    OnStack,
    Coalesced,
    Colored,
    Spilled,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum MoveState {
    Worklist,
    Active,
    Coalesced,
    Constrained,
    Frozen,
}

/// Outcome of one build–color round.
pub(crate) struct RoundResult {
    /// Color per class temporary (node order).
    pub colors: Vec<Option<u8>>,
    /// Temporaries that must be spilled and rewritten.
    pub spilled: Vec<Temp>,
    /// Interference edges added this round.
    pub edges: u64,
}

pub(crate) struct Round<'a> {
    f: &'a Function,
    live: &'a Liveness,
    class: RegClass,
    k: usize,
    /// Node `k + i` is `temps[i]`.
    pub temps: Vec<Temp>,
    node_of: Vec<Option<u32>>,
    adj: TriangularBitMatrix,
    adj_list: Vec<Vec<u32>>,
    degree: Vec<u32>,
    move_list: Vec<Vec<u32>>,
    moves: Vec<(u32, u32)>,
    move_state: Vec<MoveState>,
    alias: Vec<u32>,
    state: Vec<NodeState>,
    cost: Vec<f64>,
    is_spill_temp: Vec<bool>,
    simplify_wl: Vec<u32>,
    freeze_wl: Vec<u32>,
    spill_wl: Vec<u32>,
    worklist_moves: Vec<u32>,
    select_stack: Vec<u32>,
    edges: u64,
}

impl<'a> Round<'a> {
    pub(crate) fn new(
        f: &'a Function,
        live: &'a Liveness,
        loops: &LoopInfo,
        class: RegClass,
        k: usize,
        excluded: &[bool],
        spill_temp_marker: &[bool],
    ) -> Self {
        // Class temporaries still in play get nodes after the k precolored
        // ones.
        let mut temps = Vec::new();
        let mut node_of = vec![None; f.num_temps()];
        for i in 0..f.num_temps() {
            let t = Temp(i as u32);
            if f.temp_class(t) == class && !excluded[i] {
                node_of[i] = Some((k + temps.len()) as u32);
                temps.push(t);
            }
        }
        let n = k + temps.len();
        let mut state = vec![NodeState::Initial; n];
        for s in state.iter_mut().take(k) {
            *s = NodeState::Precolored;
        }
        let mut degree = vec![0u32; n];
        for d in degree.iter_mut().take(k) {
            *d = u32::MAX / 2; // precolored nodes have infinite degree
        }
        // Weighted reference counts for the spill heuristic.
        let mut cost = vec![0.0f64; n];
        let mut is_spill_temp = vec![false; n];
        for b in f.block_ids() {
            let w = loops.weight(b);
            for ins in &f.block(b).insts {
                let mut bump = |r: Reg| {
                    if let Reg::Temp(t) = r {
                        if let Some(nd) = node_of[t.index()] {
                            cost[nd as usize] += w;
                        }
                    }
                };
                ins.inst.for_each_use(&mut bump);
                ins.inst.for_each_def(&mut bump);
            }
        }
        for (i, &t) in temps.iter().enumerate() {
            if spill_temp_marker[t.index()] {
                is_spill_temp[k + i] = true;
            }
        }
        Round {
            f,
            live,
            class,
            k,
            temps,
            node_of,
            adj: TriangularBitMatrix::new(n),
            adj_list: vec![Vec::new(); n],
            degree,
            move_list: vec![Vec::new(); n],
            moves: Vec::new(),
            move_state: Vec::new(),
            alias: (0..n as u32).collect(),
            state,
            cost,
            is_spill_temp,
            simplify_wl: Vec::new(),
            freeze_wl: Vec::new(),
            spill_wl: Vec::new(),
            worklist_moves: Vec::new(),
            select_stack: Vec::new(),
            edges: 0,
        }
    }

    fn node(&self, r: Reg) -> Option<u32> {
        match r {
            Reg::Temp(t) => self.node_of[t.index()],
            Reg::Phys(p) if p.class == self.class => Some(p.index as u32),
            Reg::Phys(_) => None,
        }
    }

    fn add_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        if let Some(watch) =
            std::env::var("LSRA_DEBUG_NODE").ok().and_then(|x| x.parse::<u32>().ok())
        {
            if u == watch || v == watch {
                eprintln!("EDGE {u} -- {v}");
            }
        }
        let (ui, vi) = (u as usize, v as usize);
        if self.state[ui] == NodeState::Precolored && self.state[vi] == NodeState::Precolored {
            return;
        }
        if self.adj.insert(ui, vi) {
            self.edges += 1;
            if self.state[ui] != NodeState::Precolored {
                self.adj_list[ui].push(v);
                self.degree[ui] += 1;
            }
            if self.state[vi] != NodeState::Precolored {
                self.adj_list[vi].push(u);
                self.degree[vi] += 1;
            }
        }
    }

    /// Builds the interference graph and move lists from the code.
    pub(crate) fn build(&mut self, spec: &lsra_ir::MachineSpec) {
        let clobbers: Vec<u32> = spec.caller_saved(self.class).map(|p| p.index as u32).collect();
        for b in self.f.block_ids() {
            // live = temps of this class live out of b, plus nothing
            // precolored (precolored values are block-local by IR
            // invariant).
            let mut live: Vec<bool> = vec![false; self.adj.num_nodes()];
            for t in self.live.live_out_temps(b) {
                if let Some(nd) = self.node_of[t.index()] {
                    live[nd as usize] = true;
                }
            }
            for ins in self.f.block(b).insts.iter().rev() {
                let uses: Vec<u32> =
                    ins.inst.uses().into_iter().filter_map(|r| self.node(r)).collect();
                let mut defs: Vec<u32> =
                    ins.inst.defs().into_iter().filter_map(|r| self.node(r)).collect();
                if ins.inst.is_call() {
                    for &c in &clobbers {
                        if !defs.contains(&c) {
                            defs.push(c);
                        }
                    }
                }
                let move_nodes = match &ins.inst {
                    Inst::Mov { dst, src } => match (self.node(*dst), self.node(*src)) {
                        (Some(d), Some(s)) if d != s => Some((d, s)),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some((d, s)) = move_nodes {
                    live[s as usize] = false;
                    let m = self.moves.len() as u32;
                    self.moves.push((d, s));
                    self.move_state.push(MoveState::Worklist);
                    self.worklist_moves.push(m);
                    self.move_list[d as usize].push(m);
                    self.move_list[s as usize].push(m);
                }
                for &d in &defs {
                    live[d as usize] = true;
                }
                for &d in &defs {
                    for (l, &is_live) in live.iter().enumerate() {
                        if is_live {
                            self.add_edge(l as u32, d);
                        }
                    }
                }
                for &d in &defs {
                    live[d as usize] = false;
                }
                for &u in &uses {
                    live[u as usize] = true;
                }
            }
        }
    }

    fn node_moves(&self, n: u32) -> Vec<u32> {
        self.move_list[n as usize]
            .iter()
            .copied()
            .filter(|&m| {
                matches!(self.move_state[m as usize], MoveState::Worklist | MoveState::Active)
            })
            .collect()
    }

    fn move_related(&self, n: u32) -> bool {
        self.move_list[n as usize].iter().any(|&m| {
            matches!(self.move_state[m as usize], MoveState::Worklist | MoveState::Active)
        })
    }

    fn adjacent(&self, n: u32) -> Vec<u32> {
        self.adj_list[n as usize]
            .iter()
            .copied()
            .filter(|&w| {
                !matches!(self.state[w as usize], NodeState::OnStack | NodeState::Coalesced)
            })
            .collect()
    }

    pub(crate) fn make_worklists(&mut self) {
        for n in (self.k as u32)..(self.adj.num_nodes() as u32) {
            if self.state[n as usize] != NodeState::Initial {
                continue;
            }
            if self.degree[n as usize] >= self.k as u32 {
                self.state[n as usize] = NodeState::SpillWl;
                self.spill_wl.push(n);
            } else if self.move_related(n) {
                self.state[n as usize] = NodeState::FreezeWl;
                self.freeze_wl.push(n);
            } else {
                self.state[n as usize] = NodeState::SimplifyWl;
                self.simplify_wl.push(n);
            }
        }
    }

    fn simplify(&mut self, n: u32) {
        self.state[n as usize] = NodeState::OnStack;
        self.select_stack.push(n);
        for m in self.adjacent(n) {
            self.decrement_degree(m);
        }
    }

    fn pop_state(&mut self, want: NodeState) -> Option<u32> {
        let wl = match want {
            NodeState::SimplifyWl => &mut self.simplify_wl,
            NodeState::FreezeWl => &mut self.freeze_wl,
            _ => unreachable!(),
        };
        while let Some(n) = wl.pop() {
            if self.state[n as usize] == want {
                return Some(n);
            }
        }
        None
    }

    fn decrement_degree(&mut self, m: u32) {
        if self.state[m as usize] == NodeState::Precolored {
            return;
        }
        let d = self.degree[m as usize];
        self.degree[m as usize] = d.saturating_sub(1);
        if d == self.k as u32 {
            let mut nodes = self.adjacent(m);
            nodes.push(m);
            self.enable_moves(&nodes);
            if self.state[m as usize] == NodeState::SpillWl {
                if self.move_related(m) {
                    self.state[m as usize] = NodeState::FreezeWl;
                    self.freeze_wl.push(m);
                } else {
                    self.state[m as usize] = NodeState::SimplifyWl;
                    self.simplify_wl.push(m);
                }
            }
        }
    }

    fn enable_moves(&mut self, nodes: &[u32]) {
        for &n in nodes {
            for m in self.node_moves(n) {
                if self.move_state[m as usize] == MoveState::Active {
                    self.move_state[m as usize] = MoveState::Worklist;
                    self.worklist_moves.push(m);
                }
            }
        }
    }

    fn get_alias(&self, mut n: u32) -> u32 {
        while self.state[n as usize] == NodeState::Coalesced {
            n = self.alias[n as usize];
        }
        n
    }

    fn add_work_list(&mut self, u: u32) {
        if self.state[u as usize] != NodeState::Precolored
            && !self.move_related(u)
            && self.degree[u as usize] < self.k as u32
            && self.state[u as usize] == NodeState::FreezeWl
        {
            self.state[u as usize] = NodeState::SimplifyWl;
            self.simplify_wl.push(u);
        }
    }

    fn ok(&self, t: u32, r: u32) -> bool {
        self.degree[t as usize] < self.k as u32
            || self.state[t as usize] == NodeState::Precolored
            || self.adj.contains(t as usize, r as usize)
    }

    fn conservative(&self, nodes: &[u32]) -> bool {
        let mut seen = Vec::with_capacity(nodes.len());
        let mut count = 0;
        for &n in nodes {
            if seen.contains(&n) {
                continue;
            }
            seen.push(n);
            if self.degree[n as usize] >= self.k as u32 {
                count += 1;
            }
        }
        count < self.k
    }

    fn pop_move(&mut self) -> Option<u32> {
        while let Some(m) = self.worklist_moves.pop() {
            if self.move_state[m as usize] == MoveState::Worklist {
                return Some(m);
            }
        }
        None
    }

    fn coalesce(&mut self, m: u32, coalesced: &mut u64) {
        let (xd, xs) = self.moves[m as usize];
        let x = self.get_alias(xd);
        let y = self.get_alias(xs);
        let (u, v) = if self.state[y as usize] == NodeState::Precolored { (y, x) } else { (x, y) };
        if u == v {
            self.move_state[m as usize] = MoveState::Coalesced;
            *coalesced += 1;
            self.add_work_list(u);
        } else if self.state[v as usize] == NodeState::Precolored
            || self.adj.contains(u as usize, v as usize)
        {
            self.move_state[m as usize] = MoveState::Constrained;
            self.add_work_list(u);
            self.add_work_list(v);
        } else {
            let george = self.state[u as usize] == NodeState::Precolored
                && self.adjacent(v).iter().all(|&t| self.ok(t, u));
            let briggs = self.state[u as usize] != NodeState::Precolored && {
                let mut nodes = self.adjacent(u);
                nodes.extend(self.adjacent(v));
                self.conservative(&nodes)
            };
            if george || briggs {
                self.move_state[m as usize] = MoveState::Coalesced;
                *coalesced += 1;
                self.combine(u, v);
                self.add_work_list(u);
            } else {
                self.move_state[m as usize] = MoveState::Active;
            }
        }
    }

    fn combine(&mut self, u: u32, v: u32) {
        self.state[v as usize] = NodeState::Coalesced;
        self.alias[v as usize] = u;
        let mv = std::mem::take(&mut self.move_list[v as usize]);
        self.move_list[u as usize].extend(mv.iter().copied());
        self.move_list[v as usize] = mv;
        self.enable_moves(&[v]);
        for t in self.adjacent(v) {
            self.add_edge(t, u);
            self.decrement_degree(t);
        }
        if self.degree[u as usize] >= self.k as u32 && self.state[u as usize] == NodeState::FreezeWl
        {
            self.state[u as usize] = NodeState::SpillWl;
            self.spill_wl.push(u);
        }
    }

    fn freeze(&mut self, u: u32) {
        self.state[u as usize] = NodeState::SimplifyWl;
        self.simplify_wl.push(u);
        self.freeze_moves(u);
    }

    fn freeze_moves(&mut self, u: u32) {
        for m in self.node_moves(u) {
            let (x, y) = self.moves[m as usize];
            let v = if self.get_alias(y) == self.get_alias(u) {
                self.get_alias(x)
            } else {
                self.get_alias(y)
            };
            self.move_state[m as usize] = MoveState::Frozen;
            if self.state[v as usize] != NodeState::Precolored
                && !self.move_related(v)
                && self.degree[v as usize] < self.k as u32
                && self.state[v as usize] == NodeState::FreezeWl
            {
                self.state[v as usize] = NodeState::SimplifyWl;
                self.simplify_wl.push(v);
            }
        }
    }

    /// Picks the spill candidate with the lowest cost/degree (avoiding
    /// temporaries created by earlier spill rewrites unless nothing else
    /// remains), moving it to the simplify worklist. Returns false if the
    /// spill worklist is empty.
    fn select_spill(&mut self) -> bool {
        let mut best: Option<(bool, f64, u32)> = None;
        self.spill_wl.retain(|&n| self.state[n as usize] == NodeState::SpillWl);
        for &n in &self.spill_wl {
            let metric = self.cost[n as usize] / (self.degree[n as usize].max(1) as f64);
            let better = match best {
                None => true,
                Some((bs, bm, _)) => (self.is_spill_temp[n as usize], metric) < (bs, bm),
            };
            if better {
                best = Some((self.is_spill_temp[n as usize], metric, n));
            }
        }
        match best {
            Some((_, _, n)) => {
                self.state[n as usize] = NodeState::SimplifyWl;
                self.simplify_wl.push(n);
                self.freeze_moves(n);
                true
            }
            None => false,
        }
    }

    /// Runs the worklist loop and color assignment; returns the outcome.
    pub(crate) fn run(mut self, spec: &lsra_ir::MachineSpec, coalesced: &mut u64) -> RoundResult {
        self.build(spec);
        self.make_worklists();
        loop {
            if let Some(n) = self.pop_state(NodeState::SimplifyWl) {
                self.simplify(n);
            } else if let Some(m) = self.pop_move() {
                self.coalesce(m, coalesced);
            } else if let Some(u) = self.pop_state(NodeState::FreezeWl) {
                self.freeze(u);
            } else if self.select_spill() {
                // continue
            } else {
                break;
            }
        }
        // Assign colors.
        let n_nodes = self.adj.num_nodes();
        let mut color: Vec<Option<u8>> = vec![None; n_nodes];
        for (c, col) in color.iter_mut().enumerate().take(self.k) {
            *col = Some(c as u8);
        }
        let mut spilled_nodes = Vec::new();
        while let Some(n) = self.select_stack.pop() {
            let mut ok: Vec<bool> = vec![true; self.k];
            for &w in &self.adj_list[n as usize] {
                let wa = self.get_alias(w);
                if let Some(c) = color[wa as usize] {
                    ok[c as usize] = false;
                }
            }
            if let Some(watch) =
                std::env::var("LSRA_DEBUG_NODE").ok().and_then(|x| x.parse::<u32>().ok())
            {
                if n == watch {
                    eprintln!("ASSIGN node {n}: ok={ok:?} adj={:?}", self.adj_list[n as usize]);
                }
            }
            match ok.iter().position(|&b| b) {
                Some(c) => {
                    self.state[n as usize] = NodeState::Colored;
                    color[n as usize] = Some(c as u8);
                }
                None => {
                    self.state[n as usize] = NodeState::Spilled;
                    spilled_nodes.push(n);
                }
            }
        }
        for n in 0..n_nodes as u32 {
            if self.state[n as usize] == NodeState::Coalesced {
                let a = self.get_alias(n);
                color[n as usize] = color[a as usize];
                if let Some(watch) =
                    std::env::var("LSRA_DEBUG_NODE").ok().and_then(|x| x.parse::<u32>().ok())
                {
                    if n == watch {
                        eprintln!("COALESCED node {n} -> alias {a}, color {:?}", color[n as usize]);
                    }
                }
            }
        }
        let spilled: Vec<Temp> =
            spilled_nodes.iter().map(|&n| self.temps[n as usize - self.k]).collect();
        RoundResult {
            colors: (self.k..n_nodes).map(|i| color[i]).collect(),
            spilled,
            edges: self.edges,
        }
    }
}

/// Rewrites actual spills: each use of a spilled temporary loads into a
/// fresh (block-local) temporary, each definition stores from one.
pub(crate) fn rewrite_spills(
    f: &mut Function,
    spilled: &[Temp],
    stats_inserted: &mut Vec<(SpillTag, u64)>,
) -> Vec<Temp> {
    let mut created = Vec::new();
    let mut loads = 0u64;
    let mut stores = 0u64;
    let is_spilled: Vec<bool> = {
        let mut v = vec![false; f.num_temps()];
        for &t in spilled {
            v[t.index()] = true;
        }
        v
    };
    for &t in spilled {
        f.slot_for(t);
    }
    for b in f.block_ids().collect::<Vec<_>>() {
        let insts = std::mem::take(&mut f.block_mut(b).insts);
        let mut out = Vec::with_capacity(insts.len());
        for mut ins in insts {
            let mut pre = Vec::new();
            let mut post = Vec::new();
            // Uses.
            let mut use_map: Vec<(Temp, Temp)> = Vec::new();
            let mut use_temps = Vec::new();
            ins.inst.for_each_use(|r| {
                if let Reg::Temp(t) = r {
                    if is_spilled[t.index()] && !use_temps.contains(&t) {
                        use_temps.push(t);
                    }
                }
            });
            for t in use_temps {
                let nt = f.new_temp(f.temp_class(t), None);
                created.push(nt);
                pre.push(lsra_ir::Ins::tagged(
                    Inst::SpillLoad { dst: Reg::Temp(nt), temp: t },
                    SpillTag::EvictLoad,
                ));
                loads += 1;
                use_map.push((t, nt));
            }
            ins.inst.for_each_use_mut(|r| {
                if let Reg::Temp(t) = *r {
                    if let Some((_, nt)) = use_map.iter().find(|(u, _)| *u == t) {
                        *r = Reg::Temp(*nt);
                    }
                }
            });
            // Defs.
            let mut def_temp = None;
            ins.inst.for_each_def(|r| {
                if let Reg::Temp(t) = r {
                    if is_spilled[t.index()] {
                        def_temp = Some(t);
                    }
                }
            });
            if let Some(t) = def_temp {
                let nt = f.new_temp(f.temp_class(t), None);
                created.push(nt);
                ins.inst.for_each_def_mut(|r| {
                    if matches!(*r, Reg::Temp(u) if u == t) {
                        *r = Reg::Temp(nt);
                    }
                });
                post.push(lsra_ir::Ins::tagged(
                    Inst::SpillStore { src: Reg::Temp(nt), temp: t },
                    SpillTag::EvictStore,
                ));
                stores += 1;
            }
            out.append(&mut pre);
            out.push(ins);
            out.append(&mut post);
        }
        f.block_mut(b).insts = out;
    }
    stats_inserted.push((SpillTag::EvictLoad, loads));
    stats_inserted.push((SpillTag::EvictStore, stores));
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{ExtFn, FunctionBuilder, MachineSpec, PhysReg};

    fn round_for<'a>(f: &'a Function, spec: &lsra_ir::MachineSpec, class: RegClass) -> Round<'a> {
        // Leak the liveness/loops to satisfy the borrow (test-only).
        let live = Box::leak(Box::new(Liveness::compute(f)));
        let loops = LoopInfo::of(f);
        let k = spec.num_regs(class) as usize;
        let excluded = vec![false; f.num_temps()];
        let marker = vec![false; f.num_temps()];
        let mut r = Round::new(f, live, &loops, class, k, &excluded, &marker);
        r.build(spec);
        r
    }

    #[test]
    fn build_adds_edges_between_simultaneously_live_temps() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "t", &[]);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        let z = b.int_temp("z");
        b.movi(x, 1);
        b.movi(y, 2); // x live here -> edge x-y
        b.add(z, x, y);
        b.ret(Some(z.into()));
        let f = b.finish();
        let r = round_for(&f, &spec, RegClass::Int);
        let k = spec.num_regs(RegClass::Int) as usize;
        let nx = k as u32;
        let ny = k as u32 + 1;
        let nz = k as u32 + 2;
        assert!(r.adj.contains(nx as usize, ny as usize), "x and y interfere");
        assert!(
            !r.adj.contains(nz as usize, nx as usize),
            "z is defined as x dies: no interference"
        );
    }

    #[test]
    fn build_adds_call_clobber_edges() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "t", &[]);
        let keep = b.int_temp("keep");
        b.movi(keep, 5);
        b.call_ext(ExtFn::GetChar, &[], Some(RegClass::Int));
        let out = b.int_temp("out");
        b.add(out, keep, keep);
        b.ret(Some(out.into()));
        let f = b.finish();
        let r = round_for(&f, &spec, RegClass::Int);
        let k = spec.num_regs(RegClass::Int) as usize;
        let nkeep = k; // first int temp node
        for p in spec.caller_saved(RegClass::Int) {
            assert!(
                r.adj.contains(nkeep, p.index as usize),
                "keep must interfere with caller-saved {p}"
            );
        }
        // And not (necessarily) with callee-saved ones.
        let callee = spec.callee_saved(RegClass::Int).next().unwrap();
        assert!(!r.adj.contains(nkeep, callee.index as usize));
    }

    #[test]
    fn move_sources_do_not_interfere_with_destinations() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "t", &[]);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        b.movi(x, 1);
        b.mov(y, x); // x dies into y: coalescable, no edge
        b.ret(Some(y.into()));
        let f = b.finish();
        let r = round_for(&f, &spec, RegClass::Int);
        let k = spec.num_regs(RegClass::Int) as usize;
        assert!(!r.adj.contains(k, k + 1), "move pairs must not interfere");
        assert_eq!(r.moves.len(), 2, "the param-ret and x->y moves are candidates");
        let _ = PhysReg::int(0);
    }
}

//! **Iterated register coalescing** — the George & Appel graph-coloring
//! allocator (TOPLAS 1996) used as the paper's baseline (§3).
//!
//! A pure coloring approach in the Chaitin/Briggs style whose departure is
//! integrating coalescing into the simplification phase rather than running
//! it repeatedly beforehand. Per the paper's implementation notes:
//!
//! * the adjacency relation is a **lower-triangular bit matrix**;
//! * liveness is computed **once**, before allocation — spill code only
//!   creates block-local temporaries, which stay out of the bit vectors;
//! * the integer and floating-point files are colored **separately** (on
//!   the Alpha, values cross files only through memory).
//!
//! # Examples
//!
//! ```
//! use lsra_coloring::ColoringAllocator;
//! use lsra_core::RegisterAllocator;
//! use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
//!
//! let spec = MachineSpec::alpha_like();
//! let mut b = FunctionBuilder::new(&spec, "f", &[RegClass::Int]);
//! let x = b.param(0);
//! let y = b.int_temp("y");
//! b.add(y, x, x);
//! b.ret(Some(y.into()));
//! let mut f = b.finish();
//!
//! let stats = ColoringAllocator::default().allocate_function(&mut f, &spec);
//! assert!(f.allocated);
//! assert!(!f.has_virtual_operands());
//! assert_eq!(stats.candidates, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod color;
mod matrix;

pub use matrix::TriangularBitMatrix;

use std::time::Instant;

use lsra_analysis::{Liveness, LoopInfo};
use lsra_core::{AllocStats, RegisterAllocator};
use lsra_ir::{Function, MachineSpec, PhysReg, Reg, RegClass, SpillTag};

/// The graph-coloring register allocator.
#[derive(Clone, Debug, Default)]
pub struct ColoringAllocator;

impl ColoringAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        ColoringAllocator
    }
}

impl RegisterAllocator for ColoringAllocator {
    fn name(&self) -> &str {
        "graph coloring (iterated register coalescing)"
    }

    fn allocate_function(&self, f: &mut Function, spec: &MachineSpec) -> AllocStats {
        let start = Instant::now();
        let mut stats = AllocStats { candidates: f.num_temps(), ..Default::default() };
        let loops = LoopInfo::of(f);
        let mut assignment: Vec<(lsra_ir::Temp, PhysReg)> = Vec::new();
        let mut coalesced = 0u64;

        for class in RegClass::ALL {
            let k = spec.num_regs(class) as usize;
            // Liveness once per file; spill temporaries are block-local and
            // never enter the bit vectors (§3).
            let live = Liveness::compute(f);
            let mut excluded = vec![false; f.num_temps()];
            let mut spill_marker = vec![false; f.num_temps()];
            loop {
                stats.iterations += 1;
                let round = color::Round::new(f, &live, &loops, class, k, &excluded, &spill_marker);
                let temps = round.temps.clone();
                let result = round.run(spec, &mut coalesced);
                stats.interference_edges += result.edges;
                if result.spilled.is_empty() {
                    for (i, &t) in temps.iter().enumerate() {
                        let c = result.colors[i]
                            .unwrap_or_else(|| panic!("uncolored unspilled node for {t}"));
                        assignment.push((t, PhysReg::new(class, c)));
                    }
                    break;
                }
                for &t in &result.spilled {
                    excluded[t.index()] = true;
                    stats.spilled_temps += 1;
                }
                let mut inserted = Vec::new();
                let created = color::rewrite_spills(f, &result.spilled, &mut inserted);
                for (tag, n) in inserted {
                    match tag {
                        SpillTag::EvictLoad => stats.inserted[1] += n,
                        SpillTag::EvictStore => stats.inserted[2] += n,
                        _ => unreachable!(),
                    }
                }
                excluded.resize(f.num_temps(), false);
                spill_marker.resize(f.num_temps(), false);
                for t in created {
                    spill_marker[t.index()] = true;
                }
            }
        }
        stats.moves_coalesced = coalesced;

        // Final rewrite: replace every temporary operand with its color.
        let mut reg_of: Vec<Option<PhysReg>> = vec![None; f.num_temps()];
        for (t, p) in assignment {
            reg_of[t.index()] = Some(p);
        }
        for b in f.block_ids().collect::<Vec<_>>() {
            for ins in &mut f.block_mut(b).insts {
                let rewrite = |r: &mut Reg| {
                    if let Reg::Temp(t) = *r {
                        *r = Reg::Phys(
                            reg_of[t.index()]
                                .unwrap_or_else(|| panic!("no register assigned to {t}")),
                        );
                    }
                };
                ins.inst.for_each_use_mut(rewrite);
                ins.inst.for_each_def_mut(rewrite);
            }
        }
        f.allocated = true;
        debug_assert!(!f.has_virtual_operands());
        stats.alloc_seconds = start.elapsed().as_secs_f64();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_analysis::remove_identity_moves;
    use lsra_ir::{Cond, ExtFn, FunctionBuilder, Module, ModuleBuilder};
    use lsra_vm::{run_module, verify_allocation, VmOptions};

    fn verify(module: &Module, spec: &MachineSpec, input: &[u8]) -> AllocStats {
        let mut allocated = module.clone();
        let stats = ColoringAllocator.allocate_module(&mut allocated, spec);
        for id in allocated.func_ids().collect::<Vec<_>>() {
            remove_identity_moves(allocated.func_mut(id));
            allocated.func(id).validate().unwrap_or_else(|e| panic!("invalid output: {e}"));
        }
        verify_allocation(module, &allocated, spec, input, VmOptions::default())
            .unwrap_or_else(|m| panic!("coloring broke {}: {m}\n{allocated}", module.name));
        stats
    }

    fn single(f: lsra_ir::Function, mem: usize) -> Module {
        let mut mb = ModuleBuilder::new("t", mem);
        let id = mb.add(f);
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn straight_line_no_spills() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        let z = b.int_temp("z");
        b.movi(x, 6);
        b.movi(y, 7);
        b.mul(z, x, y);
        b.ret(Some(z.into()));
        let m = single(b.finish(), 0);
        let stats = verify(&m, &spec, &[]);
        assert_eq!(stats.inserted_total(), 0);
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(42));
    }

    #[test]
    fn pressure_forces_spills() {
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let temps: Vec<_> = (0..10).map(|i| b.int_temp(&format!("v{i}"))).collect();
        for (i, &t) in temps.iter().enumerate() {
            b.movi(t, i as i64 + 1);
        }
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        for &t in &temps {
            b.add(acc, acc, t);
        }
        b.ret(Some(acc.into()));
        let m = single(b.finish(), 0);
        let stats = verify(&m, &spec, &[]);
        assert!(stats.spilled_temps > 0);
        assert!(stats.iterations >= 3, "spilling forces extra rounds");
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(55));
    }

    #[test]
    fn coalesces_parameter_moves() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "leaf", &[RegClass::Int]);
        let p = b.param(0);
        let r = b.int_temp("r");
        b.add(r, p, p);
        b.ret(Some(r.into()));
        let mut f = b.finish();
        let stats = ColoringAllocator.allocate_function(&mut f, &spec);
        assert!(stats.moves_coalesced >= 1);
        assert!(remove_identity_moves(&mut f) >= 1);
    }

    #[test]
    fn values_across_calls_use_callee_saved() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let keep = b.int_temp("keep");
        b.movi(keep, 11);
        b.call_ext(ExtFn::GetChar, &[], Some(RegClass::Int));
        let out = b.int_temp("out");
        b.add(out, keep, keep);
        b.ret(Some(out.into()));
        let m = single(b.finish(), 0);
        verify(&m, &spec, &[]);
        let mut allocated = m.clone();
        ColoringAllocator.allocate_module(&mut allocated, &spec);
        let r = run_module(&allocated, &spec, &[]).unwrap();
        assert_eq!(r.ret, Some(22));
    }

    #[test]
    fn loops_and_branches() {
        let spec = MachineSpec::small(4, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let n = b.int_temp("n");
        let acc = b.int_temp("acc");
        b.movi(n, 15);
        b.movi(acc, 0);
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.add(acc, acc, n);
        b.addi(n, n, -1);
        b.branch(Cond::Gt, n, head, exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let m = single(b.finish(), 0);
        verify(&m, &spec, &[]);
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(120));
    }

    #[test]
    fn float_class_is_colored_independently() {
        let spec = MachineSpec::small(3, 3);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let a = b.float_temp("a");
        let c = b.float_temp("c");
        b.movf(a, 2.0);
        b.movf(c, 8.0);
        let d = b.float_temp("d");
        b.op2(lsra_ir::OpCode::FMul, d, a, c);
        let i = b.int_temp("i");
        b.op1(lsra_ir::OpCode::FloatToInt, i, d);
        b.ret(Some(i.into()));
        let m = single(b.finish(), 0);
        verify(&m, &spec, &[]);
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(16));
    }

    #[test]
    fn interference_edges_are_counted() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let xs: Vec<_> = (0..5).map(|i| b.int_temp(&format!("x{i}"))).collect();
        for (i, &t) in xs.iter().enumerate() {
            b.movi(t, i as i64);
        }
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        for &t in &xs {
            b.add(acc, acc, t);
        }
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        let stats = ColoringAllocator.allocate_function(&mut f, &spec);
        // x0..x4 all overlap each other: at least C(5,2) = 10 edges.
        assert!(stats.interference_edges >= 10, "got {}", stats.interference_edges);
    }
}

//! The lower-triangular bit matrix recording the interference adjacency
//! relation — the representation choice the paper calls out as one of its
//! two departures from George & Appel's published implementation (§3:
//! "We use a lower-triangular bit matrix, rather than a hash table").

/// A symmetric boolean relation over `n` nodes stored as a lower-triangular
/// bit matrix.
#[derive(Clone, Debug)]
pub struct TriangularBitMatrix {
    bits: Vec<u64>,
    n: usize,
}

impl TriangularBitMatrix {
    /// Creates an empty relation over `n` nodes.
    pub fn new(n: usize) -> Self {
        let cells = n * (n + 1) / 2;
        TriangularBitMatrix { bits: vec![0; cells.div_ceil(64)], n }
    }

    #[inline]
    fn index(&self, u: usize, v: usize) -> usize {
        debug_assert!(u < self.n && v < self.n, "node out of range");
        let (hi, lo) = if u >= v { (u, v) } else { (v, u) };
        hi * (hi + 1) / 2 + lo
    }

    /// Tests whether `u` and `v` are related.
    #[inline]
    pub fn contains(&self, u: usize, v: usize) -> bool {
        let i = self.index(u, v);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Relates `u` and `v`; returns true if the pair was new.
    #[inline]
    pub fn insert(&mut self, u: usize, v: usize) -> bool {
        let i = self.index(u, v);
        let w = &mut self.bits[i / 64];
        let mask = 1 << (i % 64);
        let newly = *w & mask == 0;
        *w |= mask;
        newly
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric() {
        let mut m = TriangularBitMatrix::new(10);
        assert!(m.insert(3, 7));
        assert!(m.contains(3, 7));
        assert!(m.contains(7, 3));
        assert!(!m.insert(7, 3), "same pair, either order");
        assert!(!m.contains(3, 4));
    }

    #[test]
    fn diagonal_and_bounds() {
        let mut m = TriangularBitMatrix::new(5);
        assert!(m.insert(4, 4));
        assert!(m.contains(4, 4));
        assert!(m.insert(0, 0));
        assert!(m.insert(4, 0));
        assert!(m.contains(0, 4));
    }

    #[test]
    fn dense_insertion() {
        let n = 40;
        let mut m = TriangularBitMatrix::new(n);
        let mut fresh = 0;
        for u in 0..n {
            for v in 0..=u {
                if m.insert(u, v) {
                    fresh += 1;
                }
            }
        }
        assert_eq!(fresh, n * (n + 1) / 2);
        for u in 0..n {
            for v in 0..n {
                assert!(m.contains(u, v));
            }
        }
    }
}

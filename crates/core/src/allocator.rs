//! The second-chance binpacking allocator: pipeline driver.

use std::time::Instant;

use lsra_analysis::{Lifetimes, Liveness, LoopInfo};
use lsra_ir::{Function, MachineSpec};

use crate::config::BinpackConfig;
use crate::scan::Scanner;
use crate::stats::{AllocStats, RegisterAllocator};
use crate::{resolve, two_pass};

/// The linear-scan register allocator of Traub, Holloway & Smith (PLDI
/// 1998): second-chance binpacking.
///
/// The default configuration runs the full algorithm — single-pass
/// allocate/rewrite with lifetime holes, second chances, store suppression,
/// early second chance, move coalescing, and the iterative consistency
/// dataflow. See [`BinpackConfig`] for the ablation switches, including the
/// traditional two-pass mode.
///
/// # Examples
///
/// ```
/// use lsra_core::{BinpackAllocator, RegisterAllocator};
/// use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
///
/// let spec = MachineSpec::alpha_like();
/// let mut b = FunctionBuilder::new(&spec, "f", &[RegClass::Int]);
/// let x = b.param(0);
/// let y = b.int_temp("y");
/// b.add(y, x, x);
/// b.ret(Some(y.into()));
/// let mut f = b.finish();
///
/// let stats = BinpackAllocator::default().allocate_function(&mut f, &spec);
/// assert!(f.allocated);
/// assert!(!f.has_virtual_operands());
/// assert_eq!(stats.candidates, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BinpackAllocator {
    /// Algorithm switches.
    pub config: BinpackConfig,
}

impl BinpackAllocator {
    /// An allocator with a specific configuration.
    pub fn new(config: BinpackConfig) -> Self {
        BinpackAllocator { config }
    }

    /// The traditional two-pass binpacking comparator (§3.1).
    pub fn two_pass() -> Self {
        BinpackAllocator { config: BinpackConfig::two_pass() }
    }
}

impl RegisterAllocator for BinpackAllocator {
    fn name(&self) -> &str {
        if self.config.second_chance {
            "second-chance binpacking"
        } else {
            "two-pass binpacking"
        }
    }

    fn allocate_function(&self, f: &mut Function, spec: &MachineSpec) -> AllocStats {
        let start = Instant::now();
        let mut stats = AllocStats::default();
        if self.config.second_chance {
            // Shared setup (the paper excludes this from allocation
            // timing; we include only the lifetime computation, which is
            // the allocator's own first phase).
            let live = Liveness::compute(f);
            let loops = LoopInfo::of(f);
            let lt = Lifetimes::compute(f, &live, &loops, spec);
            let out =
                Scanner::new(f, spec, &live, &lt, self.config, &mut stats).run();
            resolve::resolve(f, &live, &out, self.config, &mut stats);
        } else {
            two_pass::allocate(f, spec, &mut stats);
        }
        f.allocated = true;
        debug_assert!(!f.has_virtual_operands(), "allocation left virtual operands");
        stats.alloc_seconds = start.elapsed().as_secs_f64();
        stats
    }
}

//! The second-chance binpacking allocator: pipeline driver.
//!
//! [`BinpackAllocator::allocate_module`] fans functions out over a scoped
//! thread pool (functions are allocated independently, so the result is
//! byte-identical to the serial path); each worker owns one
//! [`AllocScratch`] arena that every function it processes reuses.

use std::time::Instant;

use lsra_analysis::{Lifetimes, Liveness, LoopInfo};
use lsra_ir::{Function, MachineSpec, Module};
use lsra_trace::{NoopSink, TraceEvent, TraceSink};

use crate::config::BinpackConfig;
use crate::scan::Scanner;
use crate::scratch::AllocScratch;
use crate::stats::{AllocStats, Phase, PhaseTimer, RegisterAllocator};
use crate::{resolve, two_pass};

/// The linear-scan register allocator of Traub, Holloway & Smith (PLDI
/// 1998): second-chance binpacking.
///
/// The default configuration runs the full algorithm — single-pass
/// allocate/rewrite with lifetime holes, second chances, store suppression,
/// early second chance, move coalescing, and the iterative consistency
/// dataflow. See [`BinpackConfig`] for the ablation switches, including the
/// traditional two-pass mode.
///
/// # Examples
///
/// ```
/// use lsra_core::{BinpackAllocator, RegisterAllocator};
/// use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
///
/// let spec = MachineSpec::alpha_like();
/// let mut b = FunctionBuilder::new(&spec, "f", &[RegClass::Int]);
/// let x = b.param(0);
/// let y = b.int_temp("y");
/// b.add(y, x, x);
/// b.ret(Some(y.into()));
/// let mut f = b.finish();
///
/// let stats = BinpackAllocator::default().allocate_function(&mut f, &spec);
/// assert!(f.allocated);
/// assert!(!f.has_virtual_operands());
/// assert_eq!(stats.candidates, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BinpackAllocator {
    /// Algorithm switches.
    pub config: BinpackConfig,
}

impl BinpackAllocator {
    /// An allocator with a specific configuration.
    pub fn new(config: BinpackConfig) -> Self {
        BinpackAllocator { config }
    }

    /// The traditional two-pass binpacking comparator (§3.1).
    pub fn two_pass() -> Self {
        BinpackAllocator { config: BinpackConfig::two_pass() }
    }

    /// Allocates one function, reusing `scratch`'s working memory.
    ///
    /// Equivalent to [`RegisterAllocator::allocate_function`] (which calls
    /// this with a fresh arena), but callers allocating many functions in a
    /// row avoid re-allocating the per-temp/per-register state vectors for
    /// each one.
    pub fn allocate_function_reusing(
        &self,
        f: &mut Function,
        spec: &MachineSpec,
        scratch: &mut AllocScratch,
    ) -> AllocStats {
        self.allocate_function_traced(f, spec, scratch, &mut NoopSink)
    }

    /// Allocates one function, emitting every allocation decision to
    /// `sink`.
    ///
    /// With a disabled sink (the [`NoopSink`] default) this *is*
    /// [`BinpackAllocator::allocate_function_reusing`]: each potential
    /// event costs one branch on [`TraceSink::enabled`] and no payload is
    /// built. The sink never feeds back into allocation — traced and
    /// untraced runs produce byte-identical output (pinned by
    /// `tests/trace_determinism.rs`).
    pub fn allocate_function_traced(
        &self,
        f: &mut Function,
        spec: &MachineSpec,
        scratch: &mut AllocScratch,
        sink: &mut dyn TraceSink,
    ) -> AllocStats {
        let start = Instant::now();
        let mut stats = AllocStats::default();
        if sink.enabled() {
            sink.event(&TraceEvent::FunctionBegin {
                name: f.name.clone(),
                temps: f.num_temps(),
                blocks: f.num_blocks(),
                insts: f.num_insts(),
            });
        }
        if self.config.second_chance {
            let mut timer = PhaseTimer::new(self.config.time_phases);
            // Shared setup (the paper excludes this from allocation
            // timing; we include only the lifetime computation, which is
            // the allocator's own first phase). On functions past the
            // parallel threshold, the per-block liveness passes split
            // across threads (byte-identical to serial).
            let live =
                Liveness::compute_with_workers(f, self.config.function_workers(f.num_insts()));
            timer.mark_traced(&mut stats, Phase::Liveness, sink);
            let loops = LoopInfo::of(f);
            timer.mark_traced(&mut stats, Phase::Order, sink);
            let lt = Lifetimes::compute_in(f, &live, &loops, spec, &mut scratch.analysis);
            timer.mark_traced(&mut stats, Phase::Lifetimes, sink);
            if sink.enabled() {
                let temps = (0..f.num_temps()).map(|i| lsra_ir::Temp(i as u32));
                let mut live_temps = 0;
                let mut segments = 0;
                let mut holes = 0;
                for t in temps {
                    let segs = lt.segments(t);
                    if !segs.is_empty() {
                        live_temps += 1;
                        segments += segs.len();
                        holes += lt.holes(t).len();
                    }
                }
                sink.event(&TraceEvent::LifetimesBuilt { live_temps, segments, holes });
            }
            let out =
                Scanner::new(f, spec, &live, &lt, self.config, &mut stats, scratch, sink).run();
            timer.mark_traced(&mut stats, Phase::Scan, sink);
            // Resolution self-reports its Resolve and Consistency phases.
            resolve::resolve(f, &live, &out, self.config, &mut stats, scratch, sink);
            // Hand the CSR backing of the lifetimes and the scan output
            // back to the arena for the next function.
            lt.recycle(&mut scratch.analysis);
            scratch.recycle_scan(out);
        } else {
            two_pass::allocate(f, spec, self.config, &mut stats, scratch, sink);
        }
        f.allocated = true;
        debug_assert!(!f.has_virtual_operands(), "allocation left virtual operands");
        stats.alloc_seconds = start.elapsed().as_secs_f64();
        if sink.enabled() {
            sink.event(&TraceEvent::FunctionEnd { name: f.name.clone() });
        }
        stats
    }

    /// Allocates every function of a module serially, reusing `scratch`'s
    /// working memory across functions *and* across calls.
    ///
    /// This is the long-lived-process hook: a server worker that allocates
    /// many modules in a row keeps one arena for its whole lifetime instead
    /// of re-growing the per-temp/per-register vectors on every request.
    /// Output and (wall-clock-free) statistics are identical to
    /// [`RegisterAllocator::allocate_module`] at any worker count.
    pub fn allocate_module_reusing(
        &self,
        m: &mut Module,
        spec: &MachineSpec,
        scratch: &mut AllocScratch,
    ) -> AllocStats {
        let mut total = AllocStats::default();
        for f in &mut m.funcs {
            total.merge(&self.allocate_function_reusing(f, spec, scratch));
        }
        total
    }

    /// Allocates every function of a module with tracing, serially and in
    /// module order so the event stream is deterministic.
    ///
    /// Parallel allocation is output-invariant (see
    /// [`RegisterAllocator::allocate_module`]), so the traced result equals
    /// the untraced result at any worker count; only the trace itself needs
    /// the serial order.
    pub fn allocate_module_traced(
        &self,
        m: &mut Module,
        spec: &MachineSpec,
        sink: &mut dyn TraceSink,
    ) -> AllocStats {
        let mut scratch = AllocScratch::default();
        let mut total = AllocStats::default();
        for f in &mut m.funcs {
            let stats = self.allocate_function_traced(f, spec, &mut scratch, sink);
            total.merge(&stats);
        }
        total
    }
}

impl RegisterAllocator for BinpackAllocator {
    fn name(&self) -> &str {
        if self.config.second_chance {
            "second-chance binpacking"
        } else {
            "two-pass binpacking"
        }
    }

    fn allocate_function(&self, f: &mut Function, spec: &MachineSpec) -> AllocStats {
        self.allocate_function_reusing(f, spec, &mut AllocScratch::default())
    }

    /// Allocates every function, fanning out over
    /// [`BinpackConfig::workers`] scoped threads.
    ///
    /// Functions are partitioned up front (longest-processing-time first on
    /// instruction count — deterministic, no work stealing) and each worker
    /// allocates its share with a thread-local [`AllocScratch`]. Because no
    /// state crosses function boundaries, the rewritten module is identical
    /// to the serial result; statistics are merged in function order so the
    /// floating-point sums are too.
    fn allocate_module(&self, m: &mut Module, spec: &MachineSpec) -> AllocStats {
        let n = m.funcs.len();
        // Small modules stay serial: the doduc-sized workloads ran *slower*
        // at 2 workers than at 1 (thread spawn/join dominating), so the
        // fan-out only engages past the instruction threshold.
        let total_insts: usize = m.funcs.iter().map(|f| f.num_insts()).sum();
        let workers = self.config.module_workers(total_insts).min(n.max(1));
        let per_func: Vec<AllocStats> = if workers <= 1 {
            let mut scratch = AllocScratch::default();
            m.funcs
                .iter_mut()
                .map(|f| self.allocate_function_reusing(f, spec, &mut scratch))
                .collect()
        } else {
            // LPT: biggest functions first, each to the least-loaded worker
            // (ties broken by index, so the partition is deterministic).
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(m.funcs[i].num_insts()), i));
            let mut load = vec![0usize; workers];
            let mut worker_of = vec![0usize; n];
            for &i in &order {
                let w = (0..workers).min_by_key(|&w| (load[w], w)).unwrap();
                worker_of[i] = w;
                load[w] += m.funcs[i].num_insts().max(1);
            }
            let mut buckets: Vec<Vec<(usize, &mut Function)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, f) in m.funcs.iter_mut().enumerate() {
                buckets[worker_of[i]].push((i, f));
            }
            let mut results: Vec<Option<AllocStats>> = (0..n).map(|_| None).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        s.spawn(move || {
                            let mut scratch = AllocScratch::default();
                            bucket
                                .into_iter()
                                .map(|(i, f)| {
                                    (i, self.allocate_function_reusing(f, spec, &mut scratch))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, st) in h.join().expect("allocation worker panicked") {
                        results[i] = Some(st);
                    }
                }
            });
            results.into_iter().map(|r| r.expect("every function allocated")).collect()
        };
        let mut total = AllocStats::default();
        for st in &per_func {
            total.merge(st);
        }
        total
    }
}

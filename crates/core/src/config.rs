//! Configuration switches for the binpacking allocator.
//!
//! Every design decision the paper discusses is a switch here, so the
//! evaluation harness can ablate them (and so the "traditional two-pass
//! binpacking" comparator of §3.1 is one configuration away).

/// How the resolution phase establishes cross-block soundness for the
/// store-suppression optimization (§2.4, §2.6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ConsistencyMode {
    /// The paper's default: solve the `USED_C` iterative bit-vector dataflow
    /// problem and insert consistency stores on offending edges. Worst-case
    /// quadratic, "two or three iterations at most" in practice.
    #[default]
    Iterative,
    /// The strictly linear alternative of §2.6: initialise the working
    /// `ARE_CONSISTENT` vector at each block top with the intersection of
    /// the saved vectors of all *already scanned* predecessors (an
    /// unscanned predecessor clears every bit), so suppression never relies
    /// on unproven cross-block consistency.
    Conservative,
}

/// Configuration of the second-chance binpacking allocator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BinpackConfig {
    /// Give spilled temporaries second (third, ...) chances at registers:
    /// lifetime splitting with optimistic reloads and postponed stores
    /// (§2.3). Turning this off selects the traditional two-pass binpacking
    /// of §3.1: every temporary lives in a register or in memory for its
    /// whole lifetime.
    pub second_chance: bool,
    /// Allow allocating a temporary into a register hole too small for its
    /// remaining lifetime, evicting when the hole expires (§2.5). This is
    /// what lets temporaries that live across calls still use caller-saved
    /// registers between calls.
    pub allow_insufficient_holes: bool,
    /// On a convention-forced eviction that would require a store, move the
    /// value to a free register instead when one can hold the remaining
    /// lifetime ("early second chance", §2.5).
    pub early_second_chance: bool,
    /// Try to assign a move's destination to the move's source register
    /// when the source dies at the move and the register's hole covers the
    /// destination's lifetime (§2.5); the peephole pass then deletes the
    /// move.
    pub move_coalescing: bool,
    /// Suppress spill stores when the register and the memory home are
    /// known consistent (`ARE_CONSISTENT`, §2.3), or when the temporary is
    /// evicted during a lifetime hole.
    pub store_suppression: bool,
    /// How cross-block consistency is guaranteed.
    pub consistency: ConsistencyMode,
    /// Worker threads `allocate_module` fans functions out over. `0` asks
    /// the OS (`std::thread::available_parallelism`), `1` selects the serial
    /// path. Allocation is independent per function, so the rewritten module
    /// is byte-identical for every worker count.
    pub workers: usize,
    /// Minimum module size (total instructions) before `allocate_module`
    /// dispatches to worker threads, and minimum *function* size before the
    /// per-block analysis passes split across threads. Below the threshold
    /// the thread spawn/join overhead exceeds the work — on small inputs a
    /// 2-worker run used to be *slower* than serial — so the serial path is
    /// taken. Output is byte-identical either way.
    pub parallel_threshold: usize,
    /// Record per-phase wall-clock timings into
    /// [`AllocStats::timings`](crate::AllocStats). Off by default; when off
    /// no per-phase clocks are read.
    pub time_phases: bool,
}

impl Default for BinpackConfig {
    /// The paper's full algorithm.
    fn default() -> Self {
        BinpackConfig {
            second_chance: true,
            allow_insufficient_holes: true,
            early_second_chance: true,
            move_coalescing: true,
            store_suppression: true,
            consistency: ConsistencyMode::Iterative,
            workers: 0,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            time_phases: false,
        }
    }
}

/// Default minimum total-instruction count for parallel dispatch. Chosen
/// from the scaling harness: below ~50k instructions the serial path wins
/// on every measured workload.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 50_000;

impl BinpackConfig {
    /// The traditional two-pass binpacking comparator of §3.1: whole
    /// lifetimes to register or memory, no lifetime splitting, no store
    /// avoidance.
    pub fn two_pass() -> Self {
        BinpackConfig {
            second_chance: false,
            allow_insufficient_holes: false,
            early_second_chance: false,
            move_coalescing: false,
            store_suppression: false,
            consistency: ConsistencyMode::Iterative,
            workers: 0,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            time_phases: false,
        }
    }

    /// The worker count `allocate_module` actually uses: `workers`, with `0`
    /// resolved to the machine's available parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The worker count the per-block analysis passes use for one function
    /// of `num_insts` instructions: serial below
    /// [`BinpackConfig::parallel_threshold`] (or when `workers` is
    /// explicitly 1), the effective worker count otherwise.
    pub fn function_workers(&self, num_insts: usize) -> usize {
        if self.workers != 1 && num_insts >= self.parallel_threshold {
            self.effective_workers()
        } else {
            1
        }
    }

    /// The worker count `allocate_module` uses for a module of
    /// `total_insts` instructions: serial below the threshold, where thread
    /// spawn/join overhead makes the fan-out a slowdown.
    pub fn module_workers(&self, total_insts: usize) -> usize {
        if total_insts >= self.parallel_threshold {
            self.effective_workers()
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_algorithm() {
        let c = BinpackConfig::default();
        assert!(c.second_chance);
        assert!(c.allow_insufficient_holes);
        assert!(c.early_second_chance);
        assert!(c.move_coalescing);
        assert!(c.store_suppression);
        assert_eq!(c.consistency, ConsistencyMode::Iterative);
    }

    #[test]
    fn two_pass_disables_splitting() {
        let c = BinpackConfig::two_pass();
        assert!(!c.second_chance);
        assert!(!c.store_suppression);
    }

    #[test]
    fn workers_resolution() {
        let c = BinpackConfig::default();
        assert_eq!(c.workers, 0);
        assert!(c.effective_workers() >= 1);
        let c = BinpackConfig { workers: 3, ..Default::default() };
        assert_eq!(c.effective_workers(), 3);
    }

    #[test]
    fn parallel_threshold_gates_dispatch() {
        let c = BinpackConfig { workers: 4, ..Default::default() };
        assert_eq!(c.parallel_threshold, DEFAULT_PARALLEL_THRESHOLD);
        // Below the threshold both dispatch decisions stay serial.
        assert_eq!(c.module_workers(DEFAULT_PARALLEL_THRESHOLD - 1), 1);
        assert_eq!(c.function_workers(DEFAULT_PARALLEL_THRESHOLD - 1), 1);
        // At or past it the configured worker count engages.
        assert_eq!(c.module_workers(DEFAULT_PARALLEL_THRESHOLD), 4);
        assert_eq!(c.function_workers(DEFAULT_PARALLEL_THRESHOLD), 4);
        // workers == 1 is an explicit serial request at any size.
        let serial = BinpackConfig { workers: 1, parallel_threshold: 0, ..Default::default() };
        assert_eq!(serial.function_workers(usize::MAX), 1);
        // Threshold 0 forces the parallel path even on tiny inputs.
        let forced = BinpackConfig { workers: 2, parallel_threshold: 0, ..Default::default() };
        assert_eq!(forced.module_workers(1), 2);
    }
}

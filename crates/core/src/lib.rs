//! **Second-chance binpacking** — the linear-scan register allocator of
//! Omri Traub, Glenn Holloway & Michael D. Smith, *Quality and Speed in
//! Linear-scan Register Allocation* (PLDI 1998).
//!
//! The allocator sweeps the code once in linear order, allocating registers
//! **and rewriting operands in the same pass**. Registers are bins; a
//! temporary packs into a register whose *lifetime hole* can hold it.
//! When pressure forces a spill, the victim's lifetime is *split*: already
//! rewritten references keep their register and only future references see
//! memory — and at the next reference the spilled temporary gets a *second
//! chance* at a register (a reload that then stays put, or a definition
//! whose store is postponed and often never issued). A final *resolution*
//! pass repairs the linear model's assumptions across CFG edges and runs
//! one bit-vector dataflow (`USED_C`) to keep store suppression sound.
//!
//! The crate also provides the shared [`RegisterAllocator`] interface and
//! [`AllocStats`] used by the graph-coloring baseline and the evaluation
//! harness, plus the traditional two-pass binpacking comparator
//! ([`BinpackAllocator::two_pass`], §3.1 of the paper).
//!
//! # Examples
//!
//! Allocate a small function and inspect the result:
//!
//! ```
//! use lsra_core::{BinpackAllocator, RegisterAllocator};
//! use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
//!
//! let spec = MachineSpec::alpha_like();
//! let mut b = FunctionBuilder::new(&spec, "sum3", &[RegClass::Int; 3]);
//! let (x, y, z) = (b.param(0), b.param(1), b.param(2));
//! let t = b.int_temp("t");
//! b.add(t, x, y);
//! b.add(t, t, z);
//! b.ret(Some(t.into()));
//! let mut f = b.finish();
//!
//! let stats = BinpackAllocator::default().allocate_function(&mut f, &spec);
//! assert!(f.allocated);
//! assert_eq!(stats.inserted_total(), 0, "no spills at this pressure");
//! println!("{f}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod allocator;
mod config;
mod parallel_move;
pub mod postopt;
mod resolve;
mod scan;
mod scratch;
mod stats;
mod two_pass;

pub use allocator::BinpackAllocator;
pub use config::{BinpackConfig, ConsistencyMode};
pub use parallel_move::{sequentialize, sequentialize_into, EdgeOp};
pub use postopt::{optimize_spill_code, PostOptStats};
pub use scratch::AllocScratch;
pub use stats::{AllocStats, AllocTimings, Phase, RegisterAllocator, PHASE_NAMES};

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_analysis::remove_identity_moves;
    use lsra_ir::{Cond, ExtFn, FunctionBuilder, MachineSpec, Module, ModuleBuilder, RegClass};
    use lsra_vm::{run_module, verify_allocation, VmOptions};

    fn verify(module: &Module, spec: &MachineSpec, config: BinpackConfig, input: &[u8]) {
        let mut allocated = module.clone();
        let alloc = BinpackAllocator::new(config);
        alloc.allocate_module(&mut allocated, spec);
        for id in allocated.func_ids().collect::<Vec<_>>() {
            remove_identity_moves(allocated.func_mut(id));
            allocated.func(id).validate().unwrap_or_else(|e| panic!("invalid output: {e}"));
        }
        verify_allocation(module, &allocated, spec, input, VmOptions::default())
            .unwrap_or_else(|m| panic!("allocation broke {}: {m}\n{allocated}", module.name));
    }

    fn both_configs(module: &Module, spec: &MachineSpec, input: &[u8]) {
        verify(module, spec, BinpackConfig::default(), input);
        verify(module, spec, BinpackConfig::two_pass(), input);
        verify(
            module,
            spec,
            BinpackConfig { consistency: ConsistencyMode::Conservative, ..Default::default() },
            input,
        );
    }

    fn single(f: lsra_ir::Function, mem: usize) -> Module {
        let mut mb = ModuleBuilder::new("t", mem);
        let id = mb.add(f);
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn straight_line_no_pressure() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        let z = b.int_temp("z");
        b.movi(x, 6);
        b.movi(y, 7);
        b.mul(z, x, y);
        b.ret(Some(z.into()));
        let m = single(b.finish(), 0);
        both_configs(&m, &spec, &[]);
        let mut alloc = m.clone();
        let stats = BinpackAllocator::default().allocate_module(&mut alloc, &spec);
        assert_eq!(stats.inserted_total(), 0);
    }

    #[test]
    fn high_pressure_straight_line_spills_and_verifies() {
        // More live temps than registers on a tiny machine.
        let spec = MachineSpec::small(4, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let temps: Vec<_> = (0..12).map(|i| b.int_temp(&format!("v{i}"))).collect();
        for (i, &t) in temps.iter().enumerate() {
            b.movi(t, i as i64 + 1);
        }
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        for &t in &temps {
            b.add(acc, acc, t);
        }
        b.ret(Some(acc.into()));
        let m = single(b.finish(), 0);
        let mut alloc = m.clone();
        let stats = BinpackAllocator::default().allocate_module(&mut alloc, &spec);
        assert!(stats.inserted_total() > 0, "must spill at this pressure");
        both_configs(&m, &spec, &[]);
        let r = run_module(&m, &spec, &[]).unwrap();
        assert_eq!(r.ret, Some((1..=12).sum::<i64>()));
    }

    #[test]
    fn loop_with_branch_resolution() {
        let spec = MachineSpec::small(4, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let n = b.int_temp("n");
        let acc = b.int_temp("acc");
        let k1 = b.int_temp("k1");
        let k2 = b.int_temp("k2");
        let k3 = b.int_temp("k3");
        b.movi(n, 20);
        b.movi(acc, 0);
        b.movi(k1, 3);
        b.movi(k2, 5);
        b.movi(k3, 7);
        let head = b.block();
        let odd = b.block();
        let even = b.block();
        let latch = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let bit = b.int_temp("bit");
        let two = b.int_temp("two");
        b.movi(two, 2);
        b.op2(lsra_ir::OpCode::Rem, bit, n, two);
        b.branch(Cond::Ne, bit, odd, even);
        b.switch_to(odd);
        b.add(acc, acc, k1);
        b.add(acc, acc, k2);
        b.jump(latch);
        b.switch_to(even);
        b.add(acc, acc, k3);
        b.jump(latch);
        b.switch_to(latch);
        b.addi(n, n, -1);
        b.branch(Cond::Gt, n, head, exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let m = single(b.finish(), 0);
        both_configs(&m, &spec, &[]);
    }

    #[test]
    fn values_live_across_calls() {
        // The wc pattern (§3.1): temporaries live through a loop containing
        // a call.
        let spec = MachineSpec::small(6, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let sums: Vec<_> = (0..4).map(|i| b.int_temp(&format!("s{i}"))).collect();
        for &s in &sums {
            b.movi(s, 0);
        }
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.call_ext(ExtFn::GetChar, &[], Some(RegClass::Int)).unwrap();
        b.branch(Cond::Lt, c, exit, body);
        b.switch_to(body);
        for &s in &sums {
            b.add(s, s, c);
        }
        b.jump(head);
        b.switch_to(exit);
        let total = b.int_temp("total");
        b.movi(total, 0);
        for &s in &sums {
            b.add(total, total, s);
        }
        b.ret(Some(total.into()));
        let m = single(b.finish(), 0);
        both_configs(&m, &spec, b"abcde");
        let r = run_module(&m, &spec, b"abcde").unwrap();
        let expected: i64 = 4 * b"abcde".iter().map(|&c| c as i64).sum::<i64>();
        assert_eq!(r.ret, Some(expected));
    }

    #[test]
    fn float_and_int_pressure_together() {
        let spec = MachineSpec::small(4, 4);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let fs: Vec<_> = (0..8).map(|i| b.float_temp(&format!("f{i}"))).collect();
        let is_: Vec<_> = (0..8).map(|i| b.int_temp(&format!("i{i}"))).collect();
        for (k, &t) in fs.iter().enumerate() {
            b.movf(t, k as f64 + 0.5);
        }
        for (k, &t) in is_.iter().enumerate() {
            b.movi(t, k as i64 + 1);
        }
        let facc = b.float_temp("facc");
        b.movf(facc, 0.0);
        for &t in &fs {
            b.op2(lsra_ir::OpCode::FAdd, facc, facc, t);
        }
        let iacc = b.int_temp("iacc");
        b.movi(iacc, 0);
        for &t in &is_ {
            b.add(iacc, iacc, t);
        }
        let fi = b.int_temp("fi");
        b.op1(lsra_ir::OpCode::FloatToInt, fi, facc);
        let total = b.int_temp("total");
        b.add(total, iacc, fi);
        b.ret(Some(total.into()));
        let m = single(b.finish(), 0);
        both_configs(&m, &spec, &[]);
        let r = run_module(&m, &spec, &[]).unwrap();
        // floats: 0.5+1.5+...+7.5 = 32; ints: 36
        assert_eq!(r.ret, Some(68));
    }

    #[test]
    fn register_swap_across_edge_is_resolved() {
        // Rotating values around a loop can require swap resolution across
        // the back edge.
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        let n = b.int_temp("n");
        b.movi(x, 1);
        b.movi(y, 2);
        b.movi(n, 9);
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        // rotate: (x, y) = (y, x+y)
        let t = b.int_temp("t");
        b.add(t, x, y);
        b.mov(x, y);
        b.mov(y, t);
        b.addi(n, n, -1);
        b.branch(Cond::Gt, n, head, exit);
        b.switch_to(exit);
        let r = b.int_temp("r");
        b.add(r, x, y);
        b.ret(Some(r.into()));
        let m = single(b.finish(), 0);
        both_configs(&m, &spec, &[]);
        let r = run_module(&m, &spec, &[]).unwrap();
        // (1,2) rotated 9 times -> (89,144); x+y = 233.
        assert_eq!(r.ret, Some(233));
    }

    #[test]
    fn stats_report_spills() {
        let spec = MachineSpec::small(2, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let temps: Vec<_> = (0..6).map(|i| b.int_temp(&format!("v{i}"))).collect();
        for (i, &t) in temps.iter().enumerate() {
            b.movi(t, i as i64);
        }
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        for &t in &temps {
            b.add(acc, acc, t);
        }
        b.ret(Some(acc.into()));
        let mut m = single(b.finish(), 0);
        let stats = BinpackAllocator::default().allocate_module(&mut m, &spec);
        assert!(stats.spilled_temps > 0);
        assert!(stats.evictions > 0);
        assert!(stats.inserted_count(lsra_ir::SpillTag::EvictLoad) > 0);
        assert!(stats.candidates >= 7);
    }

    #[test]
    fn move_coalescing_binds_param_moves() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "leaf", &[RegClass::Int]);
        let p = b.param(0);
        let r = b.int_temp("r");
        b.add(r, p, p);
        b.ret(Some(r.into()));
        let mut f = b.finish();
        let stats = BinpackAllocator::default().allocate_function(&mut f, &spec);
        assert!(stats.moves_coalesced >= 1, "parameter move should coalesce");
        let removed = remove_identity_moves(&mut f);
        assert!(removed >= 1, "coalesced move becomes an identity move");
    }
}

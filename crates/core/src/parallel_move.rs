//! Sequentialization of the data movement across a CFG edge (§2.4).
//!
//! Resolution decides, per live temporary, whether the edge needs a store,
//! a load, or a register-to-register move. The moves form a *parallel copy*
//! that must be ordered carefully — "even in the case where two (or more)
//! temporaries swap their allocated registers" — which the paper compares to
//! replacing SSA phi-nodes by move sequences. Cycles are broken through the
//! temporary's memory home (no scratch register is reserved).

use lsra_ir::{Inst, PhysReg, Reg, SpillTag, Temp};

/// One required data movement for a temporary across an edge.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EdgeOp {
    /// The temporary was in a register at the predecessor's bottom but in
    /// memory at the successor's top (or a consistency store is required).
    Store {
        /// The temporary whose memory home is written.
        temp: Temp,
        /// The register holding its value.
        src: PhysReg,
    },
    /// The temporary moves from memory to a register across the edge.
    Load {
        /// The temporary whose memory home is read.
        temp: Temp,
        /// The destination register.
        dst: PhysReg,
    },
    /// The temporary changes register across the edge.
    Move {
        /// The temporary being moved (used for cycle breaking through its
        /// memory home).
        temp: Temp,
        /// Register at the predecessor's bottom.
        src: PhysReg,
        /// Register at the successor's top.
        dst: PhysReg,
    },
}

/// Orders the edge operations into a correct instruction sequence:
/// stores first (sources still intact), then the parallel moves (cycles
/// broken through memory homes), then loads (destinations written last).
///
/// # Examples
///
/// A two-register swap costs a store and a load through one temporary's
/// memory home:
///
/// ```
/// use lsra_core::{sequentialize, EdgeOp};
/// use lsra_ir::{PhysReg, Temp};
///
/// let ops = [
///     EdgeOp::Move { temp: Temp(0), src: PhysReg::int(1), dst: PhysReg::int(2) },
///     EdgeOp::Move { temp: Temp(1), src: PhysReg::int(2), dst: PhysReg::int(1) },
/// ];
/// let seq = sequentialize(&ops, |_| {});
/// assert_eq!(seq.len(), 3); // store, move, load
/// ```
///
/// Returns `(instruction, tag)` pairs ready for insertion; the caller must
/// have assigned spill slots to every temporary named in a store/load (and
/// to every temporary in a move, lazily, if a cycle forces it through
/// memory — which is why this function takes a slot-assigning callback).
pub fn sequentialize(ops: &[EdgeOp], ensure_slot: impl FnMut(Temp)) -> Vec<(Inst, SpillTag)> {
    let mut out = Vec::new();
    sequentialize_into(ops, &mut out, ensure_slot);
    out
}

/// Like [`sequentialize`], appending to a caller-owned buffer so a resolver
/// walking thousands of edges reuses one allocation.
pub fn sequentialize_into(
    ops: &[EdgeOp],
    out: &mut Vec<(Inst, SpillTag)>,
    mut ensure_slot: impl FnMut(Temp),
) {
    // 1. Stores.
    for op in ops {
        if let EdgeOp::Store { temp, src } = *op {
            ensure_slot(temp);
            out.push((Inst::SpillStore { src: Reg::Phys(src), temp }, SpillTag::ResolveStore));
        }
    }
    // 2. Parallel moves. Edge copies are almost always tiny, so the work
    // lists live in inline storage.
    let mut pending: lsra_analysis::SmallVec<(PhysReg, PhysReg, Temp), 8> =
        lsra_analysis::SmallVec::new();
    for op in ops {
        if let EdgeOp::Move { temp, src, dst } = *op {
            if src != dst {
                pending.push((dst, src, temp));
            }
        }
    }
    let mut deferred_loads: lsra_analysis::SmallVec<(Temp, PhysReg), 8> =
        lsra_analysis::SmallVec::new();
    while !pending.is_empty() {
        // Emit any move whose destination is not the source of another
        // pending move.
        if let Some(i) =
            (0..pending.len()).find(|&i| pending.iter().all(|&(_, src, _)| src != pending[i].0))
        {
            let (dst, src, _) = pending.swap_remove(i);
            out.push((
                Inst::Mov { dst: Reg::Phys(dst), src: Reg::Phys(src) },
                SpillTag::ResolveMove,
            ));
        } else {
            // Every pending destination is also a pending source: a cycle
            // (or several). Break one through its temporary's memory home.
            let (dst, src, temp) = pending.swap_remove(0);
            ensure_slot(temp);
            out.push((Inst::SpillStore { src: Reg::Phys(src), temp }, SpillTag::ResolveStore));
            deferred_loads.push((temp, dst));
        }
    }
    for &(temp, dst) in &deferred_loads {
        out.push((Inst::SpillLoad { dst: Reg::Phys(dst), temp }, SpillTag::ResolveLoad));
    }
    // 3. Loads.
    for op in ops {
        if let EdgeOp::Load { temp, dst } = *op {
            ensure_slot(temp);
            out.push((Inst::SpillLoad { dst: Reg::Phys(dst), temp }, SpillTag::ResolveLoad));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> PhysReg {
        PhysReg::int(i)
    }

    fn t(i: u32) -> Temp {
        Temp(i)
    }

    /// Simulates the sequence on a tiny machine state to check semantics.
    fn simulate(ops: &[EdgeOp], seq: &[(Inst, SpillTag)]) {
        use std::collections::HashMap;
        // Initial state: register k holds value 100+k; memory home of temp
        // i holds 200+i.
        let mut regs: HashMap<PhysReg, i64> = HashMap::new();
        for k in 0..8 {
            regs.insert(r(k), 100 + k as i64);
        }
        let mut mem: HashMap<Temp, i64> = (0..8).map(|i| (t(i), 200 + i as i64)).collect();
        // Expected final values, from the parallel semantics.
        let mut expect: Vec<(PhysReg, i64)> = Vec::new();
        let mut expect_mem: Vec<(Temp, i64)> = Vec::new();
        for op in ops {
            match *op {
                EdgeOp::Move { src, dst, .. } => expect.push((dst, regs[&src])),
                EdgeOp::Load { temp, dst } => expect.push((dst, mem[&temp])),
                EdgeOp::Store { temp, src } => expect_mem.push((temp, regs[&src])),
            }
        }
        // Execute the sequence.
        for (inst, _) in seq {
            match inst {
                Inst::Mov { dst, src } => {
                    let v = regs[&src.as_phys().unwrap()];
                    regs.insert(dst.as_phys().unwrap(), v);
                }
                Inst::SpillStore { src, temp } => {
                    let v = regs[&src.as_phys().unwrap()];
                    mem.insert(*temp, v);
                }
                Inst::SpillLoad { dst, temp } => {
                    regs.insert(dst.as_phys().unwrap(), mem[temp]);
                }
                other => panic!("unexpected instruction {other:?}"),
            }
        }
        for (reg, v) in expect {
            assert_eq!(regs[&reg], v, "register {reg} has wrong final value");
        }
        for (temp, v) in expect_mem {
            assert_eq!(mem[&temp], v, "memory home of {temp} has wrong final value");
        }
    }

    #[test]
    fn acyclic_chain() {
        // r1 <- r2 <- r3 must be emitted in dependency order.
        let ops = vec![
            EdgeOp::Move { temp: t(0), src: r(2), dst: r(1) },
            EdgeOp::Move { temp: t(1), src: r(3), dst: r(2) },
        ];
        let seq = sequentialize(&ops, |_| {});
        assert_eq!(seq.len(), 2);
        simulate(&ops, &seq);
    }

    #[test]
    fn two_register_swap() {
        let ops = vec![
            EdgeOp::Move { temp: t(0), src: r(1), dst: r(2) },
            EdgeOp::Move { temp: t(1), src: r(2), dst: r(1) },
        ];
        let mut slots = Vec::new();
        let seq = sequentialize(&ops, |tm| slots.push(tm));
        // A swap needs a store + load through one temp's memory home.
        assert_eq!(slots.len(), 1);
        assert_eq!(seq.len(), 3);
        simulate(&ops, &seq);
    }

    #[test]
    fn three_cycle() {
        let ops = vec![
            EdgeOp::Move { temp: t(0), src: r(1), dst: r(2) },
            EdgeOp::Move { temp: t(1), src: r(2), dst: r(3) },
            EdgeOp::Move { temp: t(2), src: r(3), dst: r(1) },
        ];
        let seq = sequentialize(&ops, |_| {});
        simulate(&ops, &seq);
    }

    #[test]
    fn mixed_stores_moves_loads() {
        // A load whose destination is also a move source: the move must
        // execute first. A store whose source is also a move destination:
        // the store must execute first.
        let ops = vec![
            EdgeOp::Store { temp: t(5), src: r(4) },
            EdgeOp::Move { temp: t(0), src: r(6), dst: r(4) },
            EdgeOp::Load { temp: t(7), dst: r(6) },
        ];
        let seq = sequentialize(&ops, |_| {});
        simulate(&ops, &seq);
        // Order sanity: store first, load last.
        assert!(matches!(seq.first().unwrap().0, Inst::SpillStore { .. }));
        assert!(matches!(seq.last().unwrap().0, Inst::SpillLoad { .. }));
    }

    #[test]
    fn identity_moves_are_dropped() {
        let ops = vec![EdgeOp::Move { temp: t(0), src: r(1), dst: r(1) }];
        let seq = sequentialize(&ops, |_| {});
        assert!(seq.is_empty());
    }

    #[test]
    fn two_disjoint_cycles() {
        let ops = vec![
            EdgeOp::Move { temp: t(0), src: r(1), dst: r(2) },
            EdgeOp::Move { temp: t(1), src: r(2), dst: r(1) },
            EdgeOp::Move { temp: t(2), src: r(3), dst: r(4) },
            EdgeOp::Move { temp: t(3), src: r(4), dst: r(3) },
        ];
        let seq = sequentialize(&ops, |_| {});
        simulate(&ops, &seq);
    }
}

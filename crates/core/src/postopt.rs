//! Post-allocation spill-code cleanup — the paper's suggested follow-up
//! pass (§2.4: "a global optimization pass run after allocation can
//! eliminate unnecessary load/store pairs as well as partially redundant
//! spill instructions using hoisting and sinking techniques"; §3.1 makes
//! the same observation about the eqntott/espresso output).
//!
//! This implements the profitable core of that suggestion on allocated
//! code:
//!
//! 1. **Load forwarding**: when a spill slot's current value is known to
//!    live in a register (after a store to, or load from, that slot), a
//!    later reload becomes a register move — "when loads and stores to the
//!    same stack location meet, we can replace the two operations with a
//!    move". Works within blocks and across single-predecessor edges. The
//!    move is then removed entirely when source and destination coincide.
//! 2. **Dead spill-store elimination**: spill slots are function-private,
//!    so a store whose slot is never reloaded afterwards (on any path) is
//!    dead and is removed.
//!
//! The pass is *not* part of the default allocator pipeline — the paper
//! left it as future work and reports numbers without it — but the
//! evaluation harness exposes it as an ablation.

use lsra_analysis::BitSet;
use lsra_ir::{Function, Inst, MachineSpec, PhysReg, Reg, SlotId, SpillTag};

/// What the cleanup removed or rewrote.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PostOptStats {
    /// Reloads turned into register moves.
    pub loads_forwarded: u64,
    /// Reloads removed outright (value already in the right register).
    pub loads_removed: u64,
    /// Dead spill stores removed.
    pub dead_stores_removed: u64,
}

/// The value currently known to be held by each spill slot.
#[derive(Clone, Debug, Default, PartialEq)]
struct SlotMap {
    entries: Vec<(SlotId, PhysReg)>,
}

impl SlotMap {
    fn get(&self, slot: SlotId) -> Option<PhysReg> {
        self.entries.iter().find(|(s, _)| *s == slot).map(|&(_, r)| r)
    }

    fn set(&mut self, slot: SlotId, reg: PhysReg) {
        self.entries.retain(|(s, _)| *s != slot);
        self.entries.push((slot, reg));
    }

    fn invalidate_reg(&mut self, reg: PhysReg) {
        self.entries.retain(|(_, r)| *r != reg);
    }

    fn invalidate_caller_saved(&mut self, spec: &MachineSpec) {
        self.entries.retain(|(_, r)| spec.is_callee_saved(*r));
    }
}

/// Runs the cleanup on an allocated function.
///
/// # Panics
///
/// Panics if the function has not been register-allocated yet (the pass
/// reasons about physical registers only).
pub fn optimize_spill_code(f: &mut Function, spec: &MachineSpec) -> PostOptStats {
    assert!(f.allocated, "post-allocation cleanup requires an allocated function");
    let mut stats = PostOptStats::default();
    forward_loads(f, spec, &mut stats);
    remove_dead_stores(f, &mut stats);
    stats
}

fn slot_of(f: &Function, t: lsra_ir::Temp) -> SlotId {
    f.spill_slots[t.index()].expect("spill instruction references temp without slot")
}

fn forward_loads(f: &mut Function, spec: &MachineSpec, stats: &mut PostOptStats) {
    let preds = f.compute_preds();
    // Exit maps of already-processed blocks, used across single-pred edges.
    let mut exit_maps: Vec<Option<SlotMap>> = vec![None; f.num_blocks()];
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut map = match preds[b.index()].as_slice() {
            // A unique, already-processed predecessor seeds the map (its
            // terminator writes no register).
            [p] if p.index() < b.index() => exit_maps[p.index()].clone().unwrap_or_default(),
            _ => SlotMap::default(),
        };
        let insts = std::mem::take(&mut f.block_mut(b).insts);
        let mut out = Vec::with_capacity(insts.len());
        for mut ins in insts {
            match &ins.inst {
                Inst::SpillStore { src: Reg::Phys(r), temp } => {
                    let slot = f.spill_slots[temp.index()].expect("slot");
                    map.set(slot, *r);
                    out.push(ins);
                }
                Inst::SpillLoad { dst: Reg::Phys(d), temp } => {
                    let slot = f.spill_slots[temp.index()].expect("slot");
                    let known = map.get(slot);
                    match known {
                        Some(r) if r == *d => {
                            // Value already sits in the destination.
                            stats.loads_removed += 1;
                            // (dropped)
                        }
                        Some(r) => {
                            stats.loads_forwarded += 1;
                            let tag = match ins.tag {
                                SpillTag::ResolveLoad => SpillTag::ResolveMove,
                                _ => SpillTag::EvictMove,
                            };
                            map.invalidate_reg(*d);
                            map.set(slot, *d);
                            ins.inst = Inst::Mov { dst: Reg::Phys(*d), src: Reg::Phys(r) };
                            ins.tag = tag;
                            out.push(ins);
                        }
                        None => {
                            map.invalidate_reg(*d);
                            map.set(slot, *d);
                            out.push(ins);
                        }
                    }
                }
                _ => {
                    if ins.inst.is_call() {
                        map.invalidate_caller_saved(spec);
                    }
                    ins.inst.for_each_def(|r| {
                        if let Reg::Phys(p) = r {
                            map.invalidate_reg(p);
                        }
                    });
                    out.push(ins);
                }
            }
        }
        f.block_mut(b).insts = out;
        exit_maps[b.index()] = Some(map);
    }
}

fn remove_dead_stores(f: &mut Function, stats: &mut PostOptStats) {
    let ns = f.num_slots as usize;
    if ns == 0 {
        return;
    }
    // Backward slot-liveness: gen = slot loaded before any store in the
    // block; kill = slot stored.
    let nb = f.num_blocks();
    let mut gen = vec![BitSet::new(ns); nb];
    let mut kill = vec![BitSet::new(ns); nb];
    for b in f.block_ids() {
        let bi = b.index();
        for ins in &f.block(b).insts {
            match &ins.inst {
                Inst::SpillLoad { temp, .. } => {
                    let s = slot_of(f, *temp);
                    if !kill[bi].contains(s.index()) {
                        gen[bi].insert(s.index());
                    }
                }
                Inst::SpillStore { temp, .. } => {
                    kill[bi].insert(slot_of(f, *temp).index());
                }
                _ => {}
            }
        }
    }
    let order: Vec<lsra_ir::BlockId> = (0..nb as u32).rev().map(lsra_ir::BlockId).collect();
    let sol = lsra_analysis::solve_backward(f, ns, &gen, &kill, &order);
    let live_out = sol.live_out;
    // Backward sweep per block removing stores to dead slots.
    let slots = f.spill_slots.clone();
    for b in f.block_ids().collect::<Vec<_>>() {
        let bi = b.index();
        let mut live = live_out[bi].clone();
        let block = f.block_mut(b);
        let mut keep = vec![true; block.insts.len()];
        for (i, ins) in block.insts.iter().enumerate().rev() {
            match &ins.inst {
                Inst::SpillStore { temp, .. } => {
                    let s = slots[temp.index()].expect("slot").index();
                    if live.contains(s) {
                        live.remove(s);
                    } else {
                        keep[i] = false;
                        stats.dead_stores_removed += 1;
                    }
                }
                Inst::SpillLoad { temp, .. } => {
                    live.insert(slots[temp.index()].expect("slot").index());
                }
                _ => {}
            }
        }
        let mut it = keep.iter();
        block.insts.retain(|_| *it.next().unwrap());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinpackAllocator, RegisterAllocator};
    use lsra_ir::{Cond, ExtFn, FunctionBuilder, MachineSpec, ModuleBuilder, RegClass};
    use lsra_vm::{verify_allocation, VmOptions};

    /// High-pressure module that produces plenty of spill code.
    fn spilling_module(spec: &MachineSpec) -> lsra_ir::Module {
        let mut mb = ModuleBuilder::new("po", 8);
        let mut b = FunctionBuilder::new(spec, "main", &[]);
        let temps: Vec<_> = (0..10).map(|i| b.int_temp(&format!("v{i}"))).collect();
        for (i, &t) in temps.iter().enumerate() {
            b.movi(t, i as i64 + 1);
        }
        let n = b.int_temp("n");
        b.movi(n, 25);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.branch(Cond::Le, n, exit, body);
        b.switch_to(body);
        let c = b.call_ext(ExtFn::GetChar, &[], Some(RegClass::Int)).unwrap();
        for &t in &temps {
            b.add(t, t, c);
        }
        b.addi(n, n, -1);
        b.jump(head);
        b.switch_to(exit);
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        // Each value is folded twice: a spilled temporary is then loaded
        // twice in one block and the second load can be forwarded.
        for &t in &temps {
            b.add(acc, acc, t);
            b.add(acc, acc, t);
        }
        b.ret(Some(acc.into()));
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn cleanup_preserves_behaviour_and_saves_work() {
        let spec = MachineSpec::small(5, 2);
        let module = spilling_module(&spec);
        let input = vec![3u8; 25];

        let mut plain = module.clone();
        // Two-pass binpacking produces the densest load/store traffic
        // (store per definition, load per use), giving the cleanup the most
        // to find.
        BinpackAllocator::two_pass().allocate_module(&mut plain, &spec);
        let before = verify_allocation(&module, &plain, &spec, &input, VmOptions::default())
            .expect("plain allocation verifies");

        let mut optimized = plain.clone();
        let mut total = PostOptStats::default();
        for id in optimized.func_ids().collect::<Vec<_>>() {
            let s = optimize_spill_code(optimized.func_mut(id), &spec);
            total.loads_forwarded += s.loads_forwarded;
            total.loads_removed += s.loads_removed;
            total.dead_stores_removed += s.dead_stores_removed;
            lsra_analysis::remove_identity_moves(optimized.func_mut(id));
        }
        let after = verify_allocation(&module, &optimized, &spec, &input, VmOptions::default())
            .expect("optimized allocation verifies");
        assert!(
            total.loads_forwarded + total.loads_removed + total.dead_stores_removed > 0,
            "expected the cleanup to find something: {total:?}"
        );
        assert!(
            after.counts.total <= before.counts.total,
            "cleanup made the program slower: {} vs {}",
            after.counts.total,
            before.counts.total
        );
    }

    #[test]
    fn forwarding_replaces_load_after_store() {
        // Hand-written allocated code: store r1 to a slot, then reload into
        // r2 — must become a move.
        let spec = MachineSpec::alpha_like();
        let mut f = lsra_ir::Function::new("t");
        let t = f.new_temp(RegClass::Int, None);
        let slot = f.slot_for(t);
        let b0 = f.add_block();
        let r1: Reg = PhysReg::int(1).into();
        let r2: Reg = PhysReg::int(2).into();
        f.block_mut(b0).insts.extend([
            lsra_ir::Ins::new(Inst::MovI { dst: r1, imm: 5 }),
            lsra_ir::Ins::tagged(Inst::SpillStore { src: r1, temp: t }, SpillTag::EvictStore),
            lsra_ir::Ins::tagged(Inst::SpillLoad { dst: r2, temp: t }, SpillTag::EvictLoad),
            lsra_ir::Ins::new(Inst::Ret { ret_regs: vec![] }),
        ]);
        f.allocated = true;
        let stats = optimize_spill_code(&mut f, &spec);
        assert_eq!(stats.loads_forwarded, 1);
        assert_eq!(
            f.count_insts(|i| matches!(i, Inst::SpillLoad { .. })),
            0,
            "reload must be gone"
        );
        assert_eq!(f.count_insts(|i| i.is_move()), 1);
        let _ = slot;
    }

    #[test]
    fn forwarding_respects_register_clobbers() {
        // A call between store and load clobbers the caller-saved source:
        // the reload must stay.
        let spec = MachineSpec::alpha_like();
        let mut f = lsra_ir::Function::new("t");
        let t = f.new_temp(RegClass::Int, None);
        f.slot_for(t);
        let b0 = f.add_block();
        let r1: Reg = PhysReg::int(1).into(); // caller-saved
        f.block_mut(b0).insts.extend([
            lsra_ir::Ins::new(Inst::MovI { dst: r1, imm: 5 }),
            lsra_ir::Ins::tagged(Inst::SpillStore { src: r1, temp: t }, SpillTag::EvictStore),
            lsra_ir::Ins::new(Inst::Call {
                callee: lsra_ir::Callee::Ext(ExtFn::GetChar),
                arg_regs: vec![],
                ret_regs: vec![spec.ret_reg(RegClass::Int)],
            }),
            lsra_ir::Ins::tagged(Inst::SpillLoad { dst: r1, temp: t }, SpillTag::EvictLoad),
            lsra_ir::Ins::new(Inst::Ret { ret_regs: vec![] }),
        ]);
        f.allocated = true;
        let stats = optimize_spill_code(&mut f, &spec);
        assert_eq!(stats.loads_forwarded + stats.loads_removed, 0);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::SpillLoad { .. })), 1);
    }

    #[test]
    fn dead_stores_are_removed() {
        let spec = MachineSpec::alpha_like();
        let mut f = lsra_ir::Function::new("t");
        let t = f.new_temp(RegClass::Int, None);
        f.slot_for(t);
        let b0 = f.add_block();
        let r1: Reg = PhysReg::int(1).into();
        f.block_mut(b0).insts.extend([
            lsra_ir::Ins::new(Inst::MovI { dst: r1, imm: 5 }),
            lsra_ir::Ins::tagged(Inst::SpillStore { src: r1, temp: t }, SpillTag::EvictStore),
            lsra_ir::Ins::new(Inst::Ret { ret_regs: vec![] }),
        ]);
        f.allocated = true;
        let stats = optimize_spill_code(&mut f, &spec);
        assert_eq!(stats.dead_stores_removed, 1);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::SpillStore { .. })), 0);
    }

    #[test]
    fn live_store_is_kept() {
        // Store then reload in a successor block: live.
        let spec = MachineSpec::alpha_like();
        let mut f = lsra_ir::Function::new("t");
        let t = f.new_temp(RegClass::Int, None);
        f.slot_for(t);
        let b0 = f.add_block();
        let b1 = f.add_block();
        let r1: Reg = PhysReg::int(1).into();
        let r2: Reg = PhysReg::int(2).into();
        f.block_mut(b0).insts.extend([
            lsra_ir::Ins::new(Inst::MovI { dst: r1, imm: 5 }),
            lsra_ir::Ins::tagged(Inst::SpillStore { src: r1, temp: t }, SpillTag::EvictStore),
            lsra_ir::Ins::new(Inst::Jump { target: b1 }),
        ]);
        f.block_mut(b1).insts.extend([
            lsra_ir::Ins::tagged(Inst::SpillLoad { dst: r2, temp: t }, SpillTag::EvictLoad),
            lsra_ir::Ins::new(Inst::Ret { ret_regs: vec![] }),
        ]);
        f.allocated = true;
        let stats = optimize_spill_code(&mut f, &spec);
        // The load forwards across the single-pred edge into a move, which
        // in turn makes the store dead: the whole pair collapses, exactly
        // the "loads and stores meet" replacement of §2.4.
        assert_eq!(stats.loads_forwarded, 1);
        assert_eq!(stats.dead_stores_removed, 1);
        assert_eq!(f.count_insts(|i| matches!(i, Inst::SpillStore { .. })), 0);
        assert_eq!(f.count_insts(|i| i.is_move()), 1);
    }
}

//! The resolution phase (§2.4).
//!
//! The linear scan models control flow as a straight line, so the location
//! of a temporary assumed at the top of a block can disagree with its actual
//! location at the bottom of a CFG predecessor. This pass traverses every
//! CFG edge and repairs each mismatch with loads, stores, and moves —
//! sequencing the moves as a parallel copy (register swaps included) and
//! placing the repair code at the top of a single-predecessor head, the
//! bottom of a single-successor tail, or on a freshly split critical edge.
//!
//! It also runs the paper's `USED_C` iterative bit-vector dataflow to insert
//! the spill stores that make the store-suppression optimization (§2.3)
//! sound across all paths. Two kinds of suppression rely on consistency
//! facts that may have been inherited along the *linear* order rather than a
//! CFG path: eviction-store suppression during the scan (the paper's `Ut`)
//! and edge-store omission during resolution itself; both contribute GEN
//! bits here.

use lsra_analysis::{BitSet, Liveness};
use lsra_ir::{BlockId, Function, PhysReg, Temp};
use lsra_trace::{ResolveOp, TraceEvent, TraceSink};

use crate::config::{BinpackConfig, ConsistencyMode};
use crate::parallel_move::{sequentialize_into, EdgeOp};
use crate::scan::ScanOutput;
use crate::scratch::AllocScratch;
use crate::stats::{AllocStats, Phase, PhaseTimer};

fn reg_of(map: &[(Temp, PhysReg)], t: Temp) -> Option<PhysReg> {
    map.binary_search_by_key(&t, |&(x, _)| x).ok().map(|i| map[i].1)
}

/// True if the block's terminator reads no register, so code may be placed
/// immediately before it.
fn terminator_is_placement_safe(f: &Function, b: BlockId) -> bool {
    let mut uses = 0;
    f.block(b).terminator().for_each_use(|_| uses += 1);
    uses == 0
}

pub(crate) fn resolve(
    f: &mut Function,
    live: &Liveness,
    scan: &ScanOutput,
    cfg: BinpackConfig,
    stats: &mut AllocStats,
    scratch: &mut AllocScratch,
    sink: &mut dyn TraceSink,
) {
    let mut timer = PhaseTimer::new(cfg.time_phases);
    let nb = scan.top_map.rows();
    let ng = live.num_globals();
    // Sampled once: `env::var_os` walks the process environment, too slow
    // for the per-(edge, temp) loop below.
    let debug = std::env::var_os("LSRA_DEBUG").is_some();

    // Snapshot the original edges; splitting will append blocks. Placement
    // only asks whether a successor has exactly one predecessor, so a count
    // per block replaces the full predecessor lists.
    let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
    let mut pred_count = vec![0u32; nb];
    for b in 0..nb {
        for s in f.succs(BlockId(b as u32)) {
            edges.push((BlockId(b as u32), s));
            pred_count[s.index()] += 1;
        }
    }

    // GEN sets: the scan's eviction-suppression reliances, plus the
    // resolution edge-store omissions computed below (a temporary kept
    // consistent-in-register at a predecessor bottom while the successor
    // top expects it in memory relies on that consistency).
    let mut used_c_in: Vec<BitSet> = scan.used_consistency.clone();
    timer.mark_traced(stats, Phase::Resolve, sink);
    if cfg.consistency == ConsistencyMode::Iterative {
        for &(p, s) in &edges {
            for g in live.live_in(s).iter() {
                let t = live.temp_of(g);
                let loc_p = reg_of(scan.bottom_map.row(p.index()), t);
                let loc_s = reg_of(scan.top_map.row(s.index()), t);
                if loc_p.is_some()
                    && loc_s.is_none()
                    && scan.consistent_bottom[p.index()].contains(g)
                    && !scan.wrote_tr[p.index()].contains(g)
                {
                    used_c_in[p.index()].insert(g);
                }
            }
        }
        // Solve USED_C_in(b) = GEN(b) ∪ (∪_s USED_C_in(s) ∖ WROTE_TR(b))
        // to a fixed point (backward problem).
        let gen = used_c_in.clone();
        let order: Vec<BlockId> = (0..nb as u32).rev().map(BlockId).collect();
        let sol = lsra_analysis::solve_backward(f, ng, &gen, &scan.wrote_tr, &order);
        used_c_in = sol.live_in;
        stats.iterations = sol.iterations;
        if sink.enabled() {
            sink.event(&TraceEvent::ConsistencyDone { iterations: sol.iterations });
        }
    }
    timer.mark_traced(stats, Phase::Consistency, sink);

    // Process each edge; `ops`, `seq`, and `spilled` are the scratch
    // arena's reusable edge buffers.
    let mut ops = std::mem::take(&mut scratch.edge_ops);
    let mut seq = std::mem::take(&mut scratch.edge_insns);
    let mut spilled = std::mem::take(&mut scratch.edge_spilled);
    for (p, s) in edges {
        ops.clear();
        for g in live.live_in(s).iter() {
            let t = live.temp_of(g);
            let loc_p = reg_of(scan.bottom_map.row(p.index()), t);
            let loc_s = reg_of(scan.top_map.row(s.index()), t);
            let consistent_p = scan.consistent_bottom[p.index()].contains(g);
            let mut store = false;
            // The (Some, Some) branch's store repairs a downstream
            // consistency reliance rather than a location mismatch; the
            // trace distinguishes the two.
            let mut consistency_store = false;
            match (loc_p, loc_s) {
                (Some(r1), Some(r2)) => {
                    if r1 != r2 {
                        ops.push(EdgeOp::Move { temp: t, src: r1, dst: r2 });
                        if sink.enabled() {
                            let op = ResolveOp::Move { temp: t, src: r1, dst: r2 };
                            sink.event(&TraceEvent::EdgeOp { pred: p, succ: s, op });
                        }
                    }
                    // Consistency patch (§2.4): a path beginning here
                    // reaches a point that exploited register/memory
                    // consistency, but they are not consistent at p.
                    if cfg.consistency == ConsistencyMode::Iterative
                        && used_c_in[s.index()].contains(g)
                        && !consistent_p
                    {
                        store = true;
                        consistency_store = true;
                    }
                }
                (Some(_), None) => {
                    // Register at p, memory at s: store unless already
                    // consistent (if consistent, the omission's GEN bit was
                    // recorded above).
                    if !consistent_p {
                        store = true;
                    }
                }
                (None, Some(r2)) => {
                    ops.push(EdgeOp::Load { temp: t, dst: r2 });
                    if sink.enabled() {
                        let op = ResolveOp::Load { temp: t, dst: r2 };
                        sink.event(&TraceEvent::EdgeOp { pred: p, succ: s, op });
                    }
                }
                (None, None) => {}
            }
            if store {
                let r1 = loc_p.expect("store source must be a register");
                ops.push(EdgeOp::Store { temp: t, src: r1 });
                if sink.enabled() {
                    let op = if consistency_store {
                        ResolveOp::ConsistencyStore { temp: t, src: r1 }
                    } else {
                        ResolveOp::Store { temp: t, src: r1 }
                    };
                    sink.event(&TraceEvent::EdgeOp { pred: p, succ: s, op });
                }
            }
            if debug && (loc_p.is_some() || loc_s.is_some()) {
                eprintln!(
                    "EDGE {p}->{s} {t}: p={loc_p:?} s={loc_s:?} consistent_p={consistent_p} store={store}"
                );
            }
        }
        if ops.is_empty() {
            continue;
        }
        spilled.clear();
        seq.clear();
        sequentialize_into(&ops, &mut seq, |t| spilled.push(t));
        if sink.enabled() {
            // Swap-cycle breaks: the parallel copy had a register cycle and
            // `t` went through its memory home instead of a spare register.
            for &t in &spilled {
                let op = ResolveOp::CycleBreak { temp: t };
                sink.event(&TraceEvent::EdgeOp { pred: p, succ: s, op });
            }
        }
        for t in ops.iter().filter_map(|o| match o {
            EdgeOp::Store { temp, .. } | EdgeOp::Load { temp, .. } => Some(*temp),
            EdgeOp::Move { .. } => None,
        }) {
            if f.spill_slots[t.index()].is_none() {
                stats.spilled_temps += 1;
            }
            f.slot_for(t);
        }
        for &t in &spilled {
            if f.spill_slots[t.index()].is_none() {
                stats.spilled_temps += 1;
            }
            f.slot_for(t);
        }
        for (_, tag) in &seq {
            stats.record_insert(*tag);
        }
        let insns = seq.drain(..).map(|(inst, tag)| lsra_ir::Ins::tagged(inst, tag));

        // Placement (§2.4, footnote 1).
        if pred_count[s.index()] == 1 {
            let blk = f.block_mut(s);
            blk.insts.splice(0..0, insns);
        } else if f.succs(p).len() == 1 && terminator_is_placement_safe(f, p) {
            let blk = f.block_mut(p);
            let at = blk.insts.len() - 1;
            blk.insts.splice(at..at, insns);
        } else {
            let nb2 = lsra_analysis::split_edge(f, p, s);
            let blk = f.block_mut(nb2);
            blk.insts.splice(0..0, insns);
        }
    }
    scratch.edge_ops = ops;
    scratch.edge_insns = seq;
    scratch.edge_spilled = spilled;
    timer.mark_traced(stats, Phase::Resolve, sink);
}

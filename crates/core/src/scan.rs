//! The single-pass allocate-and-rewrite linear scan (§2.2, §2.3, §2.5).
//!
//! Unlike earlier linear-scan allocators, which decide allocations in one
//! pass over sorted lifetimes and rewrite operands in a second, this scan
//! interleaves the two: each instruction's operands are allocated (evicting
//! or reloading as needed) and immediately rewritten to physical registers.
//! A spill therefore *splits* the victim's lifetime — earlier references
//! keep their register; only future references are affected — and a spilled
//! temporary gets a *second chance* at a register at its next reference.
//!
//! The scan also records, per basic block, the location maps and consistency
//! bit vectors that the resolution phase (§2.4) consumes.

use lsra_analysis::{BitSet, Csr, EpochSet, Lifetimes, Liveness, Point};
use lsra_ir::{Function, Ins, Inst, MachineSpec, PhysReg, Reg, RegClass, SpillTag, Temp};
use lsra_trace::{CoalesceOutcome, EvictAction, FitTier, SpillCandidate, TraceEvent, TraceSink};

use crate::config::{BinpackConfig, ConsistencyMode};
use crate::scratch::{reset, take_bitsets, AllocScratch};
use crate::stats::AllocStats;

/// Where a temporary's current value lives during the scan.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Loc {
    /// Not yet materialised anywhere (before its first reference, or while
    /// holding no value inside a lifetime hole after losing its register).
    None,
    /// In a physical register.
    Reg(PhysReg),
    /// In its memory home (spill slot).
    Mem,
}

/// Per-block facts handed from the scan to the resolution phase.
///
/// The location maps are compressed-sparse-row containers (one row per
/// block, rows finished in block order as the scan advances); their backing
/// arrays come from — and return to — the [`AllocScratch`] arena.
#[derive(Debug)]
pub(crate) struct ScanOutput {
    /// Register-resident live-in temporaries at the top of each block;
    /// live-in temporaries absent from the list are in memory. Rows sorted
    /// by temporary.
    pub top_map: Csr<(Temp, PhysReg)>,
    /// Same at the bottom of each block (live-out temporaries).
    pub bottom_map: Csr<(Temp, PhysReg)>,
    /// Saved `ARE_CONSISTENT` at the bottom of each block (over the
    /// liveness global-temp universe; a set bit means the temporary is in a
    /// register whose contents match its memory home).
    pub consistent_bottom: Vec<BitSet>,
    /// `USED_CONSISTENCY(b)` — the GEN set of the `USED_C` dataflow.
    pub used_consistency: Vec<BitSet>,
    /// `WROTE_TR(b)` — the KILL set.
    pub wrote_tr: Vec<BitSet>,
}

pub(crate) struct Scanner<'a> {
    f: &'a mut Function,
    live: &'a Liveness,
    lt: &'a Lifetimes,
    cfg: BinpackConfig,
    stats: &'a mut AllocStats,
    ni: usize,
    occupant: Vec<Option<Temp>>,
    loc: Vec<Loc>,
    consistent: Vec<bool>,
    /// Temporaries written in the current block; epoch-stamped so the
    /// per-block reset is O(1) instead of O(temps).
    wrote_local: EpochSet,
    /// Temporaries whose store suppression relied on consistency facts not
    /// established in the current block (`Ut`, §2.4); epoch-stamped too.
    used_local: EpochSet,
    seg_cur: Vec<usize>,
    ref_cur: Vec<usize>,
    blk_cur: Vec<usize>,
    /// Predecessor lists — only the conservative consistency mode consults
    /// them, so they are only computed in that mode.
    preds: Vec<Vec<lsra_ir::BlockId>>,
    /// The register a temporary last occupied before being displaced while
    /// inside one of its lifetime holes (the binpacking model's "another
    /// temporary fits inside the hole", §2.1-§2.2). Used to restore the
    /// original occupant when the hole ends at a block boundary.
    last_reg: Vec<Option<usize>>,
    /// Top boundary point of the block currently being scanned.
    cur_top: Point,
    /// Per register: the displaced hole owner expected to reclaim it when
    /// its hole ends. Successive fillers must fit before the owner's
    /// return, even after earlier fillers die (the container keeps its
    /// register around every filler, §2.1).
    pending_owner: Vec<Option<Temp>>,
    /// Per-block live-in staging buffer (reused across blocks).
    live_in: Vec<Temp>,
    /// `LSRA_DEBUG` sampled once per function: `env::var_os` walks the
    /// whole process environment, far too slow to query per instruction.
    debug: bool,
    /// Precolored-blocked segment starts over all registers, sorted by
    /// `(start, register)`; `sweep` consumes them through `event_cur` so the
    /// per-instruction cost is one bounds-checked compare instead of a walk
    /// over the register file.
    blocked_events: Vec<(Point, u32)>,
    event_cur: usize,
    /// Memo for [`Scanner::reg_unblocked_until`]: `(lo, hi, answer)` — the
    /// answer holds for every query point in `[lo, hi]`. Scan points are
    /// monotonic per register and the blocked segments immutable, so the
    /// cache is exact; it spares the CSR row fetch and cursor walk that
    /// `try_alloc` otherwise repeats for all registers of a class on every
    /// fresh definition.
    unblocked_cache: Vec<(Point, Point, Option<Point>)>,
    /// Same shape of memo for [`Scanner::temp_live_at`], per temporary.
    live_cache: Vec<(Point, Point, bool)>,
    /// Candidate bitmask for [`Scanner::try_alloc`]'s hole sweep, one bit
    /// per dense register index. A cleared bit is a *proof* that
    /// [`Scanner::reg_hole`] returns `None` for the register until the
    /// matching [`Scanner::hole_expiry`] entry fires: no pending owner and
    /// an occupant live through the recorded segment end. A set bit
    /// promises nothing — the sweep still probes it. Bits are cleared by
    /// the sweep itself when the proof is found and re-set by `bind` /
    /// `evict` (the only occupancy writers) and by expiry, so a fully
    /// packed register file costs one word read per definition instead of
    /// a hole query per register.
    free_candidates: Vec<u64>,
    /// Monotone "has history" bitmask, one bit per dense register index. A
    /// clear bit is a *proof* that [`Scanner::reg_hole`] returns the trivial
    /// hole `(INF, INF)`: the register has no precolored blocked segments
    /// (checked once at setup) and has never been bound, so it can have
    /// neither an occupant nor a pending owner. Such registers are all
    /// equivalent to the sweep — under the smallest-sufficient-hole rule
    /// only the lowest-indexed one can ever win — so `try_alloc` probes only
    /// `free_candidates & interesting` individually and folds the whole
    /// virgin remainder in as one constant-time candidate. Bits are set by
    /// `bind` and never cleared (an evicted register keeps its bit: the
    /// over-approximation only costs a probe).
    interesting: Vec<u64>,
    /// Min-heap of `(segment_end, register)` re-admission events for the
    /// cleared bits of `free_candidates`. Stale entries (the register was
    /// re-admitted early by `bind`/`evict`) only cost a redundant re-set.
    hole_expiry: std::collections::BinaryHeap<std::cmp::Reverse<(Point, u32)>>,
    /// Arena the working vectors were taken from; `run` hands them back so
    /// the next function reuses their capacity.
    scratch: &'a mut AllocScratch,
    /// Decision-event consumer; every emission is gated on
    /// [`TraceSink::enabled`], so the default disabled sink costs one
    /// branch per potential event and builds no payloads.
    sink: &'a mut dyn TraceSink,
    out: ScanOutput,
}

const INF: Point = Point(u32::MAX);

impl<'a> Scanner<'a> {
    // The scan borrows its whole context individually on purpose: bundling
    // these into a struct would only move the argument list one level up.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        f: &'a mut Function,
        spec: &'a MachineSpec,
        live: &'a Liveness,
        lt: &'a Lifetimes,
        cfg: BinpackConfig,
        stats: &'a mut AllocStats,
        scratch: &'a mut AllocScratch,
        sink: &'a mut dyn TraceSink,
    ) -> Self {
        let ni = spec.num_regs(RegClass::Int) as usize;
        let nregs = spec.total_regs();
        let nt = f.num_temps();
        let nb = f.num_blocks();
        let ng = live.num_globals();
        let preds = if cfg.consistency == ConsistencyMode::Conservative {
            f.compute_preds()
        } else {
            Vec::new()
        };
        // Take the working vectors out of the scratch arena, sized for this
        // function (`reset` keeps capacity); `run` hands them back.
        let mut occupant = std::mem::take(&mut scratch.occupant);
        let mut loc = std::mem::take(&mut scratch.loc);
        let mut consistent = std::mem::take(&mut scratch.consistent);
        let mut wrote_local = std::mem::take(&mut scratch.wrote_local);
        let mut used_local = std::mem::take(&mut scratch.used_local);
        let mut seg_cur = std::mem::take(&mut scratch.seg_cur);
        let mut ref_cur = std::mem::take(&mut scratch.ref_cur);
        let mut blk_cur = std::mem::take(&mut scratch.blk_cur);
        let mut last_reg = std::mem::take(&mut scratch.last_reg);
        let mut pending_owner = std::mem::take(&mut scratch.pending_owner);
        let mut unblocked_cache = std::mem::take(&mut scratch.unblocked_cache);
        let mut live_cache = std::mem::take(&mut scratch.live_cache);
        let mut free_candidates = std::mem::take(&mut scratch.free_candidates);
        let mut interesting = std::mem::take(&mut scratch.interesting);
        let mut hole_expiry = std::mem::take(&mut scratch.hole_expiry);
        reset(&mut free_candidates, nregs.div_ceil(64), u64::MAX);
        reset(&mut interesting, nregs.div_ceil(64), 0);
        hole_expiry.clear();
        reset(&mut occupant, nregs, None);
        reset(&mut loc, nt, Loc::None);
        reset(&mut consistent, nt, false);
        wrote_local.reset(nt);
        used_local.reset(nt);
        reset(&mut seg_cur, nt, 0);
        reset(&mut ref_cur, nt, 0);
        reset(&mut blk_cur, nregs, 0);
        reset(&mut last_reg, nt, None);
        reset(&mut pending_owner, nregs, None);
        // `lo > hi` is the always-miss sentinel.
        reset(&mut unblocked_cache, nregs, (Point(1), Point(0), None));
        reset(&mut live_cache, nt, (Point(1), Point(0), false));
        let live_in = std::mem::take(&mut scratch.live_in);
        let mut blocked_events = std::mem::take(&mut scratch.blocked_events);
        blocked_events.clear();
        for d in 0..nregs {
            let p = if d < ni { PhysReg::int(d as u8) } else { PhysReg::float((d - ni) as u8) };
            if !lt.blocked(p).is_empty() {
                // A precolored block means the register's hole is never the
                // trivial (INF, INF): it must always be probed.
                interesting[d / 64] |= 1u64 << (d % 64);
            }
            for s in lt.blocked(p) {
                blocked_events.push((s.start, d as u32));
            }
        }
        blocked_events.sort_unstable();
        let mut top_map = std::mem::take(&mut scratch.top_map);
        let mut bottom_map = std::mem::take(&mut scratch.bottom_map);
        top_map.clear();
        bottom_map.clear();
        let consistent_bottom = take_bitsets(&mut scratch.consistent_bottom, nb, ng);
        let used_consistency = take_bitsets(&mut scratch.used_consistency, nb, ng);
        let wrote_tr = take_bitsets(&mut scratch.wrote_tr, nb, ng);
        Scanner {
            f,
            live,
            lt,
            cfg,
            stats,
            ni,
            occupant,
            loc,
            consistent,
            wrote_local,
            used_local,
            seg_cur,
            ref_cur,
            blk_cur,
            preds,
            last_reg,
            cur_top: Point(0),
            pending_owner,
            live_in,
            debug: std::env::var_os("LSRA_DEBUG").is_some(),
            blocked_events,
            event_cur: 0,
            unblocked_cache,
            live_cache,
            free_candidates,
            interesting,
            hole_expiry,
            scratch,
            sink,
            out: ScanOutput { top_map, bottom_map, consistent_bottom, used_consistency, wrote_tr },
        }
    }

    #[inline]
    fn dense(&self, p: PhysReg) -> usize {
        match p.class {
            RegClass::Int => p.index as usize,
            RegClass::Float => self.ni + p.index as usize,
        }
    }

    #[inline]
    fn phys(&self, d: usize) -> PhysReg {
        if d < self.ni {
            PhysReg::int(d as u8)
        } else {
            PhysReg::float((d - self.ni) as u8)
        }
    }

    fn class_range(&self, class: RegClass) -> std::ops::Range<usize> {
        match class {
            RegClass::Int => 0..self.ni,
            RegClass::Float => self.ni..self.occupant.len(),
        }
    }

    /// Advances the segment cursor of `t` to the first segment ending at or
    /// after `p`.
    fn advance_segs(&mut self, t: Temp, p: Point) {
        let segs = self.lt.segments(t);
        let c = &mut self.seg_cur[t.index()];
        while *c < segs.len() && segs[*c].end < p {
            *c += 1;
        }
    }

    /// True if `t` carries a live value at `p`.
    fn temp_live_at(&mut self, t: Temp, p: Point) -> bool {
        let (lo, hi, ans) = self.live_cache[t.index()];
        if lo <= p && p <= hi {
            return ans;
        }
        self.advance_segs(t, p);
        let segs = self.lt.segments(t);
        // The answer is constant until `p` crosses the covering segment's
        // end (live) or the next segment's start (in a hole); queries per
        // temporary are monotonic, so the interval can be cached.
        let (ans, hi) = match segs.get(self.seg_cur[t.index()]) {
            Some(s) if s.start <= p => (true, s.end),
            Some(s) => (false, Point(s.start.0 - 1)),
            None => (false, INF),
        };
        self.live_cache[t.index()] = (p, hi, ans);
        ans
    }

    /// The first point at or after `p` where `t` is live (`INF` if never).
    fn next_live_start(&mut self, t: Temp, p: Point) -> Point {
        self.advance_segs(t, p);
        let segs = self.lt.segments(t);
        match segs.get(self.seg_cur[t.index()]) {
            Some(s) => s.start.max(p),
            None => INF,
        }
    }

    /// The end of `t`'s whole lifetime (`INF` if `t` has no references —
    /// which cannot happen for a temp the scan is asked about).
    fn lifetime_end(&self, t: Temp) -> Point {
        self.lt.lifetime(t).map_or(INF, |s| s.end)
    }

    /// The next reference of `t` at or after `p`.
    fn next_ref(&mut self, t: Temp, p: Point) -> Option<lsra_analysis::RefPoint> {
        let refs = self.lt.refs(t);
        let c = &mut self.ref_cur[t.index()];
        while *c < refs.len() && refs[*c].point < p {
            *c += 1;
        }
        refs.get(*c).copied()
    }

    /// The start of the next precolored-blocked segment of register `d` at
    /// or after `p`, or `None` if `d` is blocked *at* `p`.
    fn reg_unblocked_until(&mut self, d: usize, p: Point) -> Option<Point> {
        let (lo, hi, ans) = self.unblocked_cache[d];
        if lo <= p && p <= hi {
            return ans;
        }
        let blocked = self.lt.blocked(self.phys(d));
        let c = &mut self.blk_cur[d];
        while *c < blocked.len() && blocked[*c].end < p {
            *c += 1;
        }
        let (ans, hi) = match blocked.get(*c) {
            Some(s) if s.start <= p => (None, s.end),
            Some(s) => (Some(s.start), Point(s.start.0 - 1)),
            None => (Some(INF), INF),
        };
        self.unblocked_cache[d] = (p, hi, ans);
        ans
    }

    /// How long register `d` is free starting at `p` (`None` if not free at
    /// `p`: blocked by a precolored value or occupied by a live temporary).
    fn reg_free_until(&mut self, d: usize, p: Point, for_temp: Temp) -> Option<Point> {
        self.reg_hole(d, p, for_temp).map(|(free_until, _)| free_until)
    }

    /// The hole of register `d` at `p`: `(free_until, occupant_return)`.
    /// `free_until` is bounded by both the next precolored block and the
    /// current occupant's next live segment; `occupant_return` is the
    /// occupant bound alone (`INF` when the register is empty). `None` if
    /// the register is not free at `p`.
    ///
    /// The distinction matters for the §2.5 insufficiently-large-hole rule:
    /// a temporary may be packed into a *register* hole that is too small
    /// (it is evicted when the convention reclaims the register), but a
    /// *lifetime* hole of another temporary only admits values that fit
    /// entirely inside it (§2.1) — otherwise the filler would steal the
    /// container's register.
    fn reg_hole(&mut self, d: usize, p: Point, for_temp: Temp) -> Option<(Point, Point)> {
        // Fast path for the common case under pressure: no displaced owner
        // waiting and a live occupant — the register is simply taken,
        // whatever the blocked segments say. (With no pending owner there
        // is no lapse bookkeeping to perform, so skipping the full walk
        // has no observable effect.)
        if self.pending_owner[d].is_none() {
            if let Some(u) = self.occupant[d] {
                if self.temp_live_at(u, p) {
                    return None;
                }
            }
        }
        let limit = self.reg_unblocked_until(d, p)?;
        let mut reclaim = INF;
        // A displaced hole owner still waiting for this register bounds the
        // hole by its return point (unless the requester is that owner).
        if let Some(w) = self.pending_owner[d] {
            if w != for_temp
                && self.loc[w.index()] == Loc::None
                && self.last_reg[w.index()] == Some(d)
            {
                let ret = self.next_live_start(w, p);
                if ret > p {
                    reclaim = ret;
                } else {
                    // The owner's segment already began without a reclaim
                    // (it was live out of a block on another path); its
                    // claim lapses — pessimization or a second-chance
                    // reload will rehome it.
                    self.pending_owner[d] = None;
                }
            } else if w != for_temp {
                self.pending_owner[d] = None;
            }
        }
        match self.occupant[d] {
            Some(u) => {
                if self.temp_live_at(u, p) {
                    None
                } else {
                    let ret = reclaim.min(self.next_live_start(u, p));
                    Some((limit.min(ret), ret))
                }
            }
            None => Some((limit.min(reclaim), reclaim)),
        }
    }

    /// Binds `t` to register `d`, displacing any holed-out previous
    /// occupant (which remembers the register so it can be restored when
    /// its hole ends, §2.1-§2.2).
    fn bind(&mut self, t: Temp, d: usize) {
        // Occupancy (and possibly the pending owner) changes: any standing
        // not-free proof for this register is void, and the register now
        // has history — it must be probed individually from here on.
        self.free_candidates[d / 64] |= 1u64 << (d % 64);
        self.interesting[d / 64] |= 1u64 << (d % 64);
        if let Some(o) = self.occupant[d] {
            if o != t && self.loc[o.index()] == Loc::Reg(self.phys(d)) {
                if self.debug {
                    eprintln!("DISPLACE {o} from {} by {t}", self.phys(d));
                }
                self.loc[o.index()] = Loc::None;
                self.last_reg[o.index()] = Some(d);
                // The displaced owner becomes (or stays) the register's
                // pending reclaimer; keep the earlier-returning owner if
                // one is already waiting.
                let keep_existing = match self.pending_owner[d] {
                    Some(w)
                        if w != o
                            && self.loc[w.index()] == Loc::None
                            && self.last_reg[w.index()] == Some(d) =>
                    {
                        let wr = self.next_live_start(w, Point(0));
                        let or = self.next_live_start(o, Point(0));
                        wr <= or
                    }
                    _ => false,
                };
                if !keep_existing {
                    self.pending_owner[d] = Some(o);
                }
            }
        }
        self.occupant[d] = Some(t);
        self.loc[t.index()] = Loc::Reg(self.phys(d));
        self.last_reg[t.index()] = None;
        if self.pending_owner[d] == Some(t) {
            self.pending_owner[d] = None;
        }
    }

    /// The paper's allocation heuristic: among registers free at `at` whose
    /// hole lasts at least until `need_end`, prefer the *smallest hole* that
    /// covers `t`'s remaining lifetime; failing that (and if configured) the
    /// *largest insufficient* hole (§2.5). Within the winning tier, the
    /// register `t` previously occupied is preferred — the affinity that
    /// GEM's "history preferencing" provides (§4) and that keeps the
    /// per-path register choices of the linear scan aligned at CFG joins.
    fn try_alloc(
        &mut self,
        t: Temp,
        at: Point,
        need_end: Point,
        exclude: &[usize],
        force_insufficient: bool,
    ) -> Option<usize> {
        let class = self.f.temp_class(t);
        let want_end = self.lifetime_end(t);
        // Three preference tiers:
        //   1. sufficient holes (smallest first, §2.2);
        //   2. insufficiently large *register* holes (largest first, §2.5)
        //      — the occupant bound still covers the whole lifetime, only a
        //      convention cuts the hole short;
        //   3. insufficiently large *temporary* holes — allowed as a last
        //      resort (the displaced owner pays resolution traffic), since
        //      refusing them can make high pressure unsatisfiable.
        // Within the winning tier, the previously occupied register wins.
        let mut best: [Option<(Point, usize)>; 3] = [None; 3];
        let mut prev_tier: Option<(usize, Point)> = None;
        let prev = self.last_reg[t.index()].filter(|d| !exclude.contains(d));
        // Re-admit registers whose occupancy proof expired: the occupant's
        // covering segment ended before `at`, so the register may be free.
        while let Some(&std::cmp::Reverse((e, d))) = self.hole_expiry.peek() {
            if e >= at {
                break;
            }
            self.hole_expiry.pop();
            self.free_candidates[d as usize / 64] |= 1u64 << (d % 64);
        }
        let range = self.class_range(class);
        // Only registers *with history* (see `interesting`) are probed
        // individually: a clear bit proves the trivial hole (INF, INF), and
        // under the tier rules every virgin register lands in tier 0 with
        // the largest possible hole — so the whole virgin remainder of the
        // class collapses into one candidate, folded in after the loop. The
        // sweep is thereby O(registers ever bound), not O(registers): a
        // wide machine running a narrow function never scans its idle tail.
        let mut d = range.start;
        while d < range.end {
            let word = (self.free_candidates[d / 64] & self.interesting[d / 64]) >> (d % 64);
            if word == 0 {
                d = (d / 64 + 1) * 64;
                continue;
            }
            d += word.trailing_zeros() as usize;
            if d >= range.end {
                break;
            }
            let probe = d;
            d += 1;
            let d = probe;
            if exclude.contains(&d) {
                continue;
            }
            let Some((free_until, occupant_return)) = self.reg_hole(d, at, t) else {
                // Not free. When the reason is the provable stable kind —
                // no pending owner, a live occupant — drop the register
                // from the candidate mask until the occupant's covering
                // segment ends; `bind`/`evict` re-admit it early if the
                // occupancy changes first.
                if self.pending_owner[d].is_none() {
                    if let Some(u) = self.occupant[d] {
                        self.advance_segs(u, at);
                        let seg = self.lt.segments(u).get(self.seg_cur[u.index()]).copied();
                        if let Some(s) = seg {
                            if s.start <= at && at <= s.end {
                                self.free_candidates[d / 64] &= !(1u64 << (d % 64));
                                self.hole_expiry.push(std::cmp::Reverse((s.end, d as u32)));
                            }
                        }
                    }
                }
                continue;
            };
            if free_until < need_end {
                continue;
            }
            let tier = if free_until >= want_end {
                0
            } else if occupant_return >= want_end {
                1
            } else {
                2
            };
            let better = match best[tier] {
                None => true,
                // Tier 0: smallest hole; tiers 1-2: largest hole.
                Some((e, _)) => {
                    if tier == 0 {
                        free_until < e
                    } else {
                        free_until > e
                    }
                }
            };
            if better {
                best[tier] = Some((free_until, d));
            }
            if prev == Some(d) {
                prev_tier = Some((tier, free_until));
            }
        }
        // Fold the virgin remainder in as one candidate: the lowest-indexed
        // non-excluded register with no history. Its hole is (INF, INF) —
        // always sufficient, so tier 0 — and the full sweep resolves tier-0
        // ties (equal free_until) to the lowest index, which is exactly the
        // lexicographic comparison below.
        let mut v = range.start;
        while v < range.end {
            let word = !self.interesting[v / 64] >> (v % 64);
            if word == 0 {
                v = (v / 64 + 1) * 64;
                continue;
            }
            v += word.trailing_zeros() as usize;
            if v >= range.end || !exclude.contains(&v) {
                break;
            }
            v += 1;
        }
        if v < range.end {
            debug_assert_eq!(self.reg_hole(v, at, t), Some((INF, INF)));
            let better = match best[0] {
                None => true,
                Some((e, b)) => e == INF && v < b,
            };
            if better {
                best[0] = Some((INF, v));
            }
            if let Some(p) = prev {
                if self.interesting[p / 64] & (1u64 << (p % 64)) == 0 {
                    prev_tier = Some((0, INF));
                }
            }
        }
        let tiers: &[usize] =
            if self.cfg.allow_insufficient_holes || force_insufficient { &[0, 1, 2] } else { &[0] };
        // (register, tier, free_until) of the winner.
        let mut choice: Option<(usize, usize, Point)> = None;
        for &tier in tiers {
            if let Some((e, d)) = best[tier] {
                choice = match (prev, prev_tier) {
                    (Some(p), Some((pt, pf))) if pt == tier => Some((p, tier, pf)),
                    _ => Some((d, tier, e)),
                };
                break;
            }
        }
        choice.map(|(d, tier, free_until)| {
            if self.sink.enabled() {
                const TIERS: [FitTier; 3] = [
                    FitTier::Sufficient,
                    FitTier::InsufficientRegHole,
                    FitTier::InsufficientTempHole,
                ];
                let ev = TraceEvent::Assign {
                    temp: t,
                    reg: self.phys(d),
                    at,
                    tier: TIERS[tier],
                    free_until,
                    lifetime_end: want_end,
                };
                self.sink.event(&ev);
            }
            self.bind(t, d);
            d
        })
    }

    /// Ensures `t` has a spill slot.
    fn ensure_slot(&mut self, t: Temp) {
        if self.f.spill_slots[t.index()].is_none() {
            self.stats.spilled_temps += 1;
        }
        self.f.slot_for(t);
    }

    /// Evicts the occupant of `d`, inserting a spill store (or an early-
    /// second-chance move) into `pre` when the value would otherwise be
    /// lost. `convention` marks evictions forced by a register hole expiry
    /// (call sites and other precolored uses, §2.5).
    fn evict(
        &mut self,
        d: usize,
        at: Point,
        pre: &mut Vec<Ins>,
        convention: bool,
        pinned: &[usize],
    ) {
        let Some(u) = self.occupant[d] else { return };
        self.occupant[d] = None;
        // The register is vacated: void any standing not-free proof.
        self.free_candidates[d / 64] |= 1u64 << (d % 64);
        if self.loc[u.index()] != Loc::Reg(self.phys(d)) {
            return; // stale occupancy of a dead or displaced temp
        }
        self.stats.evictions += 1;
        self.last_reg[u.index()] = Some(d);
        let live = self.temp_live_at(u, at) && !self.segment_ends_at_block_top(u, at);
        if !live {
            // Evicted during one of u's lifetime holes (or at a boundary
            // where its linear segment stems purely from another edge of
            // the linear predecessor): the next reference overwrites the
            // value — or the true predecessors' bottom maps carry it — so
            // no store is needed (§2.3).
            self.loc[u.index()] = Loc::None;
            if self.sink.enabled() {
                let ev = TraceEvent::Evict {
                    reg: self.phys(d),
                    temp: u,
                    at,
                    convention,
                    action: EvictAction::HoleNoStore,
                };
                self.sink.event(&ev);
            }
            return;
        }
        let needs_store = if self.cfg.store_suppression && self.consistent[u.index()] {
            // Register and memory home agree; suppress the store. If that
            // knowledge was not established in this block, record the
            // reliance for the USED_C dataflow (§2.4).
            if !self.wrote_local.contains(u.index()) {
                self.used_local.insert(u.index());
            }
            self.stats.stores_suppressed += 1;
            false
        } else {
            true
        };
        if needs_store && convention && self.cfg.early_second_chance {
            // Early second chance: prefer a move to an empty register whose
            // hole covers u's remaining lifetime over a store now plus a
            // load later (§2.5).
            let want_end = self.lifetime_end(u);
            let class = self.f.temp_class(u);
            let mut found: Option<(Point, usize)> = None;
            for d2 in self.class_range(class) {
                if d2 == d || pinned.contains(&d2) {
                    // `pinned` holds the registers feeding the current
                    // instruction: a move emitted before it must not
                    // overwrite them, even when their values die here.
                    continue;
                }
                // "Only if we can find an empty register rs": empty means
                // holding no live value — the hole query returns None for a
                // live occupant and bounds the hole by a returning one.
                let Some(free_until) = self.reg_free_until(d2, at, u) else { continue };
                if free_until >= want_end && found.is_none_or(|(e, _)| free_until < e) {
                    found = Some((free_until, d2));
                }
            }
            if let Some((_, d2)) = found {
                pre.push(Ins::tagged(
                    Inst::Mov { dst: Reg::Phys(self.phys(d2)), src: Reg::Phys(self.phys(d)) },
                    SpillTag::EvictMove,
                ));
                self.stats.record_insert(SpillTag::EvictMove);
                if self.sink.enabled() {
                    let ev = TraceEvent::Evict {
                        reg: self.phys(d),
                        temp: u,
                        at,
                        convention,
                        action: EvictAction::EarlyMove(self.phys(d2)),
                    };
                    self.sink.event(&ev);
                }
                self.bind(u, d2);
                return;
            }
        }
        if needs_store {
            self.ensure_slot(u);
            pre.push(Ins::tagged(
                Inst::SpillStore { src: Reg::Phys(self.phys(d)), temp: u },
                SpillTag::EvictStore,
            ));
            self.stats.record_insert(SpillTag::EvictStore);
        }
        if self.sink.enabled() {
            let action =
                if needs_store { EvictAction::Stored } else { EvictAction::StoreSuppressed };
            let ev = TraceEvent::Evict { reg: self.phys(d), temp: u, at, convention, action };
            self.sink.event(&ev);
        }
        self.loc[u.index()] = Loc::Mem;
    }

    /// True when `u`'s covering segment ends exactly at the current block's
    /// top boundary: the liveness behind it belongs to the linear
    /// predecessor's *other* successors, so within this block `u` carries
    /// no value (it is not live-in here — a live-in temp's segment extends
    /// past the boundary). Storing its register here would overwrite its
    /// memory home with whatever the real incoming edge left in the
    /// register.
    fn segment_ends_at_block_top(&mut self, u: Temp, at: Point) -> bool {
        if at != self.cur_top {
            return false;
        }
        self.advance_segs(u, at);
        matches!(self.lt.segments(u).get(self.seg_cur[u.index()]), Some(s) if s.end == self.cur_top)
    }

    /// Picks an eviction victim for `t`'s class: the occupant with the
    /// lowest priority, where priority is the loop-depth weight of the next
    /// reference divided by its distance (§2.3). Occupants referenced at
    /// the current instruction (`guard`) and registers blocked before
    /// `need_end` are exempt.
    fn evict_for(
        &mut self,
        t: Temp,
        at: Point,
        need_end: Point,
        guard: Point,
        exclude: &[usize],
        pre: &mut Vec<Ins>,
    ) -> Option<usize> {
        let class = self.f.temp_class(t);
        let mut best: Option<(f64, usize)> = None;
        // Candidate set for the spill-choice trace (losing heuristic
        // distances included); only built when a sink is listening.
        let mut candidates: Vec<SpillCandidate> = Vec::new();
        let tracing = self.sink.enabled();
        for d in self.class_range(class) {
            if exclude.contains(&d) {
                continue;
            }
            let Some(u) = self.occupant[d] else { continue };
            if u == t || !self.temp_live_at(u, at) {
                continue; // free or holed registers are handled by try_alloc
            }
            // The register must be usable through the requested interval.
            match self.reg_unblocked_until(d, at) {
                Some(limit) if limit >= need_end => {}
                _ => continue,
            }
            let (priority, next_ref, weight) = match self.next_ref(u, at) {
                Some(r) => {
                    if r.point <= guard {
                        continue; // operand of the current instruction
                    }
                    (r.weight / ((r.point.0 - at.0) as f64 + 1.0), Some(r.point), r.weight)
                }
                // Live with no later linear reference (value flows around a
                // back edge): weight 1 at lifetime-end distance.
                None => {
                    (1.0 / ((self.lifetime_end(u).0.saturating_sub(at.0)) as f64 + 1.0), None, 1.0)
                }
            };
            if tracing {
                candidates.push(SpillCandidate {
                    reg: self.phys(d),
                    occupant: u,
                    next_ref,
                    weight,
                    priority,
                });
            }
            if best.is_none_or(|(p, _)| priority < p) {
                best = Some((priority, d));
            }
        }
        if tracing {
            let ev = TraceEvent::SpillChoice {
                for_temp: t,
                at,
                candidates,
                chosen: best.map(|(_, d)| self.phys(d)),
            };
            self.sink.event(&ev);
        }
        let (_, d) = best?;
        self.evict(d, at, pre, false, exclude);
        self.bind(t, d);
        Some(d)
    }

    /// Allocates a register for `t`, evicting if necessary.
    fn alloc(
        &mut self,
        t: Temp,
        at: Point,
        need_end: Point,
        guard: Point,
        exclude: &[usize],
        pre: &mut Vec<Ins>,
    ) -> PhysReg {
        let d = self
            .try_alloc(t, at, need_end, exclude, false)
            .or_else(|| self.evict_for(t, at, need_end, guard, exclude, pre))
            // Even with insufficiently-large holes disabled by policy, a
            // reference must get *some* register: fall back to them rather
            // than fail (the temporary is simply evicted again at the hole's
            // end).
            .or_else(|| self.try_alloc(t, at, need_end, exclude, true))
            .unwrap_or_else(|| {
                let class = self.f.temp_class(t);
                let mut detail = String::new();
                for d in self.class_range(class) {
                    let occ = self.occupant[d];
                    let occ_live = occ.map(|u| self.temp_live_at(u, at));
                    let occ_next_ref = occ.and_then(|u| self.next_ref(u, at)).map(|r| r.point);
                    let occ_loc = occ.map(|u| self.loc[u.index()]);
                    let hole = self.reg_hole(d, at, t);
                    detail.push_str(&format!(
                        "\n  {}: occupant={:?} (live={:?} next_ref={:?} loc={:?}) pending={:?} blocked@cursor={:?} hole={:?}",
                        self.phys(d),
                        occ,
                        occ_live,
                        occ_next_ref,
                        occ_loc,
                        self.pending_owner[d],
                        self.lt.blocked(self.phys(d)).get(self.blk_cur[d]),
                        hole,
                    ));
                }
                panic!(
                    "register pressure unsatisfiable for {t} at {at} (need_end {need_end}, \
                     guard {guard}, exclude {exclude:?}): every {class} register is pinned by \
                     the current instruction{detail}"
                )
            });
        self.phys(d)
    }

    /// Convention sweep: before each instruction, evict temporaries from
    /// registers whose precolored-blocked segment begins by `threshold`
    /// ("when a register's lifetime hole expires, ... evict the temporary",
    /// §2.5).
    fn sweep(&mut self, threshold: Point, pre: &mut Vec<Ins>, pinned: &[usize]) {
        // The common instruction has no expiring register hole: one compare
        // against the next blocked-segment start and the sweep is done,
        // instead of a walk over the whole register file.
        if self.event_cur >= self.blocked_events.len()
            || self.blocked_events[self.event_cur].0 > threshold
        {
            return;
        }
        let mut crossing = std::mem::take(&mut self.scratch.sweep_buf);
        crossing.clear();
        while self.event_cur < self.blocked_events.len()
            && self.blocked_events[self.event_cur].0 <= threshold
        {
            crossing.push(self.blocked_events[self.event_cur].1);
            self.event_cur += 1;
        }
        // Evictions must land in register order — the order the old
        // register-file walk emitted them in. Events are sorted by (start,
        // register), so a multi-start crossing can arrive out of register
        // order.
        crossing.sort_unstable();
        for &d in &crossing {
            let d = d as usize;
            if self.occupant[d].is_none() {
                continue;
            }
            let blocked = self.lt.blocked(self.phys(d));
            let mut c = self.blk_cur[d];
            // Peek without disturbing the cursor past live segments.
            while c < blocked.len() && blocked[c].end < threshold {
                c += 1;
            }
            self.blk_cur[d] = c;
            if let Some(s) = blocked.get(c) {
                if s.start <= threshold {
                    self.evict(d, threshold, pre, true, pinned);
                }
            }
        }
        self.scratch.sweep_buf = crossing;
    }

    /// Processes a use of temporary `t` at instruction `gi`: returns the
    /// register to rewrite the operand to, inserting a second-chance reload
    /// if the value is in memory (§2.3).
    fn process_use(
        &mut self,
        t: Temp,
        gi: u32,
        exclude: &mut Vec<usize>,
        pre: &mut Vec<Ins>,
    ) -> PhysReg {
        let rp = Point::read(gi);
        match self.loc[t.index()] {
            Loc::Reg(r) => {
                debug_assert_eq!(self.occupant[self.dense(r)], Some(t));
                exclude.push(self.dense(r));
                r
            }
            Loc::Mem | Loc::None => {
                // Second chance: reload into a register and let it stay
                // there until evicted.
                let at = Point::before(gi);
                let r = self.alloc(t, at, rp, rp, exclude, pre);
                self.ensure_slot(t);
                pre.push(Ins::tagged(
                    Inst::SpillLoad { dst: Reg::Phys(r), temp: t },
                    SpillTag::EvictLoad,
                ));
                self.stats.record_insert(SpillTag::EvictLoad);
                self.stats.lifetime_splits += 1;
                if self.sink.enabled() {
                    self.sink.event(&TraceEvent::Reload { temp: t, reg: r, at: rp });
                }
                // A reload makes register and memory home consistent.
                self.consistent[t.index()] = true;
                self.wrote_local.insert(t.index()); // the reload wrote r
                exclude.push(self.dense(r));
                r
            }
        }
    }

    /// Processes the definition of `t` at instruction `gi`.
    fn process_def(
        &mut self,
        t: Temp,
        gi: u32,
        exclude: &mut Vec<usize>,
        pre: &mut Vec<Ins>,
    ) -> PhysReg {
        let wp = Point::write(gi);
        let r = match self.loc[t.index()] {
            Loc::Reg(r) => {
                debug_assert_eq!(self.occupant[self.dense(r)], Some(t));
                r
            }
            Loc::Mem | Loc::None => {
                // "If the next reference to a spilled temporary is a write,
                // we allocate [a register] and postpone the store" (§2.3).
                let rp = Point::read(gi);
                let r = self.alloc(t, wp, wp, rp, exclude, pre);
                if self.sink.enabled() {
                    self.sink.event(&TraceEvent::DefRebind { temp: t, reg: r, at: wp });
                }
                r
            }
        };
        self.consistent[t.index()] = false; // register now ahead of memory
        self.wrote_local.insert(t.index());
        exclude.push(self.dense(r));
        r
    }

    /// The §2.5 move-coalescing check: when the just-rewritten source of a
    /// move dies at the move and its register's hole covers the
    /// destination's whole lifetime, bind the destination to the source
    /// register (the peephole pass later deletes the identity move).
    fn try_coalesce_move(&mut self, dst: Temp, src_phys: PhysReg, gi: u32) -> Option<PhysReg> {
        if !self.cfg.move_coalescing {
            return None;
        }
        let wp = Point::write(gi);
        let outcome = self.coalesce_outcome(dst, src_phys, wp);
        if self.sink.enabled() {
            let ev = TraceEvent::CoalesceCheck { dst, src: src_phys, at: wp, outcome };
            self.sink.event(&ev);
        }
        if outcome != CoalesceOutcome::Coalesced {
            return None;
        }
        self.bind(dst, self.dense(src_phys));
        self.consistent[dst.index()] = false;
        self.wrote_local.insert(dst.index());
        self.stats.moves_coalesced += 1;
        Some(src_phys)
    }

    /// Classifies the §2.5 move-coalescing check without committing it.
    fn coalesce_outcome(&mut self, dst: Temp, src_phys: PhysReg, wp: Point) -> CoalesceOutcome {
        if self.loc[dst.index()] == Loc::Reg(src_phys) {
            return CoalesceOutcome::AlreadyThere; // normal path handles it
        }
        if !matches!(self.loc[dst.index()], Loc::None) {
            return CoalesceOutcome::NotFresh; // only coalesce a fresh destination
        }
        if self.f.temp_class(dst) != src_phys.class {
            return CoalesceOutcome::ClassMismatch;
        }
        let d = self.dense(src_phys);
        match self.reg_free_until(d, wp, dst) {
            Some(free_until) if free_until >= self.lifetime_end(dst) => CoalesceOutcome::Coalesced,
            _ => CoalesceOutcome::HoleTooSmall,
        }
    }

    /// Debug-only invariant: a temporary believing it owns a register must
    /// actually be that register's occupant.
    fn check_invariants(&self, b: lsra_ir::BlockId, gi: u32) {
        for t in 0..self.loc.len() {
            if let Loc::Reg(r) = self.loc[t] {
                let d = self.dense(r);
                if self.occupant[d] != Some(Temp(t as u32)) {
                    panic!(
                        "INVARIANT: t{t} claims {r} but occupant is {:?} (block {b}, inst {gi}, func {})",
                        self.occupant[d], self.f.name
                    );
                }
            }
        }
    }

    fn block_start(&mut self, b: lsra_ir::BlockId) {
        self.cur_top = self.lt.top(b);
        if self.sink.enabled() {
            self.sink.event(&TraceEvent::BlockTop { block: b, first_gi: self.lt.first_inst(b) });
        }
        self.wrote_local.advance();
        self.used_local.advance();
        if self.cfg.consistency == ConsistencyMode::Conservative {
            // §2.6: meet of the saved ARE_CONSISTENT vectors of all
            // predecessors; an unscanned predecessor clears everything.
            let mut meet = BitSet::new(self.live.num_globals());
            let mut first = true;
            let mut any_unscanned = false;
            for &p in &self.preds[b.index()] {
                if p.index() >= b.index() {
                    any_unscanned = true;
                    break;
                }
                if first {
                    meet.union_with(&self.out.consistent_bottom[p.index()]);
                    first = false;
                } else {
                    meet.intersect_with(&self.out.consistent_bottom[p.index()]);
                }
            }
            if any_unscanned || first {
                meet.clear();
            }
            for g in 0..self.live.num_globals() {
                let t = self.live.temp_of(g);
                self.consistent[t.index()] = meet.contains(g);
            }
        }
        // Restore hole-displaced temporaries: a live-in temporary whose
        // lifetime hole (filled by a shorter lifetime, §2.1-§2.2) ends at
        // this block boundary gets its old register back when that register
        // is free again. This realises the binpacking model's rule that the
        // container keeps its register around the filler's lifetime; the
        // top-of-block map records the restored location and resolution
        // honours it on every incoming edge.
        let top = self.lt.top(b);
        let mut live_in = std::mem::take(&mut self.live_in);
        live_in.clear();
        live_in.extend(self.live.live_in_temps(b));
        for &t in &live_in {
            if self.loc[t.index()] != Loc::None {
                continue;
            }
            if let Some(d) = self.last_reg[t.index()] {
                let seg_end = {
                    self.advance_segs(t, top);
                    let segs = self.lt.segments(t);
                    match segs.get(self.seg_cur[t.index()]) {
                        Some(s) if s.start <= top => s.end,
                        _ => continue,
                    }
                };
                if let Some(free_until) = self.reg_free_until(d, top, t) {
                    if free_until >= seg_end {
                        if self.sink.enabled() {
                            let ev =
                                TraceEvent::HoleRestore { block: b, temp: t, reg: self.phys(d) };
                            self.sink.event(&ev);
                        }
                        self.bind(t, d);
                    }
                }
            }
        }
        // Record the top-of-block locations of live-in temporaries; a
        // live-in temporary with no location yet is pessimistically given
        // its memory home (the linear order reached this block before any
        // definition — resolution will satisfy the assumption, §2.4).
        for &t in &live_in {
            match self.loc[t.index()] {
                Loc::Reg(r) => self.out.top_map.push((t, r)),
                Loc::Mem => {}
                Loc::None => {
                    if self.debug {
                        eprintln!(
                            "PESSIMIZE {t} -> Mem at top of {b} (last_reg={:?})",
                            self.last_reg[t.index()]
                        );
                    }
                    if self.sink.enabled() {
                        self.sink.event(&TraceEvent::Pessimize { block: b, temp: t });
                    }
                    self.loc[t.index()] = Loc::Mem;
                }
            }
        }
        self.out.top_map.open_row_mut().sort_unstable();
        self.out.top_map.finish_row();
        self.live_in = live_in;
    }

    fn block_end(&mut self, b: lsra_ir::BlockId) {
        let bi = b.index();
        for t in self.live.live_out_temps(b) {
            match self.loc[t.index()] {
                Loc::Reg(r) => self.out.bottom_map.push((t, r)),
                Loc::Mem => {}
                Loc::None => {
                    if self.debug {
                        eprintln!(
                            "PESSIMIZE {t} -> Mem at top of {b} (last_reg={:?})",
                            self.last_reg[t.index()]
                        );
                    }
                    self.loc[t.index()] = Loc::Mem;
                }
            }
        }
        self.out.bottom_map.open_row_mut().sort_unstable();
        self.out.bottom_map.finish_row();
        // ARE_CONSISTENT at the block bottom: a temporary in a register
        // with `consistent` set. Walking the register file finds exactly
        // the temporaries with `Loc::Reg` (the occupancy invariant checked
        // by `check_invariants`), so this costs O(registers) per block
        // instead of O(globals).
        for d in 0..self.occupant.len() {
            if let Some(u) = self.occupant[d] {
                if self.loc[u.index()] == Loc::Reg(self.phys(d)) && self.consistent[u.index()] {
                    if let Some(g) = self.live.global_of(u) {
                        self.out.consistent_bottom[bi].insert(g);
                    }
                }
            }
        }
        // The USED_C GEN/KILL sets only need the temporaries actually
        // touched in this block — the epoch sets recorded them.
        for &t in self.used_local.touched() {
            if let Some(g) = self.live.global_of(Temp(t)) {
                self.out.used_consistency[bi].insert(g);
            }
        }
        for &t in self.wrote_local.touched() {
            if let Some(g) = self.live.global_of(Temp(t)) {
                self.out.wrote_tr[bi].insert(g);
            }
        }
    }

    /// Runs the scan over the whole function, rewriting it in place.
    pub(crate) fn run(mut self) -> ScanOutput {
        self.stats.candidates = self.f.num_temps();
        // Per-instruction buffers live in the scratch arena: cleared on
        // every use, allocated (at most) once per module.
        let mut pre = std::mem::take(&mut self.scratch.pre);
        let mut exclude = std::mem::take(&mut self.scratch.exclude);
        let mut use_map = std::mem::take(&mut self.scratch.use_map);
        let mut def_exclude = std::mem::take(&mut self.scratch.def_exclude);
        for b in self.f.block_ids().collect::<Vec<_>>() {
            self.block_start(b);
            let insts = std::mem::take(&mut self.f.block_mut(b).insts);
            let mut new_insts: Vec<Ins> = Vec::with_capacity(insts.len() + 4);
            let first = self.lt.first_inst(b);
            for (k, mut ins) in insts.into_iter().enumerate() {
                let gi = first + k as u32;
                let rp = Point::read(gi);
                let wp = Point::write(gi);
                if self.sink.enabled() {
                    // Register pressure at this program point: registers
                    // currently bound to a value (stale occupancies of
                    // displaced or dead temporaries don't count).
                    let mut int_regs = 0;
                    let mut float_regs = 0;
                    for d in 0..self.occupant.len() {
                        let held = self.occupant[d]
                            .is_some_and(|u| self.loc[u.index()] == Loc::Reg(self.phys(d)));
                        if held {
                            if d < self.ni {
                                int_regs += 1;
                            } else {
                                float_regs += 1;
                            }
                        }
                    }
                    self.sink.event(&TraceEvent::Pressure { gi, int_regs, float_regs });
                }
                pre.clear();
                // Convention sweep for register holes expiring at the read
                // slot (call clobbers, precolored uses).
                self.sweep(rp, &mut pre, &[]);

                // Rewrite uses in one traversal: each distinct temporary is
                // processed on first sight (in operand order, as before) and
                // repeats reuse the mapped register. `exclude` accumulates
                // registers pinned by this instruction.
                exclude.clear();
                use_map.clear();
                ins.inst.for_each_use_mut(|r| {
                    if let Reg::Temp(t) = *r {
                        let p = match use_map.iter().find(|(u, _)| *u == t) {
                            Some(&(_, p)) => p,
                            None => {
                                let p = self.process_use(t, gi, &mut exclude, &mut pre);
                                use_map.push((t, p));
                                p
                            }
                        };
                        *r = Reg::Phys(p);
                    }
                });

                // Convention sweep for holes expiring at the write slot
                // (precolored definitions such as argument-register moves).
                // The registers feeding this instruction are pinned: code
                // emitted before the instruction must not overwrite them.
                self.sweep(wp, &mut pre, &exclude);

                // Rewrite the definition, trying the move-coalescing check
                // first (§2.5).
                let mut def_temp: Option<Temp> = None;
                ins.inst.for_each_def(|r| {
                    if let Reg::Temp(t) = r {
                        def_temp = Some(t);
                    }
                });
                if let Some(t) = def_temp {
                    let coalesced = match ins.inst {
                        Inst::Mov { src: Reg::Phys(p), .. } => self.try_coalesce_move(t, p, gi),
                        _ => None,
                    };
                    // The definition may reuse (or evict) a source register:
                    // sources are read before the write slot, so no register
                    // is excluded here; eviction stores land before the
                    // instruction while the value is still intact.
                    def_exclude.clear();
                    let r = match coalesced {
                        Some(r) => r,
                        None => self.process_def(t, gi, &mut def_exclude, &mut pre),
                    };
                    ins.inst.for_each_def_mut(|d| {
                        if matches!(*d, Reg::Temp(_)) {
                            *d = Reg::Phys(r);
                        }
                    });
                }
                new_insts.append(&mut pre);
                new_insts.push(ins);
                if self.debug {
                    self.check_invariants(b, gi);
                }
            }
            self.f.block_mut(b).insts = new_insts;
            self.block_end(b);
        }
        // Hand every working vector back to the arena for the next function.
        self.scratch.pre = pre;
        self.scratch.exclude = exclude;
        self.scratch.use_map = use_map;
        self.scratch.def_exclude = def_exclude;
        self.scratch.occupant = std::mem::take(&mut self.occupant);
        self.scratch.loc = std::mem::take(&mut self.loc);
        self.scratch.consistent = std::mem::take(&mut self.consistent);
        self.scratch.wrote_local = std::mem::take(&mut self.wrote_local);
        self.scratch.used_local = std::mem::take(&mut self.used_local);
        self.scratch.seg_cur = std::mem::take(&mut self.seg_cur);
        self.scratch.ref_cur = std::mem::take(&mut self.ref_cur);
        self.scratch.blk_cur = std::mem::take(&mut self.blk_cur);
        self.scratch.last_reg = std::mem::take(&mut self.last_reg);
        self.scratch.pending_owner = std::mem::take(&mut self.pending_owner);
        self.scratch.live_in = std::mem::take(&mut self.live_in);
        self.scratch.blocked_events = std::mem::take(&mut self.blocked_events);
        self.scratch.unblocked_cache = std::mem::take(&mut self.unblocked_cache);
        self.scratch.live_cache = std::mem::take(&mut self.live_cache);
        self.scratch.free_candidates = std::mem::take(&mut self.free_candidates);
        self.scratch.interesting = std::mem::take(&mut self.interesting);
        self.scratch.hole_expiry = std::mem::take(&mut self.hole_expiry);
        self.out
    }
}

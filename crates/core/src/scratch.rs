//! Reusable allocation scratch space.
//!
//! Allocating a function needs a dozen per-temp / per-register / per-block
//! working vectors plus several small per-instruction buffers. Allocating a
//! *module* used to pay those heap allocations again for every function;
//! [`AllocScratch`] owns them instead, so `allocate_module` (and any caller
//! that allocates many functions in sequence) clears and reuses the same
//! capacity across functions.
//!
//! # Reuse invariants
//!
//! Everything in here is *dead state between functions*: each consumer
//! (`scan`, `two_pass`, `resolve`) takes the buffers it needs at entry,
//! `clear()`s and `resize()`s them to the current function's dimensions, and
//! hands them back when it returns. No value computed for one function may
//! influence the allocation of the next — the determinism test
//! (`tests/determinism.rs`) checks that a reused scratch produces output
//! byte-identical to a fresh one. When adding a buffer, reset it where it is
//! taken, not where it is returned.

use lsra_ir::{Ins, PhysReg, Temp};

use crate::parallel_move::EdgeOp;
use crate::scan::Loc;

/// Reusable working memory for allocating one function at a time.
///
/// Create one per worker thread and pass it to
/// [`BinpackAllocator::allocate_function_reusing`]
/// (crate::BinpackAllocator::allocate_function_reusing) for every function
/// the worker processes. `Default::default()` is an empty scratch; buffers
/// grow to the largest function seen and stay allocated.
#[derive(Debug, Default)]
pub struct AllocScratch {
    // ---- scan: per-register / per-temp / per-block state ----
    pub(crate) occupant: Vec<Option<Temp>>,
    pub(crate) loc: Vec<Loc>,
    pub(crate) consistent: Vec<bool>,
    pub(crate) wrote_local: Vec<bool>,
    pub(crate) used_local: Vec<bool>,
    pub(crate) seg_cur: Vec<usize>,
    pub(crate) ref_cur: Vec<usize>,
    pub(crate) blk_cur: Vec<usize>,
    pub(crate) last_reg: Vec<Option<usize>>,
    pub(crate) pending_owner: Vec<Option<Temp>>,
    // ---- scan: per-instruction buffers ----
    pub(crate) pre: Vec<Ins>,
    pub(crate) exclude: Vec<usize>,
    pub(crate) use_map: Vec<(Temp, PhysReg)>,
    pub(crate) use_temps: Vec<Temp>,
    pub(crate) def_exclude: Vec<usize>,
    // ---- scan: per-block buffer ----
    pub(crate) live_in: Vec<Temp>,
    // ---- resolve: per-edge buffer ----
    pub(crate) edge_ops: Vec<EdgeOp>,
    // ---- two-pass: per-instruction buffers ----
    pub(crate) tp_src_temps: Vec<Temp>,
    pub(crate) tp_scratch_of: Vec<(Temp, PhysReg)>,
    pub(crate) tp_pre: Vec<Ins>,
    pub(crate) tp_post: Vec<Ins>,
    pub(crate) tp_free: [Vec<usize>; 2],
}

/// Clears a vector and resizes it to `n` copies of `v`, keeping capacity.
pub(crate) fn reset<T: Clone>(buf: &mut Vec<T>, n: usize, v: T) {
    buf.clear();
    buf.resize(n, v);
}

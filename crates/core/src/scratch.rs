//! Reusable allocation scratch space.
//!
//! Allocating a function needs a dozen per-temp / per-register / per-block
//! working vectors plus several small per-instruction buffers. Allocating a
//! *module* used to pay those heap allocations again for every function;
//! [`AllocScratch`] owns them instead, so `allocate_module` (and any caller
//! that allocates many functions in sequence) clears and reuses the same
//! capacity across functions.
//!
//! # Reuse invariants
//!
//! Everything in here is *dead state between functions*: each consumer
//! (`scan`, `two_pass`, `resolve`) takes the buffers it needs at entry,
//! `clear()`s and `resize()`s them to the current function's dimensions, and
//! hands them back when it returns. No value computed for one function may
//! influence the allocation of the next — the determinism test
//! (`tests/determinism.rs`) checks that a reused scratch produces output
//! byte-identical to a fresh one. When adding a buffer, reset it where it is
//! taken, not where it is returned.

use lsra_analysis::{AnalysisScratch, BitSet, Csr, EpochSet, IntervalMap};
use lsra_ir::{Ins, PhysReg, Temp};

use crate::parallel_move::EdgeOp;
use crate::scan::Loc;

/// Reusable working memory for allocating one function at a time.
///
/// Create one per worker thread and pass it to
/// [`BinpackAllocator::allocate_function_reusing`]
/// (crate::BinpackAllocator::allocate_function_reusing) for every function
/// the worker processes. `Default::default()` is an empty scratch; buffers
/// grow to the largest function seen and stay allocated.
#[derive(Debug, Default)]
pub struct AllocScratch {
    // ---- analysis: lifetime event lists and CSR backing ----
    pub(crate) analysis: AnalysisScratch,
    // ---- scan: per-register / per-temp / per-block state ----
    pub(crate) occupant: Vec<Option<Temp>>,
    pub(crate) loc: Vec<Loc>,
    pub(crate) consistent: Vec<bool>,
    pub(crate) wrote_local: EpochSet,
    pub(crate) used_local: EpochSet,
    pub(crate) seg_cur: Vec<usize>,
    pub(crate) ref_cur: Vec<usize>,
    pub(crate) blk_cur: Vec<usize>,
    pub(crate) last_reg: Vec<Option<usize>>,
    pub(crate) pending_owner: Vec<Option<Temp>>,
    // ---- scan: per-instruction buffers ----
    pub(crate) pre: Vec<Ins>,
    pub(crate) exclude: Vec<usize>,
    pub(crate) use_map: Vec<(Temp, PhysReg)>,
    pub(crate) def_exclude: Vec<usize>,
    // ---- scan: per-block buffer ----
    pub(crate) live_in: Vec<Temp>,
    // ---- scan: convention-sweep event queue ----
    pub(crate) blocked_events: Vec<(lsra_analysis::Point, u32)>,
    pub(crate) sweep_buf: Vec<u32>,
    // ---- scan: incremental free-hole candidate structure ----
    pub(crate) free_candidates: Vec<u64>,
    pub(crate) interesting: Vec<u64>,
    pub(crate) hole_expiry:
        std::collections::BinaryHeap<std::cmp::Reverse<(lsra_analysis::Point, u32)>>,
    // ---- scan: liveness/blocked-segment query memos ----
    pub(crate) unblocked_cache:
        Vec<(lsra_analysis::Point, lsra_analysis::Point, Option<lsra_analysis::Point>)>,
    pub(crate) live_cache: Vec<(lsra_analysis::Point, lsra_analysis::Point, bool)>,
    // ---- scan output backing (CSR location maps, consistency vectors) ----
    pub(crate) top_map: Csr<(Temp, PhysReg)>,
    pub(crate) bottom_map: Csr<(Temp, PhysReg)>,
    pub(crate) consistent_bottom: Vec<BitSet>,
    pub(crate) used_consistency: Vec<BitSet>,
    pub(crate) wrote_tr: Vec<BitSet>,
    // ---- resolve: per-edge buffers ----
    pub(crate) edge_ops: Vec<EdgeOp>,
    pub(crate) edge_insns: Vec<(lsra_ir::Inst, lsra_ir::SpillTag)>,
    pub(crate) edge_spilled: Vec<Temp>,
    // ---- two-pass: per-register interval maps, per-instruction buffers ----
    pub(crate) tp_regs: Vec<IntervalMap>,
    pub(crate) tp_src_temps: Vec<Temp>,
    pub(crate) tp_scratch_of: Vec<(Temp, PhysReg)>,
    pub(crate) tp_pre: Vec<Ins>,
    pub(crate) tp_post: Vec<Ins>,
    pub(crate) tp_free: [Vec<usize>; 2],
}

impl AllocScratch {
    /// Returns the scan-output containers (taken at [`crate::scan::Scanner::new`])
    /// so the next function reuses their backing storage.
    pub(crate) fn recycle_scan(&mut self, out: crate::scan::ScanOutput) {
        self.top_map = out.top_map;
        self.bottom_map = out.bottom_map;
        self.consistent_bottom = out.consistent_bottom;
        self.used_consistency = out.used_consistency;
        self.wrote_tr = out.wrote_tr;
    }
}

/// Clears a vector and resizes it to `n` copies of `v`, keeping capacity.
pub(crate) fn reset<T: Clone>(buf: &mut Vec<T>, n: usize, v: T) {
    buf.clear();
    buf.resize(n, v);
}

/// Takes `n` bit sets over universe `ng` out of `buf`, reusing the word
/// buffers of previous functions.
pub(crate) fn take_bitsets(buf: &mut Vec<BitSet>, n: usize, ng: usize) -> Vec<BitSet> {
    let mut v = std::mem::take(buf);
    v.truncate(n);
    for s in &mut v {
        s.reset(ng);
    }
    v.resize(n, BitSet::new(ng));
    v
}

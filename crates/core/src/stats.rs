//! Allocation statistics and the common allocator interface.

use std::time::Instant;

use lsra_ir::{Function, MachineSpec, Module, SpillTag};
use lsra_trace::{TraceEvent, TraceSink};

/// Allocator phases whose wall-clock time is tracked when
/// [`BinpackConfig::time_phases`](crate::BinpackConfig) is on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Block ordering, dominators, and loop analysis (`LoopInfo`).
    Order = 0,
    /// Global liveness dataflow.
    Liveness = 1,
    /// Lifetime, hole, and reference-point construction.
    Lifetimes = 2,
    /// The linear scan itself (binpacking + second chances), or packing plus
    /// rewrite for the two-pass comparator.
    Scan = 3,
    /// Resolution: cross-block move/load/store insertion.
    Resolve = 4,
    /// The `USED_C` consistency dataflow inside resolution (reported
    /// separately from [`Phase::Resolve`]; the two are disjoint).
    Consistency = 5,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 6;
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Order,
        Phase::Liveness,
        Phase::Lifetimes,
        Phase::Scan,
        Phase::Resolve,
        Phase::Consistency,
    ];
}

/// Names matching [`AllocTimings::seconds`] indices, for reports.
pub const PHASE_NAMES: [&str; Phase::COUNT] =
    ["order", "liveness", "lifetimes", "scan", "resolve", "consistency"];

// Drift guard: adding a `Phase` variant without growing `PHASE_NAMES` (or
// reordering discriminants) must fail to compile, not misattribute time.
const _: () = {
    assert!(PHASE_NAMES.len() == Phase::COUNT);
    assert!(Phase::ALL.len() == Phase::COUNT);
    let mut i = 0;
    while i < Phase::COUNT {
        assert!(Phase::ALL[i] as usize == i, "Phase discriminants must index PHASE_NAMES");
        i += 1;
    }
};

/// Per-phase wall-clock seconds for one function, or summed across a module.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct AllocTimings {
    /// Seconds per phase, indexed by [`Phase`] (see [`PHASE_NAMES`]).
    pub seconds: [f64; Phase::COUNT],
}

impl AllocTimings {
    /// Adds `dt` seconds to `phase`.
    pub fn record(&mut self, phase: Phase, dt: f64) {
        self.seconds[phase as usize] += dt;
    }

    /// Seconds spent in `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.seconds[phase as usize]
    }

    /// Total seconds across all phases.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Accumulates another timing record into this one.
    pub fn merge(&mut self, other: &AllocTimings) {
        for (a, b) in self.seconds.iter_mut().zip(&other.seconds) {
            *a += b;
        }
    }
}

/// Interval timer that attributes elapsed time to phases; a disabled timer
/// never reads the clock.
pub(crate) struct PhaseTimer {
    last: Option<Instant>,
}

impl PhaseTimer {
    pub(crate) fn new(enabled: bool) -> Self {
        PhaseTimer { last: enabled.then(Instant::now) }
    }

    /// Charges the time since the previous mark (or construction) to
    /// `phase`, and emits a [`TraceEvent::Phase`] span to `sink`. A
    /// disabled timer emits nothing — phase events carry wall-clock
    /// seconds, so they only appear in traces that asked for timing
    /// (keeping default traces byte-reproducible).
    pub(crate) fn mark_traced(
        &mut self,
        stats: &mut AllocStats,
        phase: Phase,
        sink: &mut dyn TraceSink,
    ) {
        if let Some(last) = self.last {
            let now = Instant::now();
            let dt = now.duration_since(last).as_secs_f64();
            stats.timings.get_or_insert_with(AllocTimings::default).record(phase, dt);
            self.last = Some(now);
            if sink.enabled() {
                sink.event(&TraceEvent::Phase { name: PHASE_NAMES[phase as usize], seconds: dt });
            }
        }
    }
}

/// Static counts of allocator activity for one function or module.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AllocStats {
    /// Register candidates (temporaries) considered.
    pub candidates: usize,
    /// Statically inserted instructions per spill category (index 0, for
    /// `SpillTag::None`, is unused).
    pub inserted: [u64; 7],
    /// Temporaries that acquired a memory home at some point.
    pub spilled_temps: usize,
    /// Evictions performed (including convention-forced ones).
    pub evictions: u64,
    /// Moves whose destination was bound to the source register by the
    /// move-coalescing check (§2.5), or by coloring's coalescing.
    pub moves_coalesced: u64,
    /// Lifetime splits (second-chance reallocations).
    pub lifetime_splits: u64,
    /// Spill stores suppressed by the consistency machinery (§2.3).
    pub stores_suppressed: u64,
    /// Iterations of the `USED_C` dataflow (binpacking) or of the
    /// build-color-spill loop (coloring).
    ///
    /// Unlike every other field, [`AllocStats::merge`] combines this with
    /// `max`, not `+`: the count is a per-function convergence depth, so
    /// the meaningful module-level figure is the deepest dataflow any one
    /// function needed. A sum would grow with function count and answer no
    /// question (it is not work done — each iteration's cost already lands
    /// in the wall-clock fields).
    pub iterations: u32,
    /// Interference-graph edges (coloring only; 0 for linear scan). The
    /// paper's Table 3 reports this as a problem-size measure.
    pub interference_edges: u64,
    /// Wall-clock time spent in the allocator core, in seconds.
    pub alloc_seconds: f64,
    /// Per-phase wall-clock breakdown; `Some` only when
    /// [`BinpackConfig::time_phases`](crate::BinpackConfig) was set.
    pub timings: Option<AllocTimings>,
}

fn tag_index(tag: SpillTag) -> usize {
    match tag {
        SpillTag::None => 0,
        SpillTag::EvictLoad => 1,
        SpillTag::EvictStore => 2,
        SpillTag::EvictMove => 3,
        SpillTag::ResolveLoad => 4,
        SpillTag::ResolveStore => 5,
        SpillTag::ResolveMove => 6,
    }
}

impl AllocStats {
    /// Records one statically inserted instruction.
    pub fn record_insert(&mut self, tag: SpillTag) {
        self.inserted[tag_index(tag)] += 1;
    }

    /// Un-records one inserted instruction that a later cleanup removed, so
    /// the static counts describe the code actually emitted.
    pub fn record_remove(&mut self, tag: SpillTag) {
        let i = tag_index(tag);
        debug_assert!(self.inserted[i] > 0, "removing an instruction never inserted");
        self.inserted[i] = self.inserted[i].saturating_sub(1);
    }

    /// Statically inserted instructions of one category.
    pub fn inserted_count(&self, tag: SpillTag) -> u64 {
        self.inserted[tag_index(tag)]
    }

    /// Total statically inserted spill instructions.
    pub fn inserted_total(&self) -> u64 {
        self.inserted[1..].iter().sum()
    }

    /// Accumulates another function's statistics into this one.
    pub fn merge(&mut self, other: &AllocStats) {
        self.candidates += other.candidates;
        for i in 0..self.inserted.len() {
            self.inserted[i] += other.inserted[i];
        }
        self.spilled_temps += other.spilled_temps;
        self.evictions += other.evictions;
        self.moves_coalesced += other.moves_coalesced;
        self.lifetime_splits += other.lifetime_splits;
        self.stores_suppressed += other.stores_suppressed;
        // Max, not sum — see the field doc on `iterations`.
        self.iterations = self.iterations.max(other.iterations);
        self.interference_edges += other.interference_edges;
        self.alloc_seconds += other.alloc_seconds;
        match (&mut self.timings, &other.timings) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.timings = Some(*b),
            _ => {}
        }
    }

    /// This record with every wall-clock measurement zeroed; everything left
    /// is a deterministic function of the input program, so two allocations
    /// of the same module must compare equal under it.
    pub fn without_wall_clock(&self) -> AllocStats {
        AllocStats { alloc_seconds: 0.0, timings: None, ..self.clone() }
    }
}

/// A global register allocator: rewrites a function so that every operand is
/// a physical register (with spill code referencing frame slots).
pub trait RegisterAllocator {
    /// A short name for reports ("binpack", "coloring", ...).
    fn name(&self) -> &str;

    /// Allocates one function in place.
    fn allocate_function(&self, f: &mut Function, spec: &MachineSpec) -> AllocStats;

    /// Allocates every function of a module, merging statistics.
    fn allocate_module(&self, m: &mut Module, spec: &MachineSpec) -> AllocStats {
        let mut total = AllocStats::default();
        for id in m.func_ids().collect::<Vec<_>>() {
            let stats = self.allocate_function(m.func_mut(id), spec);
            total.merge(&stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_accounting() {
        let mut s = AllocStats::default();
        s.record_insert(SpillTag::EvictLoad);
        s.record_insert(SpillTag::EvictLoad);
        s.record_insert(SpillTag::ResolveMove);
        assert_eq!(s.inserted_count(SpillTag::EvictLoad), 2);
        assert_eq!(s.inserted_total(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AllocStats { candidates: 5, evictions: 2, ..Default::default() };
        let b = AllocStats { candidates: 3, evictions: 1, iterations: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.candidates, 8);
        assert_eq!(a.evictions, 3);
        assert_eq!(a.iterations, 4);
    }

    #[test]
    fn merge_takes_max_of_iterations_not_sum() {
        let mut a = AllocStats { iterations: 3, ..Default::default() };
        let b = AllocStats { iterations: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.iterations, 3, "iterations must merge as max, not 5");
        // Order-independent: merging the larger into the smaller agrees.
        let mut c = AllocStats { iterations: 2, ..Default::default() };
        c.merge(&AllocStats { iterations: 3, ..Default::default() });
        assert_eq!(c.iterations, 3);
    }
}

//! Allocation statistics and the common allocator interface.

use std::time::Instant;

use lsra_ir::{Function, MachineSpec, Module, SpillTag};

/// Allocator phases whose wall-clock time is tracked when
/// [`BinpackConfig::time_phases`](crate::BinpackConfig) is on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Block ordering, dominators, and loop analysis (`LoopInfo`).
    Order = 0,
    /// Global liveness dataflow.
    Liveness = 1,
    /// Lifetime, hole, and reference-point construction.
    Lifetimes = 2,
    /// The linear scan itself (binpacking + second chances), or packing plus
    /// rewrite for the two-pass comparator.
    Scan = 3,
    /// Resolution: cross-block move/load/store insertion.
    Resolve = 4,
    /// The `USED_C` consistency dataflow inside resolution (reported
    /// separately from [`Phase::Resolve`]; the two are disjoint).
    Consistency = 5,
}

/// Names matching [`AllocTimings::seconds`] indices, for reports.
pub const PHASE_NAMES: [&str; 6] =
    ["order", "liveness", "lifetimes", "scan", "resolve", "consistency"];

/// Per-phase wall-clock seconds for one function, or summed across a module.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct AllocTimings {
    /// Seconds per phase, indexed by [`Phase`] (see [`PHASE_NAMES`]).
    pub seconds: [f64; 6],
}

impl AllocTimings {
    /// Adds `dt` seconds to `phase`.
    pub fn record(&mut self, phase: Phase, dt: f64) {
        self.seconds[phase as usize] += dt;
    }

    /// Seconds spent in `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.seconds[phase as usize]
    }

    /// Total seconds across all phases.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Accumulates another timing record into this one.
    pub fn merge(&mut self, other: &AllocTimings) {
        for (a, b) in self.seconds.iter_mut().zip(&other.seconds) {
            *a += b;
        }
    }
}

/// Interval timer that attributes elapsed time to phases; a disabled timer
/// never reads the clock.
pub(crate) struct PhaseTimer {
    last: Option<Instant>,
}

impl PhaseTimer {
    pub(crate) fn new(enabled: bool) -> Self {
        PhaseTimer { last: enabled.then(Instant::now) }
    }

    /// Charges the time since the previous mark (or construction) to
    /// `phase`.
    pub(crate) fn mark(&mut self, stats: &mut AllocStats, phase: Phase) {
        if let Some(last) = self.last {
            let now = Instant::now();
            stats
                .timings
                .get_or_insert_with(AllocTimings::default)
                .record(phase, now.duration_since(last).as_secs_f64());
            self.last = Some(now);
        }
    }
}

/// Static counts of allocator activity for one function or module.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AllocStats {
    /// Register candidates (temporaries) considered.
    pub candidates: usize,
    /// Statically inserted instructions per spill category (index 0, for
    /// `SpillTag::None`, is unused).
    pub inserted: [u64; 7],
    /// Temporaries that acquired a memory home at some point.
    pub spilled_temps: usize,
    /// Evictions performed (including convention-forced ones).
    pub evictions: u64,
    /// Moves whose destination was bound to the source register by the
    /// move-coalescing check (§2.5), or by coloring's coalescing.
    pub moves_coalesced: u64,
    /// Lifetime splits (second-chance reallocations).
    pub lifetime_splits: u64,
    /// Spill stores suppressed by the consistency machinery (§2.3).
    pub stores_suppressed: u64,
    /// Iterations of the `USED_C` dataflow (binpacking) or of the
    /// build-color-spill loop (coloring).
    pub iterations: u32,
    /// Interference-graph edges (coloring only; 0 for linear scan). The
    /// paper's Table 3 reports this as a problem-size measure.
    pub interference_edges: u64,
    /// Wall-clock time spent in the allocator core, in seconds.
    pub alloc_seconds: f64,
    /// Per-phase wall-clock breakdown; `Some` only when
    /// [`BinpackConfig::time_phases`](crate::BinpackConfig) was set.
    pub timings: Option<AllocTimings>,
}

fn tag_index(tag: SpillTag) -> usize {
    match tag {
        SpillTag::None => 0,
        SpillTag::EvictLoad => 1,
        SpillTag::EvictStore => 2,
        SpillTag::EvictMove => 3,
        SpillTag::ResolveLoad => 4,
        SpillTag::ResolveStore => 5,
        SpillTag::ResolveMove => 6,
    }
}

impl AllocStats {
    /// Records one statically inserted instruction.
    pub fn record_insert(&mut self, tag: SpillTag) {
        self.inserted[tag_index(tag)] += 1;
    }

    /// Statically inserted instructions of one category.
    pub fn inserted_count(&self, tag: SpillTag) -> u64 {
        self.inserted[tag_index(tag)]
    }

    /// Total statically inserted spill instructions.
    pub fn inserted_total(&self) -> u64 {
        self.inserted[1..].iter().sum()
    }

    /// Accumulates another function's statistics into this one.
    pub fn merge(&mut self, other: &AllocStats) {
        self.candidates += other.candidates;
        for i in 0..self.inserted.len() {
            self.inserted[i] += other.inserted[i];
        }
        self.spilled_temps += other.spilled_temps;
        self.evictions += other.evictions;
        self.moves_coalesced += other.moves_coalesced;
        self.lifetime_splits += other.lifetime_splits;
        self.stores_suppressed += other.stores_suppressed;
        self.iterations = self.iterations.max(other.iterations);
        self.interference_edges += other.interference_edges;
        self.alloc_seconds += other.alloc_seconds;
        match (&mut self.timings, &other.timings) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.timings = Some(*b),
            _ => {}
        }
    }

    /// This record with every wall-clock measurement zeroed; everything left
    /// is a deterministic function of the input program, so two allocations
    /// of the same module must compare equal under it.
    pub fn without_wall_clock(&self) -> AllocStats {
        AllocStats { alloc_seconds: 0.0, timings: None, ..self.clone() }
    }
}

/// A global register allocator: rewrites a function so that every operand is
/// a physical register (with spill code referencing frame slots).
pub trait RegisterAllocator {
    /// A short name for reports ("binpack", "coloring", ...).
    fn name(&self) -> &str;

    /// Allocates one function in place.
    fn allocate_function(&self, f: &mut Function, spec: &MachineSpec) -> AllocStats;

    /// Allocates every function of a module, merging statistics.
    fn allocate_module(&self, m: &mut Module, spec: &MachineSpec) -> AllocStats {
        let mut total = AllocStats::default();
        for id in m.func_ids().collect::<Vec<_>>() {
            let stats = self.allocate_function(m.func_mut(id), spec);
            total.merge(&stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_accounting() {
        let mut s = AllocStats::default();
        s.record_insert(SpillTag::EvictLoad);
        s.record_insert(SpillTag::EvictLoad);
        s.record_insert(SpillTag::ResolveMove);
        assert_eq!(s.inserted_count(SpillTag::EvictLoad), 2);
        assert_eq!(s.inserted_total(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AllocStats { candidates: 5, evictions: 2, ..Default::default() };
        let b = AllocStats { candidates: 3, evictions: 1, iterations: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.candidates, 8);
        assert_eq!(a.evictions, 3);
        assert_eq!(a.iterations, 4);
    }
}

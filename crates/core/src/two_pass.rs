//! Traditional two-pass binpacking (§3.1's comparator).
//!
//! "A version of our allocator that assigns a whole lifetime to either
//! memory or register. This implementation still takes advantage of lifetime
//! holes during allocation." The first pass walks lifetimes in linear start
//! order and bin-packs each whole lifetime (its live segments) into a
//! register's free intervals, or spills it to memory for its entire
//! lifetime. References to spilled temporaries become *point lifetimes*: a
//! load into a scratch register before each use and a store after each
//! definition — with no store avoidance and no second chances, which is
//! precisely the behaviour the paper contrasts against (wc's 38% slowdown).

use lsra_analysis::{IntervalMap, Lifetimes, Liveness, LoopInfo, Point, Segment, SmallVec};
use lsra_ir::{Function, Ins, Inst, MachineSpec, PhysReg, Reg, RegClass, SpillTag, Temp};
use lsra_trace::{TraceEvent, TraceSink};

use crate::config::BinpackConfig;
use crate::scratch::AllocScratch;
use crate::stats::{AllocStats, Phase, PhaseTimer};

/// [`IntervalMap::overlaps`] adapted to [`Segment`] endpoints: an interval
/// `[s, e]` overlaps `[a, b]` iff `s <= b && e >= a`.
fn seg_overlaps(map: &IntervalMap, seg: Segment) -> bool {
    map.overlaps(seg.start.0, seg.end.0)
}

struct TwoPass<'a> {
    f: &'a Function,
    lt: &'a Lifetimes,
    ni: usize,
    /// Free/occupied intervals per register; precolored blocks are owned by
    /// `None`.
    regs: Vec<IntervalMap>,
    assigned: Vec<Option<PhysReg>>,
    spilled: Vec<bool>,
    lifetime_len: Vec<u32>,
}

impl<'a> TwoPass<'a> {
    fn dense(&self, p: PhysReg) -> usize {
        match p.class {
            RegClass::Int => p.index as usize,
            RegClass::Float => self.ni + p.index as usize,
        }
    }

    fn phys(&self, d: usize) -> PhysReg {
        if d < self.ni {
            PhysReg::int(d as u8)
        } else {
            PhysReg::float((d - self.ni) as u8)
        }
    }

    fn class_range(&self, class: RegClass) -> std::ops::Range<usize> {
        match class {
            RegClass::Int => 0..self.ni,
            RegClass::Float => self.ni..self.regs.len(),
        }
    }

    fn fits(&self, d: usize, t: Temp) -> bool {
        self.lt.segments(t).iter().all(|&s| !seg_overlaps(&self.regs[d], s))
    }

    fn assign(&mut self, t: Temp, d: usize) {
        for &s in self.lt.segments(t) {
            self.regs[d].insert(s.start.0, s.end.0, Some(t));
        }
        self.assigned[t.index()] = Some(self.phys(d));
    }

    fn unassign(&mut self, t: Temp) {
        if let Some(p) = self.assigned[t.index()].take() {
            let d = self.dense(p);
            self.regs[d].remove_owner(t);
        }
        self.spilled[t.index()] = true;
    }

    /// Pass 1: bin-pack whole lifetimes in start order; first fit.
    fn pack(&mut self, sink: &mut dyn TraceSink) {
        let mut order: Vec<Temp> = (0..self.f.num_temps() as u32)
            .map(Temp)
            .filter(|&t| self.lt.lifetime(t).is_some() && !self.spilled[t.index()])
            .collect();
        order.sort_by_key(|&t| self.lt.lifetime(t).unwrap().start);
        for t in order {
            if self.assigned[t.index()].is_some() {
                continue;
            }
            let class = self.f.temp_class(t);
            let choice = self.class_range(class).find(|&d| self.fits(d, t));
            match choice {
                Some(d) => {
                    if sink.enabled() {
                        sink.event(&TraceEvent::PackAssign { temp: t, reg: self.phys(d) });
                    }
                    self.assign(t, d);
                }
                None => {
                    if sink.enabled() {
                        sink.event(&TraceEvent::PackSpill { temp: t });
                    }
                    self.spilled[t.index()] = true;
                }
            }
        }
    }

    /// The span a point lifetime at instruction `gi` must have free.
    fn point_span(gi: u32) -> Segment {
        Segment::new(Point::before(gi), Point::before(gi + 1))
    }

    /// Number of registers of `class` free over the span.
    fn num_free_at(&self, class: RegClass, span: Segment) -> usize {
        self.class_range(class).filter(|&d| !seg_overlaps(&self.regs[d], span)).count()
    }

    /// Pass 1.5: make sure every instruction referencing spilled temporaries
    /// has enough free registers for its point lifetimes, unassigning
    /// victims until it does. Iterates to a fixed point (unassigning a temp
    /// adds point-lifetime demand at its own references).
    fn ensure_point_feasibility(&mut self, sink: &mut dyn TraceSink) {
        // Per-instruction spilled-source list, hoisted out of the loops;
        // inline storage covers every realistic operand count.
        let mut src_spilled: SmallVec<Temp, 8> = SmallVec::new();
        loop {
            let mut changed = false;
            for b in self.f.block_ids() {
                let first = self.lt.first_inst(b);
                for (k, ins) in self.f.block(b).insts.iter().enumerate() {
                    let gi = first + k as u32;
                    let span = Self::point_span(gi);
                    for class in RegClass::ALL {
                        let mut need = 0usize;
                        src_spilled.clear();
                        ins.inst.for_each_use(|r| {
                            if let Reg::Temp(t) = r {
                                if self.spilled[t.index()]
                                    && self.f.temp_class(t) == class
                                    && !src_spilled.contains(&t)
                                {
                                    src_spilled.push(t);
                                }
                            }
                        });
                        need += src_spilled.len();
                        let mut dst_extra = false;
                        ins.inst.for_each_def(|r| {
                            if let Reg::Temp(t) = r {
                                if self.spilled[t.index()] && self.f.temp_class(t) == class {
                                    // The destination can reuse a source
                                    // scratch of the same class.
                                    dst_extra = src_spilled.is_empty();
                                }
                            }
                        });
                        if dst_extra {
                            need += 1;
                        }
                        if need == 0 {
                            continue;
                        }
                        while self.num_free_at(class, span) < need {
                            let victim = self.victim_at(class, span).unwrap_or_else(|| {
                                panic!(
                                    "two-pass binpacking cannot satisfy point lifetimes at \
                                     instruction {gi} (class {class})"
                                )
                            });
                            if sink.enabled() {
                                sink.event(&TraceEvent::PackUnassign { temp: victim, gi });
                            }
                            self.unassign(victim);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Picks the assigned temporary overlapping `span` with the longest
    /// lifetime (the classic "furthest end" heuristic).
    fn victim_at(&self, class: RegClass, span: Segment) -> Option<Temp> {
        let mut best: Option<(u32, Temp)> = None;
        for d in self.class_range(class) {
            if let Some(Some(t)) = self.regs[d].overlapping_owner(span.start.0, span.end.0) {
                let len = self.lifetime_len[t.index()];
                if best.is_none_or(|(l, _)| len > l) {
                    best = Some((len, t));
                }
            }
        }
        best.map(|(_, t)| t)
    }
}

/// Runs traditional two-pass binpacking over `f`.
pub(crate) fn allocate(
    f: &mut Function,
    spec: &MachineSpec,
    cfg: BinpackConfig,
    stats: &mut AllocStats,
    scratch: &mut AllocScratch,
    sink: &mut dyn TraceSink,
) {
    let mut timer = PhaseTimer::new(cfg.time_phases);
    let live = Liveness::compute_with_workers(f, cfg.function_workers(f.num_insts()));
    timer.mark_traced(stats, Phase::Liveness, sink);
    let loops = LoopInfo::of(f);
    timer.mark_traced(stats, Phase::Order, sink);
    let lt = Lifetimes::compute_in(f, &live, &loops, spec, &mut scratch.analysis);
    timer.mark_traced(stats, Phase::Lifetimes, sink);
    stats.candidates = f.num_temps();

    let ni = spec.num_regs(RegClass::Int) as usize;
    let nregs = spec.total_regs();
    // Per-register interval maps come from the scratch arena.
    let mut reg_maps = std::mem::take(&mut scratch.tp_regs);
    reg_maps.truncate(nregs);
    for m in &mut reg_maps {
        m.clear();
    }
    reg_maps.resize(nregs, IntervalMap::new());
    let mut tp = TwoPass {
        f,
        lt: &lt,
        ni,
        regs: reg_maps,
        assigned: vec![None; f.num_temps()],
        spilled: vec![false; f.num_temps()],
        lifetime_len: (0..f.num_temps() as u32)
            .map(|t| lt.lifetime(Temp(t)).map_or(0, |s| s.end.0 - s.start.0))
            .collect(),
    };
    for d in 0..nregs {
        let p = tp.phys(d);
        for &s in lt.blocked(p) {
            tp.regs[d].insert(s.start.0, s.end.0, None);
        }
    }
    tp.pack(sink);
    tp.ensure_point_feasibility(sink);
    let assigned = tp.assigned;
    let spilled = tp.spilled;
    let regs = tp.regs;
    stats.spilled_temps = spilled.iter().filter(|&&s| s).count();
    timer.mark_traced(stats, Phase::Scan, sink);

    // Pass 2: rewrite. Spilled references go through scratch registers free
    // at the instruction's span.
    let ni_copy = ni;
    let phys = |d: usize| -> PhysReg {
        if d < ni_copy {
            PhysReg::int(d as u8)
        } else {
            PhysReg::float((d - ni_copy) as u8)
        }
    };
    // Per-instruction buffers come from the scratch arena.
    let mut free = std::mem::take(&mut scratch.tp_free);
    let mut scratch_of = std::mem::take(&mut scratch.tp_scratch_of);
    let mut pre = std::mem::take(&mut scratch.tp_pre);
    let mut post = std::mem::take(&mut scratch.tp_post);
    let mut src_temps = std::mem::take(&mut scratch.tp_src_temps);
    pre.clear();
    post.clear();
    for b in f.block_ids().collect::<Vec<_>>() {
        let first = lt.first_inst(b);
        if sink.enabled() {
            sink.event(&TraceEvent::BlockTop { block: b, first_gi: first });
        }
        let insts = std::mem::take(&mut f.block_mut(b).insts);
        let mut out: Vec<Ins> = Vec::with_capacity(insts.len());
        for (k, mut ins) in insts.into_iter().enumerate() {
            let gi = first + k as u32;
            let span = TwoPass::point_span(gi);
            for class in RegClass::ALL {
                let range = match class {
                    RegClass::Int => 0..ni_copy,
                    RegClass::Float => ni_copy..nregs,
                };
                free[class.index()].clear();
                free[class.index()].extend(range.filter(|&d| !seg_overlaps(&regs[d], span)));
            }
            scratch_of.clear();
            // Loads for spilled sources.
            src_temps.clear();
            ins.inst.for_each_use(|r| {
                if let Reg::Temp(t) = r {
                    if !src_temps.contains(&t) {
                        src_temps.push(t);
                    }
                }
            });
            for &t in src_temps.iter() {
                if spilled[t.index()] {
                    let class = f.temp_class(t);
                    let d = free[class.index()].pop().unwrap_or_else(|| {
                        panic!("no scratch register at instruction {gi} for {t}")
                    });
                    let r = phys(d);
                    f.slot_for(t);
                    pre.push(Ins::tagged(
                        Inst::SpillLoad { dst: Reg::Phys(r), temp: t },
                        SpillTag::EvictLoad,
                    ));
                    stats.record_insert(SpillTag::EvictLoad);
                    scratch_of.push((t, r));
                }
            }
            // Rewrite operands.
            ins.inst.for_each_use_mut(|r| {
                if let Reg::Temp(t) = *r {
                    *r = if spilled[t.index()] {
                        let (_, p) =
                            scratch_of.iter().find(|(u, _)| *u == t).expect("scratch mapped");
                        Reg::Phys(*p)
                    } else {
                        Reg::Phys(assigned[t.index()].expect("assigned register"))
                    };
                }
            });
            let mut def_temp = None;
            ins.inst.for_each_def(|r| {
                if let Reg::Temp(t) = r {
                    def_temp = Some(t);
                }
            });
            if let Some(t) = def_temp {
                let r = if spilled[t.index()] {
                    let class = f.temp_class(t);
                    // Reuse a source scratch of the same class if possible.
                    let r = scratch_of
                        .iter()
                        .find(|(_, p)| p.class == class)
                        .map(|(_, p)| *p)
                        .unwrap_or_else(|| {
                            let d = free[class.index()].pop().unwrap_or_else(|| {
                                panic!("no scratch register at instruction {gi} for def {t}")
                            });
                            phys(d)
                        });
                    f.slot_for(t);
                    // Two-pass binpacking "does not avoid unnecessary
                    // stores": every definition writes memory immediately.
                    post.push(Ins::tagged(
                        Inst::SpillStore { src: Reg::Phys(r), temp: t },
                        SpillTag::EvictStore,
                    ));
                    stats.record_insert(SpillTag::EvictStore);
                    r
                } else {
                    assigned[t.index()].expect("assigned register")
                };
                ins.inst.for_each_def_mut(|d| {
                    if matches!(*d, Reg::Temp(_)) {
                        *d = Reg::Phys(r);
                    }
                });
            }
            let is_terminator = ins.inst.is_terminator();
            out.append(&mut pre);
            if is_terminator {
                // A terminator cannot define a temp; post is always empty.
                debug_assert!(post.is_empty());
                out.push(ins);
            } else {
                out.push(ins);
                out.append(&mut post);
            }
        }
        f.block_mut(b).insts = out;
    }
    scratch.tp_free = free;
    scratch.tp_scratch_of = scratch_of;
    scratch.tp_pre = pre;
    scratch.tp_post = post;
    scratch.tp_src_temps = src_temps;
    scratch.tp_regs = regs;
    lt.recycle(&mut scratch.analysis);
    timer.mark_traced(stats, Phase::Resolve, sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AllocStats;
    use lsra_ir::{Cond, ExtFn, FunctionBuilder, MachineSpec, RegClass};

    #[test]
    fn reg_intervals_overlap_queries() {
        let mut r = IntervalMap::new();
        r.insert(10, 20, Some(Temp(0)));
        r.insert(30, 40, None);
        assert!(seg_overlaps(&r, Segment::new(Point(15), Point(18))));
        assert!(seg_overlaps(&r, Segment::new(Point(5), Point(10))));
        assert!(seg_overlaps(&r, Segment::new(Point(20), Point(25))));
        assert!(!seg_overlaps(&r, Segment::new(Point(21), Point(29))));
        assert_eq!(r.overlapping_owner(35, 35), Some(None));
        assert_eq!(r.overlapping_owner(12, 12), Some(Some(Temp(0))));
        r.remove_owner(Temp(0));
        assert!(!seg_overlaps(&r, Segment::new(Point(15), Point(18))));
        assert!(seg_overlaps(&r, Segment::new(Point(35), Point(35))), "precolored block remains");
    }

    #[test]
    fn whole_lifetimes_go_to_register_or_memory() {
        // Under pressure the two-pass allocator spills whole lifetimes:
        // every reference of a spilled temp pays a point load/store.
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let ts: Vec<_> = (0..6).map(|i| b.int_temp(&format!("t{i}"))).collect();
        for (i, &t) in ts.iter().enumerate() {
            b.movi(t, i as i64);
        }
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        for &t in &ts {
            b.add(acc, acc, t);
        }
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        let mut stats = AllocStats::default();
        allocate(
            &mut f,
            &spec,
            BinpackConfig::two_pass(),
            &mut stats,
            &mut AllocScratch::default(),
            &mut lsra_trace::NoopSink,
        );
        assert!(f.validate().is_ok());
        assert!(!f.has_virtual_operands());
        assert!(stats.spilled_temps > 0);
        // A spilled temp with one def and one use costs exactly one store
        // and one load: loads == uses of spilled temps.
        assert!(stats.inserted_count(lsra_ir::SpillTag::EvictLoad) >= stats.spilled_temps as u64);
        assert!(stats.inserted_count(lsra_ir::SpillTag::EvictStore) >= stats.spilled_temps as u64);
    }

    #[test]
    fn call_crossers_cannot_use_caller_saved() {
        let spec = MachineSpec::small(4, 2); // caller r0-r2, callee r3
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let keep = b.int_temp("keep");
        b.movi(keep, 5);
        b.call_ext(ExtFn::GetChar, &[], Some(RegClass::Int));
        let out = b.int_temp("out");
        b.add(out, keep, keep);
        b.ret(Some(out.into()));
        let mut f = b.finish();
        let mut stats = AllocStats::default();
        allocate(
            &mut f,
            &spec,
            BinpackConfig::two_pass(),
            &mut stats,
            &mut AllocScratch::default(),
            &mut lsra_trace::NoopSink,
        );
        f.allocated = true;
        // keep either got the lone callee-saved register or was spilled;
        // it must never sit in a caller-saved register across the call.
        lsra_vm::check_function(&f, &spec).expect("statically valid");
    }

    #[test]
    fn loop_spills_repeat_every_iteration() {
        // The defining property vs. second chance: a spilled temp's loop
        // references pay memory traffic on every iteration.
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let ts: Vec<_> = (0..4).map(|i| b.int_temp(&format!("t{i}"))).collect();
        for &t in &ts {
            b.movi(t, 1);
        }
        let n = b.int_temp("n");
        b.movi(n, 10);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.branch(Cond::Le, n, exit, body);
        b.switch_to(body);
        for &t in &ts {
            b.add(t, t, n);
        }
        b.addi(n, n, -1);
        b.jump(head);
        b.switch_to(exit);
        let out = b.int_temp("out");
        b.movi(out, 0);
        for &t in &ts {
            b.add(out, out, t);
        }
        b.ret(Some(out.into()));
        let module = {
            let mut mb = lsra_ir::ModuleBuilder::new("t", 0);
            let id = mb.add(b.finish());
            mb.entry(id);
            mb.finish()
        };
        let mut m = module.clone();
        let mut stats = AllocStats::default();
        let mut scratch = AllocScratch::default();
        for id in m.func_ids().collect::<Vec<_>>() {
            allocate(
                m.func_mut(id),
                &spec,
                BinpackConfig::two_pass(),
                &mut stats,
                &mut scratch,
                &mut lsra_trace::NoopSink,
            );
            m.func_mut(id).allocated = true;
        }
        let r = lsra_vm::verify_allocation(&module, &m, &spec, &[], lsra_vm::VmOptions::default())
            .expect("verified");
        // Dynamic spill count scales with iterations (10 iterations, at
        // least one spilled temp referenced each time).
        assert!(r.counts.spill_total() >= 10, "got {}", r.counts.spill_total());
    }
}

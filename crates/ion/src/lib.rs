//! **Ion-style backtracking allocation** over live-range bundles.
//!
//! Where the paper's binpacker commits to a location the moment the linear
//! scan reaches a lifetime, this allocator (modelled on SpiderMonkey's
//! IonMonkey / WebAssembly `regalloc` lineage) may *revisit* decisions:
//!
//! 1. the function is taken through SSA construction and back
//!    ([`lsra_ssa::to_ssa_and_back`]), so every temporary has a single
//!    static definition site and phi-induced copies are explicit moves;
//! 2. each temporary's live segments become one *bundle*; move-related
//!    bundles of the same class merge when their ranges do not overlap
//!    (the copy then costs nothing) and moves against physical registers
//!    leave a register *hint* on the bundle;
//! 3. bundles are allocated from a priority queue ordered by total live
//!    length — long, hard-to-place bundles first;
//! 4. an unsplit bundle that fits nowhere may **evict** already-placed
//!    bundles whose spill weight it at least doubles (they return to the
//!    queue; a budget bounds the cascading), any bundle may **split** into
//!    smaller bundles at block boundaries or at the widest gap between its
//!    references, or — as the second-chance fallback that guarantees
//!    termination — spill to memory for good;
//! 5. a feasibility pass mirrors the two-pass comparator's point-lifetime
//!    repair, the rewrite installs spill code and split-connection copies,
//!    a resolution pass repairs locations across CFG edges with the
//!    shared parallel-move sequencer, and a final availability scan
//!    deletes reloads (and slot-refreshing stores) whose value provably
//!    already sits where it is wanted.
//!
//! Splits and evictions surface as [`TraceEvent::SplitBundle`] /
//! [`TraceEvent::EvictBundle`] decisions, so `lsra report` can break an
//! allocation down by how much backtracking it needed.
//!
//! # Examples
//!
//! ```
//! use lsra_core::RegisterAllocator;
//! use lsra_ion::IonAllocator;
//! use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
//!
//! let spec = MachineSpec::alpha_like();
//! let mut b = FunctionBuilder::new(&spec, "f", &[RegClass::Int]);
//! let x = b.param(0);
//! let y = b.int_temp("y");
//! b.add(y, x, x);
//! b.ret(Some(y.into()));
//! let mut f = b.finish();
//!
//! let stats = IonAllocator::default().allocate_function(&mut f, &spec);
//! assert!(f.allocated);
//! assert_eq!(stats.inserted_total(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use lsra_analysis::{
    split_edge, BitSet, IntervalMap, Lifetimes, Liveness, LoopInfo, Point, Segment, SmallVec,
};
use lsra_core::{sequentialize_into, AllocStats, EdgeOp, RegisterAllocator};
use lsra_ir::{
    BlockId, Function, Ins, Inst, MachineSpec, Module, PhysReg, Reg, RegClass, SpillTag, Temp,
};
use lsra_trace::{NoopSink, ResolveOp, SplitKind, TraceEvent, TraceSink};

/// Recursive splitting depth cap: a bundle split this many times spills
/// instead of splitting again. Every split strictly shrinks the pieces, so
/// the cap is a backstop, not a tuning knob.
const MAX_GEN: u8 = 16;

/// One contiguous `[start, end]` interval of one temporary's liveness.
/// Splitting appends smaller ranges; the parent's entries go stale with the
/// parent bundle.
#[derive(Copy, Clone, Debug)]
struct LiveRange {
    temp: Temp,
    seg: Segment,
}

/// A set of live ranges allocated as a unit: one register for all of them,
/// or memory for all of them.
#[derive(Clone, Debug)]
struct Bundle {
    /// Indices into the range arena, ascending by segment start. Ranges of
    /// one bundle never overlap (merging requires it), so the order is
    /// total.
    ranges: Vec<u32>,
    class: RegClass,
    /// Preferred register, seeded by moves against physical registers
    /// (argument shuffles, return values). Tried first.
    hint: Option<PhysReg>,
    /// Split generation: 0 for an original bundle, parent + 1 for pieces.
    gen: u8,
    /// Queue priority: total points covered. Long bundles allocate first.
    prio: u64,
    /// Spill weight: reference weight per covered point. Eviction demands
    /// at least double the victim's weight from the evictor.
    weight: f64,
    assignment: Option<PhysReg>,
    spilled: bool,
    /// True once the bundle has been split or merged away; its pieces (or
    /// its absorber) supersede it.
    dead: bool,
}

/// The Ion-style backtracking allocator.
#[derive(Clone, Debug, Default)]
pub struct IonAllocator;

impl IonAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        IonAllocator
    }
}

/// Union-find over bundle ids, used only during move-coalescing so merged
/// temporaries resolve to their surviving bundle.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let up = parent[parent[x as usize] as usize];
        parent[x as usize] = up;
        x = up;
    }
    x
}

struct State<'a> {
    lt: &'a Lifetimes,
    ni: usize,
    ranges: Vec<LiveRange>,
    bundles: Vec<Bundle>,
    /// Occupancy per dense register; blocked (precolored / call-clobber)
    /// segments are owned by `None`, assigned ranges by `Temp(bundle_id)`.
    regs: Vec<IntervalMap>,
    /// `top(b).0` per block, ascending in linear order.
    block_tops: Vec<u32>,
}

impl State<'_> {
    fn phys(&self, d: usize) -> PhysReg {
        if d < self.ni {
            PhysReg::int(d as u8)
        } else {
            PhysReg::float((d - self.ni) as u8)
        }
    }

    fn dense(&self, p: PhysReg) -> usize {
        match p.class {
            RegClass::Int => p.index as usize,
            RegClass::Float => self.ni + p.index as usize,
        }
    }

    fn class_range(&self, class: RegClass) -> std::ops::Range<usize> {
        match class {
            RegClass::Int => 0..self.ni,
            RegClass::Float => self.ni..self.regs.len(),
        }
    }

    /// The representative temporary of a bundle (its earliest range's), used
    /// to label trace events.
    fn repr(&self, bid: u32) -> Temp {
        self.ranges[self.bundles[bid as usize].ranges[0] as usize].temp
    }

    /// Queue priority and spill weight of a range set: total covered points,
    /// and reference weight per covered point.
    fn measure(&self, range_ids: &[u32]) -> (u64, f64) {
        let mut len = 0u64;
        let mut refs = 0.0f64;
        for &r in range_ids {
            let lr = self.ranges[r as usize];
            len += (lr.seg.end.0 - lr.seg.start.0 + 1) as u64;
            let rs = self.lt.refs(lr.temp);
            let lo = rs.partition_point(|rp| rp.point < lr.seg.start);
            let hi = rs.partition_point(|rp| rp.point <= lr.seg.end);
            for rp in &rs[lo..hi] {
                refs += rp.weight;
            }
        }
        (len, refs / len.max(1) as f64)
    }

    /// True if every range of the set avoids everything parked in register
    /// `d` (blocked segments included).
    fn fits(&self, range_ids: &[u32], d: usize) -> bool {
        range_ids.iter().all(|&r| {
            let s = self.ranges[r as usize].seg;
            !self.regs[d].overlaps(s.start.0, s.end.0)
        })
    }

    fn assign(&mut self, bid: u32, d: usize) {
        let ranges = std::mem::take(&mut self.bundles[bid as usize].ranges);
        for &r in &ranges {
            let s = self.ranges[r as usize].seg;
            self.regs[d].insert(s.start.0, s.end.0, Some(Temp(bid)));
        }
        let reg = self.phys(d);
        let b = &mut self.bundles[bid as usize];
        b.ranges = ranges;
        b.assignment = Some(reg);
    }

    /// All distinct bundles parked in `d` that conflict with the range set;
    /// `None` when a blocked segment conflicts (the register cannot be
    /// evicted free).
    fn conflicts(&self, range_ids: &[u32], d: usize) -> Option<SmallVec<u32, 8>> {
        let mut out: SmallVec<u32, 8> = SmallVec::new();
        for &r in range_ids {
            let s = self.ranges[r as usize].seg;
            for (_, _, owner) in self.regs[d].overlapping_entries(s.start.0, s.end.0) {
                match owner {
                    None => return None,
                    Some(t) => {
                        if !out.contains(&t.0) {
                            out.push(t.0);
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// The block containing `p` in linear order.
    fn block_of(&self, p: Point) -> usize {
        self.block_tops.partition_point(|&s| s <= p.0) - 1
    }
}

/// The span a point lifetime at instruction `gi` must have free (same model
/// as the two-pass comparator).
fn point_span(gi: u32) -> Segment {
    Segment::new(Point::before(gi), Point::before(gi + 1))
}

/// Location lookup: the piece of `t` containing `p`, through its bundle's
/// *current* assignment — so feasibility demotions propagate to every later
/// consumer without rebuilding the table.
fn loc_at(
    temp_pieces: &[Vec<(u32, u32, u32)>],
    bundles: &[Bundle],
    t: Temp,
    p: Point,
) -> Option<PhysReg> {
    let pieces = &temp_pieces[t.index()];
    let i = pieces.partition_point(|e| e.0 <= p.0);
    let (_, end, bid) = *pieces[..i].last()?;
    if end < p.0 {
        return None;
    }
    bundles[bid as usize].assignment
}

impl IonAllocator {
    /// Allocates one function, emitting every allocation decision to
    /// `sink`. With a disabled sink this is
    /// [`RegisterAllocator::allocate_function`].
    pub fn allocate_function_traced(
        &self,
        f: &mut Function,
        spec: &MachineSpec,
        sink: &mut dyn TraceSink,
    ) -> AllocStats {
        let start = Instant::now();
        let mut stats = AllocStats::default();
        if sink.enabled() {
            sink.event(&TraceEvent::FunctionBegin {
                name: f.name.clone(),
                temps: f.num_temps(),
                blocks: f.num_blocks(),
                insts: f.num_insts(),
            });
        }
        allocate(f, spec, &mut stats, sink);
        f.allocated = true;
        debug_assert!(!f.has_virtual_operands(), "allocation left virtual operands");
        stats.alloc_seconds = start.elapsed().as_secs_f64();
        if sink.enabled() {
            sink.event(&TraceEvent::FunctionEnd { name: f.name.clone() });
        }
        stats
    }

    /// Allocates every function of a module with tracing, serially and in
    /// module order so the event stream is deterministic.
    pub fn allocate_module_traced(
        &self,
        m: &mut Module,
        spec: &MachineSpec,
        sink: &mut dyn TraceSink,
    ) -> AllocStats {
        let mut total = AllocStats::default();
        for id in m.func_ids().collect::<Vec<_>>() {
            let stats = self.allocate_function_traced(m.func_mut(id), spec, sink);
            total.merge(&stats);
        }
        total
    }
}

impl RegisterAllocator for IonAllocator {
    fn name(&self) -> &str {
        "ion backtracking"
    }

    fn allocate_function(&self, f: &mut Function, spec: &MachineSpec) -> AllocStats {
        self.allocate_function_traced(f, spec, &mut NoopSink)
    }
}

fn allocate(
    f: &mut Function,
    spec: &MachineSpec,
    stats: &mut AllocStats,
    sink: &mut dyn TraceSink,
) {
    // Phase 0: through SSA and back. Phi lowering reuses the parallel-move
    // sequencer, so the function that reaches the allocator proper is
    // phi-free with explicit (ResolveMove-tagged) copies; identity copies
    // among them are cleaned up at the end of this function.
    lsra_ssa::to_ssa_and_back(f);

    let live = Liveness::compute(f);
    let loops = LoopInfo::of(f);
    let lt = Lifetimes::compute(f, &live, &loops, spec);
    stats.candidates = f.num_temps();

    let nt = f.num_temps();
    let ni = spec.num_regs(RegClass::Int) as usize;
    let nregs = spec.total_regs();
    let nb = f.num_blocks();

    // Phase 1: one bundle per live temporary.
    let mut st = State {
        lt: &lt,
        ni,
        ranges: Vec::new(),
        bundles: Vec::new(),
        regs: vec![IntervalMap::new(); nregs],
        block_tops: (0..nb).map(|b| lt.top(BlockId(b as u32)).0).collect(),
    };
    for d in 0..nregs {
        let p = st.phys(d);
        for &s in lt.blocked(p) {
            st.regs[d].insert(s.start.0, s.end.0, None);
        }
    }
    let mut bundle_of_temp: Vec<Option<u32>> = vec![None; nt];
    #[allow(clippy::needless_range_loop)] // `ti` is the temp id, not just an index
    for ti in 0..nt {
        let t = Temp(ti as u32);
        let segs = lt.segments(t);
        if segs.is_empty() {
            continue;
        }
        let mut rs: Vec<u32> = Vec::with_capacity(segs.len());
        for &s in segs {
            rs.push(st.ranges.len() as u32);
            st.ranges.push(LiveRange { temp: t, seg: s });
        }
        rs.sort_by_key(|&r| st.ranges[r as usize].seg.start);
        bundle_of_temp[ti] = Some(st.bundles.len() as u32);
        st.bundles.push(Bundle {
            ranges: rs,
            class: f.temp_class(t),
            hint: None,
            gen: 0,
            prio: 0,
            weight: 0.0,
            assignment: None,
            spilled: false,
            dead: false,
        });
    }

    // Phase 2: move coalescing and hints. Walk moves in program order; a
    // temp-to-temp move whose bundles don't overlap merges them (the move
    // later collapses to an identity and vanishes), a move against a
    // physical register leaves a hint.
    let mut parent: Vec<u32> = (0..st.bundles.len() as u32).collect();
    for b in f.block_ids() {
        for ins in &f.block(b).insts {
            let Inst::Mov { dst, src } = ins.inst else { continue };
            match (dst, src) {
                (Reg::Temp(x), Reg::Temp(y)) => {
                    let (Some(bx), Some(by)) =
                        (bundle_of_temp[x.index()], bundle_of_temp[y.index()])
                    else {
                        continue;
                    };
                    let (bx, by) = (find(&mut parent, bx), find(&mut parent, by));
                    if bx == by || st.bundles[bx as usize].class != st.bundles[by as usize].class {
                        continue;
                    }
                    // Keep the lower id; a linear sweep over the two sorted
                    // range lists decides overlap.
                    let (keep, kill) = (bx.min(by), bx.max(by));
                    let (ka, kb) = (&st.bundles[keep as usize], &st.bundles[kill as usize]);
                    let overlapping = {
                        let (mut i, mut j) = (0, 0);
                        let mut hit = false;
                        while i < ka.ranges.len() && j < kb.ranges.len() {
                            let sa = st.ranges[ka.ranges[i] as usize].seg;
                            let sb = st.ranges[kb.ranges[j] as usize].seg;
                            if sa.overlaps(&sb) {
                                hit = true;
                                break;
                            }
                            if sa.end < sb.end {
                                i += 1;
                            } else {
                                j += 1;
                            }
                        }
                        hit
                    };
                    if overlapping {
                        continue;
                    }
                    let killed = std::mem::take(&mut st.bundles[kill as usize].ranges);
                    let kill_hint = st.bundles[kill as usize].hint;
                    st.bundles[kill as usize].dead = true;
                    let mut merged = {
                        let keepb = &mut st.bundles[keep as usize];
                        let mut merged = Vec::with_capacity(keepb.ranges.len() + killed.len());
                        merged.append(&mut keepb.ranges);
                        merged.extend(killed);
                        merged
                    };
                    merged.sort_by_key(|&r| st.ranges[r as usize].seg.start);
                    let keepb = &mut st.bundles[keep as usize];
                    keepb.ranges = merged;
                    if keepb.hint.is_none() {
                        keepb.hint = kill_hint;
                    }
                    parent[kill as usize] = keep;
                    stats.moves_coalesced += 1;
                }
                (Reg::Temp(x), Reg::Phys(p)) | (Reg::Phys(p), Reg::Temp(x)) => {
                    if let Some(bx) = bundle_of_temp[x.index()] {
                        let bx = find(&mut parent, bx);
                        let bb = &mut st.bundles[bx as usize];
                        if bb.hint.is_none() && bb.class == p.class {
                            bb.hint = Some(p);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Phase 3: the priority queue. Total live length first (long bundles
    // are the hardest to place), lowest id on ties.
    let mut queue: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::new();
    for bid in 0..st.bundles.len() as u32 {
        if st.bundles[bid as usize].dead {
            continue;
        }
        let (prio, weight) = st.measure(&st.bundles[bid as usize].ranges);
        let b = &mut st.bundles[bid as usize];
        b.prio = prio;
        b.weight = weight;
        queue.push((prio, Reverse(bid)));
    }
    // Eviction is bounded so that mutual-eviction chains cannot cycle
    // forever; once the budget is spent, bundles split or spill instead.
    let mut evict_budget: u64 = 8 * st.bundles.len() as u64 + 64;
    // The anchor register per temp: set when its first (highest-priority)
    // piece lands, read as a placement preference by every later piece.
    let mut temp_reg: Vec<Option<u32>> = vec![None; nt];

    while let Some((_, Reverse(bid))) = queue.pop() {
        let b = &st.bundles[bid as usize];
        if b.dead || b.spilled || b.assignment.is_some() {
            continue;
        }
        let class = b.class;
        let hint_d = b.hint.filter(|p| p.class == class).map(|p| st.dense(p));
        // Sibling affinity: pieces of an already-placed temp try its
        // register first, so a split lifetime reassembles into one register
        // wherever it fits and edge resolution has nothing to repair.
        let mut sibling: SmallVec<usize, 4> = SmallVec::new();
        for &r in &st.bundles[bid as usize].ranges {
            if let Some(d) = temp_reg[st.ranges[r as usize].temp.index()] {
                if !sibling.contains(&(d as usize)) {
                    sibling.push(d as usize);
                }
            }
        }
        // Hint, then siblings, then dense order.
        let order = hint_d.into_iter().chain(sibling.iter().copied()).chain(st.class_range(class));
        let mut placed = false;
        for d in order {
            if st.fits(&st.bundles[bid as usize].ranges, d) {
                if sink.enabled() {
                    sink.event(&TraceEvent::PackAssign { temp: st.repr(bid), reg: st.phys(d) });
                }
                st.assign(bid, d);
                for &r in &st.bundles[bid as usize].ranges {
                    let anchor = &mut temp_reg[st.ranges[r as usize].temp.index()];
                    if anchor.is_none() {
                        *anchor = Some(d as u32);
                    }
                }
                placed = true;
                break;
            }
        }
        if placed {
            continue;
        }

        // Eviction: find the register whose conflicting bundles have the
        // smallest maximum weight; evict them all if our weight *clearly*
        // dominates (2x). Mere strict inequality lets similar-weight
        // bundles displace each other in cascades — each round re-places
        // every loser somewhere worse, and the measured inserted spill code
        // ends up far above just splitting around the conflict.
        let our_weight = st.bundles[bid as usize].weight;
        let mut best: Option<(f64, usize, SmallVec<u32, 8>)> = None;
        for d in st.class_range(class) {
            let Some(cs) = st.conflicts(&st.bundles[bid as usize].ranges, d) else { continue };
            let maxw =
                cs.iter().map(|&c| st.bundles[c as usize].weight).fold(0.0f64, |a, w| a.max(w));
            if best.as_ref().is_none_or(|(bw, _, _)| maxw < *bw) {
                best = Some((maxw, d, cs));
            }
        }
        if let Some((maxw, d, cs)) = best {
            if st.bundles[bid as usize].gen == 0 && maxw * 2.0 < our_weight && evict_budget > 0 {
                let at = st.ranges[st.bundles[bid as usize].ranges[0] as usize].seg.start;
                for &c in cs.iter() {
                    st.regs[d].remove_owner(Temp(c));
                    st.bundles[c as usize].assignment = None;
                    if sink.enabled() {
                        sink.event(&TraceEvent::EvictBundle {
                            temp: st.repr(c),
                            reg: st.phys(d),
                            at,
                        });
                    }
                    stats.evictions += 1;
                    evict_budget = evict_budget.saturating_sub(1);
                    queue.push((st.bundles[c as usize].prio, Reverse(c)));
                }
                if sink.enabled() {
                    sink.event(&TraceEvent::PackAssign { temp: st.repr(bid), reg: st.phys(d) });
                }
                st.assign(bid, d);
                for &r in &st.bundles[bid as usize].ranges {
                    let anchor = &mut temp_reg[st.ranges[r as usize].temp.index()];
                    if anchor.is_none() {
                        *anchor = Some(d as u32);
                    }
                }
                continue;
            }
        }

        // Split: at block boundaries for multi-block bundles, at the widest
        // reference gap inside a single block. Pieces re-enter the queue
        // one generation deeper.
        if st.bundles[bid as usize].gen < MAX_GEN {
            if let Some(pieces) = split(&mut st, bid) {
                let gen = st.bundles[bid as usize].gen + 1;
                let hint = st.bundles[bid as usize].hint;
                let kind = pieces.kind;
                let repr = st.repr(bid);
                st.bundles[bid as usize].dead = true;
                for (i, rs) in pieces.groups.into_iter().enumerate() {
                    let (prio, weight) = st.measure(&rs);
                    let nbid = st.bundles.len() as u32;
                    if i > 0 {
                        let at = st.ranges[rs[0] as usize].seg.start;
                        if sink.enabled() {
                            sink.event(&TraceEvent::SplitBundle { temp: repr, at, kind });
                        }
                        stats.lifetime_splits += 1;
                    }
                    st.bundles.push(Bundle {
                        ranges: rs,
                        class,
                        hint,
                        gen,
                        prio,
                        weight,
                        assignment: None,
                        spilled: false,
                        dead: false,
                    });
                    queue.push((prio, Reverse(nbid)));
                }
                continue;
            }
        }

        // Second chance exhausted: the bundle lives in memory.
        if sink.enabled() {
            sink.event(&TraceEvent::PackSpill { temp: st.repr(bid) });
        }
        st.bundles[bid as usize].spilled = true;
    }

    // Location table: pieces per temp, ascending by start. Location queries
    // go through the owning bundle so later demotions stay visible.
    let mut temp_pieces: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); nt];
    for bid in 0..st.bundles.len() {
        if st.bundles[bid].dead {
            continue;
        }
        for &r in &st.bundles[bid].ranges {
            let lr = st.ranges[r as usize];
            temp_pieces[lr.temp.index()].push((lr.seg.start.0, lr.seg.end.0, bid as u32));
        }
    }
    for v in &mut temp_pieces {
        v.sort_by_key(|e| e.0);
    }

    // Assignment smoothing. Each seam — adjacent pieces of one temporary
    // sitting in different registers — costs a connection or resolution
    // copy, and the priority queue places pieces in weight order, not in
    // program order, so seams are common. Greedily migrate a bundle to a
    // neighbour's register when that strictly increases its number of
    // matched seams and the register is free over all its ranges. Every
    // migration reduces the copy count, so the fixpoint is cheap; rounds
    // are capped for the pathological case of oscillating equal gains.
    let nbund = st.bundles.len();
    for _ in 0..4 {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nbund];
        for pieces in &temp_pieces {
            for w in pieces.windows(2) {
                let (a, b) = (w[0].2, w[1].2);
                if a != b {
                    adj[a as usize].push(b);
                    adj[b as usize].push(a);
                }
            }
        }
        let mut changed = false;
        for bid in 0..nbund as u32 {
            let b = &st.bundles[bid as usize];
            if b.dead || b.spilled {
                continue;
            }
            let Some(cur) = b.assignment else { continue };
            let class = b.class;
            let mut cands: SmallVec<PhysReg, 4> = SmallVec::new();
            for &n in &adj[bid as usize] {
                if let Some(r) = st.bundles[n as usize].assignment {
                    if r != cur && r.class == class && !cands.contains(&r) {
                        cands.push(r);
                    }
                }
            }
            for &r in cands.iter() {
                let (mut at_r, mut at_cur) = (0i32, 0i32);
                for &n in &adj[bid as usize] {
                    match st.bundles[n as usize].assignment {
                        Some(q) if q == r => at_r += 1,
                        Some(q) if q == cur => at_cur += 1,
                        _ => {}
                    }
                }
                if at_r <= at_cur {
                    continue;
                }
                let (d_old, d_new) = (st.dense(cur), st.dense(r));
                st.regs[d_old].remove_owner(Temp(bid));
                if st.fits(&st.bundles[bid as usize].ranges, d_new) {
                    st.assign(bid, d_new);
                    changed = true;
                    break;
                }
                st.assign(bid, d_old);
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 4: point feasibility, mirroring the two-pass comparator —
    // every instruction touching memory-resident values needs enough free
    // registers for its scratch loads/stores; demote victims until it does.
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let mut changed = false;
        for b in f.block_ids() {
            let first = lt.first_inst(b);
            for (k, ins) in f.block(b).insts.iter().enumerate() {
                let gi = first + k as u32;
                let span = point_span(gi);
                for class in RegClass::ALL {
                    let mut src_spilled: SmallVec<Temp, 8> = SmallVec::new();
                    ins.inst.for_each_use(|r| {
                        if let Reg::Temp(t) = r {
                            if f.temp_class(t) == class
                                && loc_at(&temp_pieces, &st.bundles, t, Point::read(gi)).is_none()
                                && !src_spilled.contains(&t)
                            {
                                src_spilled.push(t);
                            }
                        }
                    });
                    let mut need = src_spilled.len();
                    let mut dst_extra = false;
                    ins.inst.for_each_def(|r| {
                        if let Reg::Temp(t) = r {
                            if f.temp_class(t) == class
                                && loc_at(&temp_pieces, &st.bundles, t, Point::write(gi)).is_none()
                            {
                                dst_extra = src_spilled.is_empty();
                            }
                        }
                    });
                    if dst_extra {
                        need += 1;
                    }
                    if need == 0 {
                        continue;
                    }
                    loop {
                        let free = st
                            .class_range(class)
                            .filter(|&d| !st.regs[d].overlaps(span.start.0, span.end.0))
                            .count();
                        if free >= need {
                            break;
                        }
                        // Victim: the overlapping bundle with the greatest
                        // priority (longest total life — the cheapest per
                        // point to park in memory), lowest id on ties.
                        let mut victim: Option<(u64, u32, usize)> = None;
                        for d in st.class_range(class) {
                            for (_, _, owner) in
                                st.regs[d].overlapping_entries(span.start.0, span.end.0)
                            {
                                if let Some(t) = owner {
                                    let prio = st.bundles[t.0 as usize].prio;
                                    if victim
                                        .is_none_or(|(p, v, _)| prio > p || (prio == p && t.0 < v))
                                    {
                                        victim = Some((prio, t.0, d));
                                    }
                                }
                            }
                        }
                        let (_, v, d) = victim.unwrap_or_else(|| {
                            panic!(
                                "ion cannot satisfy point lifetimes at instruction {gi} \
                                 (class {class})"
                            )
                        });
                        if sink.enabled() {
                            sink.event(&TraceEvent::PackUnassign { temp: st.repr(v), gi });
                        }
                        st.regs[d].remove_owner(Temp(v));
                        st.bundles[v as usize].assignment = None;
                        st.bundles[v as usize].spilled = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    stats.iterations = rounds;
    stats.spilled_temps = (0..nt)
        .filter(|&ti| {
            temp_pieces[ti].iter().any(|&(_, _, bid)| st.bundles[bid as usize].assignment.is_none())
        })
        .count();

    // Phase 5: connection copies between adjacent pieces cut mid-block by a
    // use-gap split. Block-top cuts are repaired by edge resolution instead.
    // All movement at one cut is a parallel copy (two bundles can swap
    // registers at the same point), so it runs through the shared
    // sequencer, with tags remapped to the eviction family — these are
    // in-block spill decisions, not CFG repairs.
    let mut connections: Vec<(u32, EdgeOp)> = Vec::new();
    for (ti, pieces) in temp_pieces.iter().enumerate() {
        let t = Temp(ti as u32);
        for w in pieces.windows(2) {
            let ((_, e1, b1), (s2, _, b2)) = (w[0], w[1]);
            if e1 + 1 != s2 || st.block_tops.binary_search(&s2).is_ok() {
                continue;
            }
            let gi = (s2 - 3) / 4;
            let from = st.bundles[b1 as usize].assignment;
            let to = st.bundles[b2 as usize].assignment;
            match (from, to) {
                (Some(r1), Some(r2)) if r1 != r2 => {
                    connections.push((gi, EdgeOp::Move { temp: t, src: r1, dst: r2 }));
                }
                (Some(r1), None) => connections.push((gi, EdgeOp::Store { temp: t, src: r1 })),
                (None, Some(r2)) => connections.push((gi, EdgeOp::Load { temp: t, dst: r2 })),
                _ => {}
            }
        }
    }
    connections.sort_by_key(|&(gi, _)| gi);

    // Phase 6: rewrite. Every temp operand becomes its piece's register, or
    // a scratch register free over the instruction's span when the piece
    // lives in memory.
    fn ensure_slot(f: &mut Function, t: Temp, stats: &mut AllocStats) {
        if f.spill_slots[t.index()].is_none() {
            stats.spilled_temps += 1;
        }
        f.slot_for(t);
    }
    let mut pre: Vec<Ins> = Vec::new();
    let mut post: Vec<Ins> = Vec::new();
    let mut seq: Vec<(Inst, SpillTag)> = Vec::new();
    let mut conn_ops: Vec<EdgeOp> = Vec::new();
    let mut free: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    let mut scratch_of: SmallVec<(Temp, PhysReg), 8> = SmallVec::new();
    let mut src_temps: SmallVec<Temp, 8> = SmallVec::new();
    let mut conn_i = 0usize;
    for b in f.block_ids().collect::<Vec<_>>() {
        let first = lt.first_inst(b);
        if sink.enabled() {
            sink.event(&TraceEvent::BlockTop { block: b, first_gi: first });
        }
        let insts = std::mem::take(&mut f.block_mut(b).insts);
        let mut out: Vec<Ins> = Vec::with_capacity(insts.len());
        for (k, mut ins) in insts.into_iter().enumerate() {
            let gi = first + k as u32;
            let span = point_span(gi);
            // Connection copies first: their sources die at the cut, before
            // any scratch load below could clobber them.
            conn_ops.clear();
            while conn_i < connections.len() && connections[conn_i].0 == gi {
                conn_ops.push(connections[conn_i].1);
                conn_i += 1;
            }
            if !conn_ops.is_empty() {
                seq.clear();
                let mut cycle_spilled: SmallVec<Temp, 8> = SmallVec::new();
                sequentialize_into(&conn_ops, &mut seq, |t| cycle_spilled.push(t));
                for op in &conn_ops {
                    if let EdgeOp::Store { temp, .. } | EdgeOp::Load { temp, .. } = *op {
                        ensure_slot(f, temp, stats);
                    }
                }
                for &t in cycle_spilled.iter() {
                    ensure_slot(f, t, stats);
                }
                for (inst, tag) in seq.drain(..) {
                    let tag = match tag {
                        SpillTag::ResolveStore => SpillTag::EvictStore,
                        SpillTag::ResolveLoad => SpillTag::EvictLoad,
                        SpillTag::ResolveMove => SpillTag::EvictMove,
                        other => other,
                    };
                    stats.record_insert(tag);
                    pre.push(Ins::tagged(inst, tag));
                }
            }
            for class in RegClass::ALL {
                free[class.index()].clear();
                free[class.index()].extend(
                    st.class_range(class)
                        .filter(|&d| !st.regs[d].overlaps(span.start.0, span.end.0)),
                );
            }
            scratch_of.clear();
            src_temps.clear();
            ins.inst.for_each_use(|r| {
                if let Reg::Temp(t) = r {
                    if !src_temps.contains(&t) {
                        src_temps.push(t);
                    }
                }
            });
            for &t in src_temps.iter() {
                if loc_at(&temp_pieces, &st.bundles, t, Point::read(gi)).is_none() {
                    let class = f.temp_class(t);
                    let d = free[class.index()].pop().unwrap_or_else(|| {
                        panic!("no scratch register at instruction {gi} for {t}")
                    });
                    let r = st.phys(d);
                    ensure_slot(f, t, stats);
                    pre.push(Ins::tagged(
                        Inst::SpillLoad { dst: Reg::Phys(r), temp: t },
                        SpillTag::EvictLoad,
                    ));
                    stats.record_insert(SpillTag::EvictLoad);
                    scratch_of.push((t, r));
                }
            }
            ins.inst.for_each_use_mut(|r| {
                if let Reg::Temp(t) = *r {
                    *r = match loc_at(&temp_pieces, &st.bundles, t, Point::read(gi)) {
                        Some(p) => Reg::Phys(p),
                        None => {
                            let (_, p) =
                                scratch_of.iter().find(|(u, _)| *u == t).expect("scratch mapped");
                            Reg::Phys(*p)
                        }
                    };
                }
            });
            let mut def_temp = None;
            ins.inst.for_each_def(|r| {
                if let Reg::Temp(t) = r {
                    def_temp = Some(t);
                }
            });
            if let Some(t) = def_temp {
                let r = match loc_at(&temp_pieces, &st.bundles, t, Point::write(gi)) {
                    Some(p) => p,
                    None => {
                        let class = f.temp_class(t);
                        let r = scratch_of
                            .iter()
                            .find(|(_, p)| p.class == class)
                            .map(|(_, p)| *p)
                            .unwrap_or_else(|| {
                                let d = free[class.index()].pop().unwrap_or_else(|| {
                                    panic!("no scratch register at instruction {gi} for def {t}")
                                });
                                st.phys(d)
                            });
                        ensure_slot(f, t, stats);
                        post.push(Ins::tagged(
                            Inst::SpillStore { src: Reg::Phys(r), temp: t },
                            SpillTag::EvictStore,
                        ));
                        stats.record_insert(SpillTag::EvictStore);
                        r
                    }
                };
                ins.inst.for_each_def_mut(|d| {
                    if matches!(*d, Reg::Temp(_)) {
                        *d = Reg::Phys(r);
                    }
                });
            }
            let is_terminator = ins.inst.is_terminator();
            out.append(&mut pre);
            if is_terminator {
                debug_assert!(post.is_empty(), "terminators define no temporaries");
                out.push(ins);
            } else {
                out.push(ins);
                out.append(&mut post);
            }
        }
        f.block_mut(b).insts = out;
    }

    // Phase 7: edge resolution. The split bundles make locations per-piece,
    // so a temp's register leaving a predecessor can differ from the one
    // its successor expects — the same §2.4 repair as the linear scan, with
    // the parallel-move sequencer and the placement triad, but against
    // piece locations. Ion keeps no cross-edge consistency facts, so a
    // register-to-memory transition always stores.
    let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
    let mut pred_count = vec![0u32; nb];
    for bi in 0..nb {
        for s in f.succs(BlockId(bi as u32)) {
            edges.push((BlockId(bi as u32), s));
            pred_count[s.index()] += 1;
        }
    }
    let mut ops: Vec<EdgeOp> = Vec::new();
    let mut cycle_spilled: Vec<Temp> = Vec::new();
    for (p, s) in edges {
        ops.clear();
        for g in live.live_in(s).iter() {
            let t = live.temp_of(g);
            // Bottom of p = the write slot of its last instruction (the
            // last point a leaving value can occupy); top of s = the
            // boundary before its first.
            let loc_p = loc_at(&temp_pieces, &st.bundles, t, Point(lt.bottom(p).0 - 1));
            let loc_s = loc_at(&temp_pieces, &st.bundles, t, lt.top(s));
            let op = match (loc_p, loc_s) {
                (Some(r1), Some(r2)) if r1 != r2 => Some((
                    EdgeOp::Move { temp: t, src: r1, dst: r2 },
                    ResolveOp::Move { temp: t, src: r1, dst: r2 },
                )),
                (Some(r1), None) => Some((
                    EdgeOp::Store { temp: t, src: r1 },
                    ResolveOp::Store { temp: t, src: r1 },
                )),
                (None, Some(r2)) => {
                    Some((EdgeOp::Load { temp: t, dst: r2 }, ResolveOp::Load { temp: t, dst: r2 }))
                }
                _ => None,
            };
            if let Some((op, rop)) = op {
                ops.push(op);
                if sink.enabled() {
                    sink.event(&TraceEvent::EdgeOp { pred: p, succ: s, op: rop });
                }
            }
        }
        if ops.is_empty() {
            continue;
        }
        cycle_spilled.clear();
        seq.clear();
        sequentialize_into(&ops, &mut seq, |t| cycle_spilled.push(t));
        if sink.enabled() {
            for &t in &cycle_spilled {
                let op = ResolveOp::CycleBreak { temp: t };
                sink.event(&TraceEvent::EdgeOp { pred: p, succ: s, op });
            }
        }
        for t in ops.iter().filter_map(|o| match o {
            EdgeOp::Store { temp, .. } | EdgeOp::Load { temp, .. } => Some(*temp),
            EdgeOp::Move { .. } => None,
        }) {
            ensure_slot(f, t, stats);
        }
        for &t in &cycle_spilled {
            ensure_slot(f, t, stats);
        }
        for (_, tag) in &seq {
            stats.record_insert(*tag);
        }
        let insns = seq.drain(..).map(|(inst, tag)| Ins::tagged(inst, tag));
        if pred_count[s.index()] == 1 {
            f.block_mut(s).insts.splice(0..0, insns);
        } else if f.succs(p).len() == 1 && terminator_is_placement_safe(f, p) {
            let blk = f.block_mut(p);
            let at = blk.insts.len() - 1;
            blk.insts.splice(at..at, insns);
        } else {
            let nb2 = split_edge(f, p, s);
            f.block_mut(nb2).insts.splice(0..0, insns);
        }
    }

    // Phase 8: redundant spill-code elimination. The rewrite above reloads
    // a spilled temporary at every use, so a block that reads the same
    // spilled value twice (or stores it and reads it straight back) carries
    // loads whose destination register provably still holds the slot's
    // value, and stores that rewrite the slot with its own value. A forward
    // scan maintains availability facts `(temp, reg, exact)`:
    //
    //   reg's symbolic claims ⊇ the slot's claims, and with `exact`, the
    //   two claim sets are equal.
    //
    // Superset facts justify dropping a reload (the load would only shrink
    // the register's claims); dropping a store needs `exact` (the store
    // replaces the slot's claims with the register's, so a mere superset
    // could launder a claim the slot never had — the checker would reject
    // the next reload "on some path"). Loads and stores establish exact
    // facts; an inserted move copies its source's fact verbatim, while an
    // untagged program move also mints a fresh definition symbol in its
    // destination and therefore degrades the fact to a superset. Facts die
    // when the register is redefined or a call clobbers the caller-saved
    // set; a store to the slot retires every fact for that temporary
    // (older copies hold the superseded value).
    let mut avail: Vec<(Temp, PhysReg, bool)> = Vec::new();
    let mut avail_out: Vec<Option<Vec<(Temp, PhysReg, bool)>>> = vec![None; f.blocks.len()];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); f.blocks.len()];
    for bi in 0..f.blocks.len() {
        for s in f.succs(BlockId(bi as u32)) {
            preds[s.index()].push(bi as u32);
        }
    }
    for bi in 0..f.blocks.len() {
        avail.clear();
        // A single-predecessor block inherits the predecessor's facts when
        // that block has already been scanned (its code is final).
        if let [p] = preds[bi][..] {
            if (p as usize) < bi {
                if let Some(out) = avail_out[p as usize].as_deref() {
                    avail.extend_from_slice(out);
                }
            }
        }
        let blk = &mut f.blocks[bi];
        blk.insts.retain_mut(|ins| {
            match ins.inst {
                Inst::SpillLoad { dst: Reg::Phys(p), temp: t } if ins.tag != SpillTag::None => {
                    if avail.iter().any(|&(u, q, _)| (u, q) == (t, p)) {
                        stats.record_remove(ins.tag);
                        return false;
                    }
                    avail.retain(|&(_, q, _)| q != p);
                    avail.push((t, p, true));
                }
                Inst::SpillStore { src: Reg::Phys(p), temp: t } => {
                    if avail.contains(&(t, p, true)) {
                        if ins.tag != SpillTag::None {
                            stats.record_remove(ins.tag);
                            return false;
                        }
                    } else {
                        avail.retain(|&(u, _, _)| u != t);
                        avail.push((t, p, true));
                    }
                }
                Inst::Mov { dst: Reg::Phys(d), src: Reg::Phys(s) } if d != s => {
                    let inserted = ins.tag != SpillTag::None;
                    let carried: Vec<(Temp, bool)> = avail
                        .iter()
                        .filter(|&&(_, q, _)| q == s)
                        .map(|&(t, _, exact)| (t, exact && inserted))
                        .collect();
                    avail.retain(|&(_, q, _)| q != d);
                    avail.extend(carried.into_iter().map(|(t, exact)| (t, d, exact)));
                }
                _ => {
                    if ins.inst.is_call() {
                        avail.retain(|&(_, q, _)| !spec.is_caller_saved(q));
                    }
                    ins.inst.for_each_def(|r| {
                        if let Reg::Phys(p) = r {
                            avail.retain(|&(_, q, _)| q != p);
                        }
                    });
                }
            }
            true
        });
        avail_out[bi] = Some(avail.clone());
    }

    // A slot nothing ever reloads is write-only — spill slots are
    // function-private, so every store to it is dead. (Cheap whole-slot
    // form of the paper's §2.4 dead-store suggestion; the per-path version
    // lives in the optional post-allocation cleanup pass.)
    let mut slot_read = BitSet::new(f.num_temps());
    for blk in &f.blocks {
        for ins in &blk.insts {
            if let Inst::SpillLoad { temp, .. } = ins.inst {
                slot_read.insert(temp.index());
            }
        }
    }
    for blk in &mut f.blocks {
        blk.insts.retain(|ins| match ins.inst {
            Inst::SpillStore { temp, .. }
                if ins.tag != SpillTag::None && !slot_read.contains(temp.index()) =>
            {
                stats.record_remove(ins.tag);
                false
            }
            _ => true,
        });
    }

    // The SSA copies that coalesced now read and write the same register;
    // drop them. Only *tagged* moves may go: the symbolic checker pairs the
    // untagged stream 1:1 with the original, so original identity moves must
    // survive until the caller's post-allocation peephole.
    for blk in &mut f.blocks {
        blk.insts.retain(|ins| {
            ins.tag == SpillTag::None || !matches!(ins.inst, Inst::Mov { dst, src } if dst == src)
        });
    }
}

/// True if the block's terminator reads no register, so code may be placed
/// immediately before it.
fn terminator_is_placement_safe(f: &Function, b: BlockId) -> bool {
    let mut uses = 0;
    f.block(b).terminator().for_each_use(|_| uses += 1);
    uses == 0
}

/// The pieces of one split, in ascending start order.
struct SplitPieces {
    kind: SplitKind,
    groups: Vec<Vec<u32>>,
}

/// Splits bundle `bid`: at block boundaries when it spans several blocks,
/// at the widest gap between its references inside a single block. Returns
/// `None` when no cut makes progress (the caller spills).
fn split(st: &mut State<'_>, bid: u32) -> Option<SplitPieces> {
    // Cut every range at each block top strictly inside it, then group the
    // subranges by block.
    let mut parts: Vec<(usize, Temp, Segment)> = Vec::new();
    for &r in &st.bundles[bid as usize].ranges {
        let lr = st.ranges[r as usize];
        let (mut a, b) = (lr.seg.start.0, lr.seg.end.0);
        let lo = st.block_tops.partition_point(|&c| c <= a);
        let hi = st.block_tops.partition_point(|&c| c <= b);
        for &c in &st.block_tops[lo..hi] {
            parts.push((st.block_of(Point(a)), lr.temp, Segment::new(Point(a), Point(c - 1))));
            a = c;
        }
        parts.push((st.block_of(Point(a)), lr.temp, Segment::new(Point(a), Point(b))));
    }
    parts.sort_by_key(|&(blk, _, s)| (blk, s.start));
    let multi_block = parts.windows(2).any(|w| w[0].0 != w[1].0);
    if multi_block {
        // Bisect at the median touched block rather than shattering into
        // per-block shards: every extra piece is a potential edge-resolution
        // move, so fragmentation should grow only where conflicts persist
        // (the halves re-enter the queue and bisect again on failure).
        let mut blocks: Vec<usize> = parts.iter().map(|&(blk, _, _)| blk).collect();
        blocks.dedup();
        let mid = blocks[blocks.len() / 2];
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
        for (blk, temp, seg) in parts {
            let r = push_range(st, temp, seg);
            groups[usize::from(blk >= mid)].push(r);
        }
        return Some(SplitPieces { kind: SplitKind::BlockBoundary, groups });
    }

    // Single block: cut at the boundary before the far side of the widest
    // gap between distinct referencing instructions.
    let mut gis: Vec<u32> = Vec::new();
    for &r in &st.bundles[bid as usize].ranges {
        let lr = st.ranges[r as usize];
        let rs = st.lt.refs(lr.temp);
        let lo = rs.partition_point(|rp| rp.point < lr.seg.start);
        let hi = rs.partition_point(|rp| rp.point <= lr.seg.end);
        gis.extend(rs[lo..hi].iter().map(|rp| (rp.point.0 - 3) / 4));
    }
    gis.sort_unstable();
    gis.dedup();
    if gis.len() < 2 {
        return None;
    }
    let (mut cut_gi, mut widest) = (0u32, 0u32);
    for w in gis.windows(2) {
        if w[1] - w[0] > widest {
            widest = w[1] - w[0];
            cut_gi = w[1];
        }
    }
    let c = Point::before(cut_gi).0;
    let mut before: Vec<u32> = Vec::new();
    let mut after: Vec<u32> = Vec::new();
    for r in st.bundles[bid as usize].ranges.clone() {
        let lr = st.ranges[r as usize];
        if lr.seg.end.0 < c {
            let nr = push_range(st, lr.temp, lr.seg);
            before.push(nr);
        } else if lr.seg.start.0 >= c {
            let nr = push_range(st, lr.temp, lr.seg);
            after.push(nr);
        } else {
            let b1 = push_range(st, lr.temp, Segment::new(lr.seg.start, Point(c - 1)));
            before.push(b1);
            let a1 = push_range(st, lr.temp, Segment::new(Point(c), lr.seg.end));
            after.push(a1);
        }
    }
    if before.is_empty() || after.is_empty() {
        return None;
    }
    Some(SplitPieces { kind: SplitKind::UseGap, groups: vec![before, after] })
}

fn push_range(st: &mut State<'_>, temp: Temp, seg: Segment) -> u32 {
    let r = st.ranges.len() as u32;
    st.ranges.push(LiveRange { temp, seg });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, FunctionBuilder, ModuleBuilder};

    fn module_of(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t", 0);
        let id = mb.add(f);
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn straight_line_no_spills() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        b.movi(x, 2);
        b.movi(y, 3);
        let z = b.int_temp("z");
        b.add(z, x, y);
        b.ret(Some(z.into()));
        let mut f = b.finish();
        let stats = IonAllocator::new().allocate_function(&mut f, &spec);
        assert!(f.allocated);
        assert!(f.validate().is_ok());
        assert_eq!(stats.inserted_total(), 0);
        assert_eq!(stats.spilled_temps, 0);
    }

    #[test]
    fn pressure_forces_spills_and_verifies() {
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let ts: Vec<_> = (0..8).map(|i| b.int_temp(&format!("t{i}"))).collect();
        for (i, &t) in ts.iter().enumerate() {
            b.movi(t, i as i64);
        }
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        for &t in &ts {
            b.add(acc, acc, t);
        }
        b.ret(Some(acc.into()));
        let module = module_of(b.finish());
        let mut m = module.clone();
        let stats = IonAllocator::new().allocate_module(&mut m, &spec);
        assert!(stats.spilled_temps + stats.lifetime_splits as usize > 0);
        lsra_vm::verify_allocation(&module, &m, &spec, &[], lsra_vm::VmOptions::default())
            .expect("verified");
    }

    #[test]
    fn loop_with_branches_verifies() {
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let ts: Vec<_> = (0..5).map(|i| b.int_temp(&format!("t{i}"))).collect();
        for &t in &ts {
            b.movi(t, 1);
        }
        let n = b.int_temp("n");
        b.movi(n, 10);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.branch(Cond::Le, n, exit, body);
        b.switch_to(body);
        for &t in &ts {
            b.add(t, t, n);
        }
        b.addi(n, n, -1);
        b.jump(head);
        b.switch_to(exit);
        let out = b.int_temp("out");
        b.movi(out, 0);
        for &t in &ts {
            b.add(out, out, t);
        }
        b.ret(Some(out.into()));
        let module = module_of(b.finish());
        let mut m = module.clone();
        IonAllocator::new().allocate_module(&mut m, &spec);
        lsra_vm::verify_allocation(&module, &m, &spec, &[], lsra_vm::VmOptions::default())
            .expect("verified");
    }

    #[test]
    fn allocation_is_deterministic() {
        let spec = MachineSpec::small(4, 2);
        let build = || {
            let mut b = FunctionBuilder::new(&spec, "main", &[]);
            let ts: Vec<_> = (0..7).map(|i| b.int_temp(&format!("t{i}"))).collect();
            for (i, &t) in ts.iter().enumerate() {
                b.movi(t, i as i64);
            }
            let acc = b.int_temp("acc");
            b.movi(acc, 0);
            for &t in &ts {
                b.add(acc, acc, t);
            }
            b.ret(Some(acc.into()));
            module_of(b.finish())
        };
        let mut a = build();
        let mut b2 = build();
        IonAllocator::new().allocate_module(&mut a, &spec);
        IonAllocator::new().allocate_module(&mut b2, &spec);
        assert_eq!(format!("{a}"), format!("{b2}"));
    }

    #[test]
    fn backtracking_fires_under_block_pressure() {
        // Long-lived temps crossing a high-pressure region should split or
        // evict rather than spill outright.
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let keep: Vec<_> = (0..3).map(|i| b.int_temp(&format!("k{i}"))).collect();
        for (i, &t) in keep.iter().enumerate() {
            b.movi(t, i as i64);
        }
        let mid = b.block();
        let tail = b.block();
        b.jump(mid);
        b.switch_to(mid);
        let hot: Vec<_> = (0..4).map(|i| b.int_temp(&format!("h{i}"))).collect();
        for (i, &t) in hot.iter().enumerate() {
            b.movi(t, 10 + i as i64);
        }
        let hacc = b.int_temp("hacc");
        b.movi(hacc, 0);
        for &t in &hot {
            b.add(hacc, hacc, t);
        }
        b.jump(tail);
        b.switch_to(tail);
        let out = b.int_temp("out");
        b.movi(out, 0);
        for &t in &keep {
            b.add(out, out, t);
        }
        b.add(out, out, hacc);
        b.ret(Some(out.into()));
        let module = module_of(b.finish());
        let mut m = module.clone();
        let stats = IonAllocator::new().allocate_module(&mut m, &spec);
        assert!(
            stats.lifetime_splits + stats.evictions > 0,
            "expected backtracking under pressure: {stats:?}"
        );
        lsra_vm::verify_allocation(&module, &m, &spec, &[], lsra_vm::VmOptions::default())
            .expect("verified");
    }
}

//! Basic blocks.

use crate::inst::{Ins, Inst};

/// Identifies a basic block within a function.
///
/// Block ids index into [`crate::Function::blocks`]; the order of that vector
/// is the *linear order* the paper's allocator scans (Figure 1b).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Dense index of this block within its function.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A basic block: a straight-line instruction sequence ending in exactly one
/// terminator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// The block's instructions, terminator last.
    pub insts: Vec<Ins>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Self {
        Block::default()
    }

    /// The block's terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or does not end with a terminator (which
    /// only happens for a function still under construction).
    pub fn terminator(&self) -> &Inst {
        let last = &self.insts.last().expect("empty block has no terminator").inst;
        assert!(last.is_terminator(), "block does not end in a terminator: {last:?}");
        last
    }

    /// Successor blocks of this block.
    pub fn succs(&self) -> Vec<BlockId> {
        self.terminator().branch_targets()
    }

    /// True if the block ends with a well-formed terminator and contains no
    /// interior terminators.
    pub fn is_well_formed(&self) -> bool {
        match self.insts.split_last() {
            Some((last, body)) => {
                last.inst.is_terminator() && body.iter().all(|i| !i.inst.is_terminator())
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn well_formedness() {
        let mut b = Block::new();
        assert!(!b.is_well_formed());
        b.insts.push(Inst::Jump { target: BlockId(1) }.into());
        assert!(b.is_well_formed());
        assert_eq!(b.succs(), vec![BlockId(1)]);
        b.insts.push(Inst::Ret { ret_regs: vec![] }.into());
        assert!(!b.is_well_formed(), "interior terminator must be rejected");
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(5).to_string(), "b5");
    }
}

//! An ergonomic builder for IR functions.
//!
//! The builder hides the calling-convention plumbing: function parameters
//! arrive through explicit moves from argument registers (exactly the moves
//! the paper's §2.5 move optimization targets), and calls marshal arguments
//! into argument registers and results out of return registers.

use crate::block::BlockId;
use crate::function::Function;
use crate::inst::{Callee, Cond, ExtFn, FuncId, Ins, Inst, OpCode};
use crate::machine::MachineSpec;
use crate::module::Module;
use crate::reg::{Reg, RegClass, Temp};

/// Builds one [`Function`] instruction by instruction.
///
/// # Examples
///
/// ```
/// use lsra_ir::{FunctionBuilder, MachineSpec, RegClass, Cond};
///
/// let spec = MachineSpec::alpha_like();
/// let mut b = FunctionBuilder::new(&spec, "add1", &[RegClass::Int]);
/// let x = b.param(0);
/// let one = b.int_temp("one");
/// let sum = b.int_temp("sum");
/// b.movi(one, 1);
/// b.add(sum, x, one);
/// b.ret(Some(sum.into()));
/// let f = b.finish();
/// assert!(f.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    spec: &'a MachineSpec,
    func: Function,
    cur: BlockId,
}

impl<'a> FunctionBuilder<'a> {
    /// Starts a function with parameters of the given classes. The entry
    /// block is created and selected, and the parameter-register moves are
    /// emitted into it.
    ///
    /// # Panics
    ///
    /// Panics if a class has more parameters than the machine has argument
    /// registers (this IR does not model stack-passed arguments).
    pub fn new(spec: &'a MachineSpec, name: impl Into<String>, params: &[RegClass]) -> Self {
        let mut func = Function::new(name);
        let entry = func.add_block();
        let mut b = FunctionBuilder { spec, func, cur: entry };
        let mut counts = [0usize; 2];
        for (i, &class) in params.iter().enumerate() {
            let t = b.func.new_temp(class, Some(format!("arg{i}")));
            let argno = counts[class.index()];
            counts[class.index()] += 1;
            let phys = spec
                .arg_reg(class, argno)
                .unwrap_or_else(|| panic!("too many {class} parameters for {}", spec.name()));
            b.emit(Inst::Mov { dst: Reg::Temp(t), src: Reg::Phys(phys) });
            b.func.params.push(t);
        }
        b
    }

    /// The `i`-th parameter temporary.
    pub fn param(&self, i: usize) -> Temp {
        self.func.params[i]
    }

    /// Number of declared parameters.
    pub fn num_params(&self) -> usize {
        self.func.params.len()
    }

    /// Creates a fresh integer temporary.
    pub fn int_temp(&mut self, name: &str) -> Temp {
        self.func.new_temp(RegClass::Int, Some(name.to_string()))
    }

    /// Creates a fresh floating-point temporary.
    pub fn float_temp(&mut self, name: &str) -> Temp {
        self.func.new_temp(RegClass::Float, Some(name.to_string()))
    }

    /// Creates a fresh unnamed temporary of `class`.
    pub fn temp(&mut self, class: RegClass) -> Temp {
        self.func.new_temp(class, None)
    }

    /// Creates a new (empty, unselected) block.
    pub fn block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Selects the block receiving subsequently emitted instructions.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The currently selected block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Emits a raw instruction into the current block.
    pub fn emit(&mut self, inst: Inst) {
        self.func.block_mut(self.cur).insts.push(Ins::new(inst));
    }

    /// `dst = imm` (integer).
    pub fn movi(&mut self, dst: impl Into<Reg>, imm: i64) {
        self.emit(Inst::MovI { dst: dst.into(), imm });
    }

    /// `dst = imm` (float).
    pub fn movf(&mut self, dst: impl Into<Reg>, imm: f64) {
        self.emit(Inst::MovF { dst: dst.into(), imm });
    }

    /// `dst = src` (same-class move).
    pub fn mov(&mut self, dst: impl Into<Reg>, src: impl Into<Reg>) {
        self.emit(Inst::Mov { dst: dst.into(), src: src.into() });
    }

    /// Emits a binary ALU operation.
    pub fn op2(&mut self, op: OpCode, dst: impl Into<Reg>, a: impl Into<Reg>, b: impl Into<Reg>) {
        debug_assert_eq!(op.arity(), 2);
        self.emit(Inst::Op { op, dst: dst.into(), srcs: vec![a.into(), b.into()] });
    }

    /// Emits a unary ALU operation.
    pub fn op1(&mut self, op: OpCode, dst: impl Into<Reg>, a: impl Into<Reg>) {
        debug_assert_eq!(op.arity(), 1);
        self.emit(Inst::Op { op, dst: dst.into(), srcs: vec![a.into()] });
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: impl Into<Reg>, a: impl Into<Reg>, b: impl Into<Reg>) {
        self.op2(OpCode::Add, dst, a, b);
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, dst: impl Into<Reg>, a: impl Into<Reg>, b: impl Into<Reg>) {
        self.op2(OpCode::Sub, dst, a, b);
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, dst: impl Into<Reg>, a: impl Into<Reg>, b: impl Into<Reg>) {
        self.op2(OpCode::Mul, dst, a, b);
    }

    /// `dst = src + imm` via a fresh constant temporary (RISC style).
    pub fn addi(&mut self, dst: impl Into<Reg>, src: impl Into<Reg>, imm: i64) {
        let c = self.temp(RegClass::Int);
        self.movi(c, imm);
        self.add(dst, src, c);
    }

    /// `dst = memory[base + offset]`.
    pub fn load(&mut self, dst: impl Into<Reg>, base: impl Into<Reg>, offset: i32) {
        self.emit(Inst::Load { dst: dst.into(), base: base.into(), offset });
    }

    /// `memory[base + offset] = src`.
    pub fn store(&mut self, src: impl Into<Reg>, base: impl Into<Reg>, offset: i32) {
        self.emit(Inst::Store { src: src.into(), base: base.into(), offset });
    }

    /// Unconditional jump (terminates the current block).
    pub fn jump(&mut self, target: BlockId) {
        self.emit(Inst::Jump { target });
    }

    /// Conditional branch comparing `src` against zero.
    pub fn branch(
        &mut self,
        cond: Cond,
        src: impl Into<Reg>,
        then_tgt: BlockId,
        else_tgt: BlockId,
    ) {
        self.emit(Inst::Branch { cond, src: src.into(), then_tgt, else_tgt });
    }

    /// Returns from the function, optionally with a value (moved into the
    /// return register of its class first).
    pub fn ret(&mut self, val: Option<Reg>) {
        let mut ret_regs = Vec::new();
        if let Some(v) = val {
            let class = self.func.reg_class(v);
            let r = self.spec.ret_reg(class);
            self.emit(Inst::Mov { dst: Reg::Phys(r), src: v });
            ret_regs.push(r);
        }
        self.emit(Inst::Ret { ret_regs });
    }

    /// Calls `callee` with `args`, returning the result (if `ret_class` is
    /// given) in a fresh temporary.
    ///
    /// Marshals arguments into argument registers class by class, emits the
    /// call, and moves the return register into the result temporary —
    /// exactly the shape the paper's Alpha code generator produces.
    ///
    /// # Panics
    ///
    /// Panics if a class runs out of argument registers.
    pub fn call(
        &mut self,
        callee: Callee,
        args: &[Reg],
        ret_class: Option<RegClass>,
    ) -> Option<Temp> {
        let mut counts = [0usize; 2];
        let mut arg_regs = Vec::new();
        let moves: Vec<(Reg, Reg)> = args
            .iter()
            .map(|&a| {
                let class = self.func.reg_class(a);
                let argno = counts[class.index()];
                counts[class.index()] += 1;
                let phys = self.spec.arg_reg(class, argno).unwrap_or_else(|| {
                    panic!("too many {class} arguments for {}", self.spec.name())
                });
                arg_regs.push(phys);
                (Reg::Phys(phys), a)
            })
            .collect();
        for (dst, src) in moves {
            self.emit(Inst::Mov { dst, src });
        }
        let mut ret_regs = Vec::new();
        if let Some(c) = ret_class {
            ret_regs.push(self.spec.ret_reg(c));
        }
        self.emit(Inst::Call { callee, arg_regs, ret_regs: ret_regs.clone() });
        ret_class.map(|c| {
            let t = self.func.new_temp(c, None);
            self.emit(Inst::Mov { dst: Reg::Temp(t), src: Reg::Phys(ret_regs[0]) });
            t
        })
    }

    /// Calls an intra-module function.
    pub fn call_func(
        &mut self,
        f: FuncId,
        args: &[Reg],
        ret_class: Option<RegClass>,
    ) -> Option<Temp> {
        self.call(Callee::Func(f), args, ret_class)
    }

    /// Calls an external routine.
    pub fn call_ext(
        &mut self,
        f: ExtFn,
        args: &[Reg],
        ret_class: Option<RegClass>,
    ) -> Option<Temp> {
        self.call(Callee::Ext(f), args, ret_class)
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics (in debug form, via `validate`) if any block lacks a
    /// terminator or an operand is ill-typed.
    pub fn finish(self) -> Function {
        if let Err(e) = self.func.validate() {
            panic!("FunctionBuilder produced invalid function: {e}");
        }
        self.func
    }

    /// The machine this builder targets.
    pub fn spec(&self) -> &MachineSpec {
        self.spec
    }
}

/// Builds a [`Module`] from a set of builder-produced functions.
///
/// This is a thin convenience over [`Module`]; it exists so workload
/// generators can reserve data and declare functions in one place.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts a module with `memory_words` words of data memory.
    pub fn new(name: impl Into<String>, memory_words: usize) -> Self {
        ModuleBuilder { module: Module::new(name, memory_words) }
    }

    /// Reserves static data; see [`Module::reserve`].
    pub fn reserve(&mut self, words: usize, init: &[i64]) -> i64 {
        self.module.reserve(words, init)
    }

    /// Pre-declares a function id so mutually recursive calls can be built.
    /// The returned id must later be filled by [`ModuleBuilder::define`].
    pub fn declare(&mut self) -> FuncId {
        self.module.add_func(Function::new("<declared>"))
    }

    /// Fills in a previously declared function.
    pub fn define(&mut self, id: FuncId, f: Function) {
        *self.module.func_mut(id) = f;
    }

    /// Adds a function, returning its id.
    pub fn add(&mut self, f: Function) -> FuncId {
        self.module.add_func(f)
    }

    /// Sets the entry function.
    pub fn entry(&mut self, id: FuncId) {
        self.module.entry = id;
    }

    /// Finishes the module.
    ///
    /// # Panics
    ///
    /// Panics if the module fails validation.
    pub fn finish(self) -> Module {
        if let Err(e) = self.module.validate() {
            panic!("ModuleBuilder produced invalid module: {e}");
        }
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_arrive_via_arg_register_moves() {
        let spec = MachineSpec::alpha_like();
        let b = FunctionBuilder::new(&spec, "f", &[RegClass::Int, RegClass::Float, RegClass::Int]);
        let f = b.func;
        // Three moves: int arg0 <- r1, float arg1 <- f1, int arg2 <- r2.
        let insts = &f.block(BlockId(0)).insts;
        assert_eq!(insts.len(), 3);
        match &insts[2].inst {
            Inst::Mov { src: Reg::Phys(p), .. } => {
                assert_eq!(*p, spec.arg_reg(RegClass::Int, 1).unwrap());
            }
            other => panic!("expected move, got {other:?}"),
        }
    }

    #[test]
    fn call_marshals_args_and_result() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "f", &[]);
        let x = b.int_temp("x");
        b.movi(x, 5);
        let r = b.call_ext(ExtFn::GetChar, &[], Some(RegClass::Int)).unwrap();
        let sum = b.int_temp("sum");
        b.add(sum, x, r);
        b.ret(Some(sum.into()));
        let f = b.finish();
        assert!(f.validate().is_ok());
        assert_eq!(f.count_insts(|i| i.is_call()), 1);
        // result move from r0 present
        let ret0 = spec.ret_reg(RegClass::Int);
        assert_eq!(
            f.count_insts(|i| matches!(i, Inst::Mov { src: Reg::Phys(p), .. } if *p == ret0)),
            1
        );
    }

    #[test]
    #[should_panic(expected = "invalid function")]
    fn finish_rejects_unterminated_blocks() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "f", &[]);
        let x = b.int_temp("x");
        b.movi(x, 5); // no terminator
        let _ = b.finish();
    }

    #[test]
    fn module_builder_declares_and_defines() {
        let spec = MachineSpec::alpha_like();
        let mut mb = ModuleBuilder::new("m", 16);
        let callee = mb.declare();
        // callee: returns 7
        let mut cb = FunctionBuilder::new(&spec, "seven", &[]);
        let c = cb.int_temp("c");
        cb.movi(c, 7);
        cb.ret(Some(c.into()));
        mb.define(callee, cb.finish());
        // main: calls callee
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let r = b.call_func(callee, &[], Some(RegClass::Int)).unwrap();
        b.ret(Some(r.into()));
        let main = mb.add(b.finish());
        mb.entry(main);
        let m = mb.finish();
        assert_eq!(m.funcs.len(), 2);
        assert!(m.validate().is_ok());
    }
}

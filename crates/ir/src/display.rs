//! Textual form of the IR, for diagnostics, examples, and golden tests.

use std::fmt;

use crate::function::Function;
use crate::inst::{Callee, Inst, SpillTag};
use crate::module::Module;

struct InstDisplay<'a> {
    inst: &'a Inst,
    func: &'a Function,
}

impl fmt::Display for InstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Inst::Op { op, dst, srcs } => {
                write!(f, "{dst} = {}", op.mnemonic())?;
                for (i, s) in srcs.iter().enumerate() {
                    write!(f, "{} {s}", if i == 0 { "" } else { "," })?;
                }
                Ok(())
            }
            Inst::MovI { dst, imm } => write!(f, "{dst} = {imm}"),
            Inst::MovF { dst, imm } => write!(f, "{dst} = {imm:?}"),
            Inst::Mov { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Load { dst, base, offset } => write!(f, "{dst} = ld [{base}+{offset}]"),
            Inst::Store { src, base, offset } => write!(f, "st [{base}+{offset}], {src}"),
            Inst::SpillLoad { dst, temp } => {
                let slot = self.func.spill_slots[temp.index()];
                match slot {
                    Some(s) => write!(f, "{dst} = reload {temp} (slot {})", s.0),
                    None => write!(f, "{dst} = reload {temp}"),
                }
            }
            Inst::SpillStore { src, temp } => {
                let slot = self.func.spill_slots[temp.index()];
                match slot {
                    Some(s) => write!(f, "spill {temp} (slot {}), {src}", s.0),
                    None => write!(f, "spill {temp}, {src}"),
                }
            }
            Inst::Call { callee, arg_regs, ret_regs } => {
                match callee {
                    Callee::Func(id) => write!(f, "call @{}", id.0)?,
                    Callee::Ext(e) => write!(f, "call !{}", e.name())?,
                }
                write!(f, " (")?;
                for (i, a) in arg_regs.iter().enumerate() {
                    write!(f, "{}{a}", if i == 0 { "" } else { ", " })?;
                }
                write!(f, ")")?;
                if !ret_regs.is_empty() {
                    write!(f, " ->")?;
                    for r in ret_regs {
                        write!(f, " {r}")?;
                    }
                }
                Ok(())
            }
            Inst::Jump { target } => write!(f, "jmp {target}"),
            Inst::Branch { cond, src, then_tgt, else_tgt } => {
                write!(f, "b{} {src}, {then_tgt}, {else_tgt}", cond.mnemonic())
            }
            Inst::Ret { ret_regs } => {
                write!(f, "ret")?;
                for r in ret_regs {
                    write!(f, " {r}")?;
                }
                Ok(())
            }
        }
    }
}

impl Function {
    /// Renders one instruction in textual form.
    pub fn display_inst<'a>(&'a self, inst: &'a Inst) -> impl fmt::Display + 'a {
        InstDisplay { inst, func: self }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func @{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            write!(f, "{}{p}:{}", if i == 0 { "" } else { ", " }, self.temp_class(*p))?;
        }
        writeln!(f, ") {{")?;
        // The temporary table, so the textual form is parseable without
        // class inference (see `lsra_ir::parse`).
        if self.num_temps() > 0 {
            write!(f, "  temps")?;
            for (i, info) in self.temps.iter().enumerate() {
                write!(f, " t{i}:{}", info.class)?;
            }
            writeln!(f)?;
        }
        for b in self.block_ids() {
            writeln!(f, "{b}:")?;
            for ins in &self.block(b).insts {
                write!(f, "  {}", InstDisplay { inst: &ins.inst, func: self })?;
                if ins.tag != SpillTag::None {
                    write!(f, "    ; {:?}", ins.tag)?;
                }
                writeln!(f)?;
            }
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} ({} words data)", self.name, self.memory_words)?;
        writeln!(f, "entry @{}", self.entry.0)?;
        if !self.data.is_empty() {
            write!(f, "data")?;
            for w in &self.data {
                write!(f, " {w}")?;
            }
            writeln!(f)?;
        }
        for (i, func) in self.funcs.iter().enumerate() {
            writeln!(f, "; @{i}")?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::machine::MachineSpec;
    use crate::reg::RegClass;

    #[test]
    fn function_renders_all_parts() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "demo", &[RegClass::Int]);
        let x = b.param(0);
        let y = b.int_temp("y");
        b.movi(y, 3);
        let z = b.int_temp("z");
        b.add(z, x, y);
        b.ret(Some(z.into()));
        let f = b.finish();
        let s = f.to_string();
        assert!(s.contains("func @demo(t0:i)"), "got: {s}");
        assert!(s.contains("t1 = 3"), "got: {s}");
        assert!(s.contains("t2 = add t0, t1"), "got: {s}");
        assert!(s.contains("ret r0"), "got: {s}");
    }
}

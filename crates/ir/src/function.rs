//! Functions: CFGs of basic blocks plus the temporary table.

use std::fmt;

use crate::block::{Block, BlockId};
use crate::inst::{Inst, OpCode};
use crate::reg::{Reg, RegClass, Temp};

/// Per-temporary metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TempInfo {
    /// Register class the temporary must be allocated in.
    pub class: RegClass,
    /// Optional source-level name (for diagnostics and printing).
    pub name: Option<String>,
}

/// A spill-slot index within a function's frame.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u32);

impl SlotId {
    /// Dense index of the slot in the frame.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A function: a list of basic blocks in *linear order* (the order the
/// linear-scan allocator sweeps, Figure 1b of the paper), a temporary table,
/// and — after allocation — a spill-slot assignment.
///
/// The entry block is always block 0.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Basic blocks; vector order is the linear order and `blocks[0]` is the
    /// entry.
    pub blocks: Vec<Block>,
    /// Temporary metadata, indexed by [`Temp`].
    pub temps: Vec<TempInfo>,
    /// Parameter temporaries (for documentation/printing; parameter values
    /// arrive via explicit moves from argument registers in block 0).
    pub params: Vec<Temp>,
    /// Spill slot for each temporary that acquired a memory home, indexed by
    /// [`Temp`]. Filled in by register allocators.
    pub spill_slots: Vec<Option<SlotId>>,
    /// Number of spill slots in the frame.
    pub num_slots: u32,
    /// True once a register allocator has rewritten the function so that
    /// every operand is physical.
    pub allocated: bool,
}

impl Function {
    /// Creates an empty function (no blocks yet).
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            blocks: Vec::new(),
            temps: Vec::new(),
            params: Vec::new(),
            spill_slots: Vec::new(),
            num_slots: 0,
            allocated: false,
        }
    }

    /// The entry block id (always block 0).
    #[inline]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of temporaries (register candidates).
    #[inline]
    pub fn num_temps(&self) -> usize {
        self.temps.len()
    }

    /// Total instruction count across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Creates a fresh temporary of the given class.
    pub fn new_temp(&mut self, class: RegClass, name: Option<String>) -> Temp {
        let t = Temp(self.temps.len() as u32);
        self.temps.push(TempInfo { class, name });
        self.spill_slots.push(None);
        t
    }

    /// The register class of a temporary.
    #[inline]
    pub fn temp_class(&self, t: Temp) -> RegClass {
        self.temps[t.index()].class
    }

    /// The class of any register operand.
    pub fn reg_class(&self, r: Reg) -> RegClass {
        match r {
            Reg::Temp(t) => self.temp_class(t),
            Reg::Phys(p) => p.class,
        }
    }

    /// Returns (allocating on first request) the spill slot of `t`.
    pub fn slot_for(&mut self, t: Temp) -> SlotId {
        if let Some(s) = self.spill_slots[t.index()] {
            return s;
        }
        let s = SlotId(self.num_slots);
        self.num_slots += 1;
        self.spill_slots[t.index()] = Some(s);
        s
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Shared access to a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// All block ids in linear order.
    pub fn block_ids(&self) -> impl DoubleEndedIterator<Item = BlockId> + ExactSizeIterator {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        self.block(b).succs()
    }

    /// Predecessor lists for every block, indexed by block.
    pub fn compute_preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.succs(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Checks structural and type well-formedness.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] describing the first violation found:
    /// malformed blocks, out-of-range block or temporary references, operand
    /// class mismatches, or leftover virtual operands in an `allocated`
    /// function.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |b: BlockId, i: usize, msg: String| {
            Err(ValidateError { func: self.name.clone(), block: b, inst: i, msg })
        };
        if self.blocks.is_empty() {
            return Err(ValidateError {
                func: self.name.clone(),
                block: BlockId(0),
                inst: 0,
                msg: "function has no blocks".into(),
            });
        }
        for b in self.block_ids() {
            let blk = self.block(b);
            if !blk.is_well_formed() {
                return err(b, blk.insts.len().saturating_sub(1), "malformed block".into());
            }
            for (i, ins) in blk.insts.iter().enumerate() {
                let inst = &ins.inst;
                // Check temp indices and collect class constraints.
                let mut bad: Option<String> = None;
                let mut check = |r: Reg, want: Option<RegClass>| {
                    if bad.is_some() {
                        return;
                    }
                    if let Reg::Temp(t) = r {
                        if t.index() >= self.temps.len() {
                            bad = Some(format!("unknown temp {t}"));
                            return;
                        }
                        if self.allocated {
                            bad = Some(format!("virtual operand {t} in allocated function"));
                            return;
                        }
                    }
                    if let Some(w) = want {
                        if self.reg_class(r) != w {
                            bad = Some(format!("operand {r} must be class {w}"));
                        }
                    }
                };
                match inst {
                    Inst::Op { op, dst, srcs } => {
                        if srcs.len() != op.arity() {
                            return err(
                                b,
                                i,
                                format!("{} expects {} sources", op.mnemonic(), op.arity()),
                            );
                        }
                        let (sc, dc) = op.sig();
                        for &s in srcs {
                            check(s, Some(sc));
                        }
                        check(*dst, Some(dc));
                    }
                    Inst::MovI { dst, .. } => check(*dst, Some(RegClass::Int)),
                    Inst::MovF { dst, .. } => check(*dst, Some(RegClass::Float)),
                    Inst::Mov { dst, src } => {
                        check(*src, None);
                        check(*dst, None);
                        if bad.is_none() && self.reg_class(*dst) != self.reg_class(*src) {
                            bad = Some("move between register classes".into());
                        }
                    }
                    Inst::Load { dst, base, .. } => {
                        check(*base, Some(RegClass::Int));
                        check(*dst, None);
                    }
                    Inst::Store { src, base, .. } => {
                        check(*base, Some(RegClass::Int));
                        check(*src, None);
                    }
                    Inst::SpillLoad { dst, temp } => {
                        if temp.index() >= self.temps.len() {
                            return err(b, i, format!("unknown spilled temp {temp}"));
                        }
                        check(*dst, Some(self.temp_class(*temp)));
                    }
                    Inst::SpillStore { src, temp } => {
                        if temp.index() >= self.temps.len() {
                            return err(b, i, format!("unknown spilled temp {temp}"));
                        }
                        check(*src, Some(self.temp_class(*temp)));
                    }
                    Inst::Call { .. } => {}
                    Inst::Jump { target } => {
                        if target.index() >= self.blocks.len() {
                            return err(b, i, format!("jump to unknown block {target}"));
                        }
                    }
                    Inst::Branch { src, then_tgt, else_tgt, .. } => {
                        check(*src, Some(RegClass::Int));
                        for t in [then_tgt, else_tgt] {
                            if t.index() >= self.blocks.len() {
                                return err(b, i, format!("branch to unknown block {t}"));
                            }
                        }
                    }
                    Inst::Ret { .. } => {}
                }
                if let Some(msg) = bad {
                    return err(b, i, msg);
                }
            }
        }
        Ok(())
    }

    /// Counts the move instructions sourced from `op` (used by tests and the
    /// move-optimization statistics).
    pub fn count_insts(&self, mut pred: impl FnMut(&Inst) -> bool) -> usize {
        self.blocks.iter().flat_map(|b| &b.insts).filter(|i| pred(&i.inst)).count()
    }

    /// True if any instruction still references a virtual temporary.
    pub fn has_virtual_operands(&self) -> bool {
        for b in &self.blocks {
            for ins in &b.insts {
                let mut found = false;
                ins.inst.for_each_use(|r| found |= r.is_temp());
                ins.inst.for_each_def(|r| found |= r.is_temp());
                if found {
                    return true;
                }
            }
        }
        false
    }

    /// Static count of ALU operations using `op` (handy in tests).
    pub fn count_opcode(&self, op: OpCode) -> usize {
        self.count_insts(|i| matches!(i, Inst::Op { op: o, .. } if *o == op))
    }
}

/// A structural or type error found by [`Function::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    /// Offending function.
    pub func: String,
    /// Offending block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in {}, {} inst {}: {}", self.func, self.block, self.inst, self.msg)
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;

    fn skeleton() -> Function {
        let mut f = Function::new("t");
        let b0 = f.add_block();
        f.block_mut(b0).insts.push(Inst::Ret { ret_regs: vec![] }.into());
        f
    }

    #[test]
    fn fresh_temps_are_dense() {
        let mut f = Function::new("t");
        let a = f.new_temp(RegClass::Int, None);
        let b = f.new_temp(RegClass::Float, Some("x".into()));
        assert_eq!(a, Temp(0));
        assert_eq!(b, Temp(1));
        assert_eq!(f.temp_class(a), RegClass::Int);
        assert_eq!(f.temp_class(b), RegClass::Float);
    }

    #[test]
    fn slots_are_stable() {
        let mut f = Function::new("t");
        let a = f.new_temp(RegClass::Int, None);
        let b = f.new_temp(RegClass::Int, None);
        let s1 = f.slot_for(a);
        let s2 = f.slot_for(b);
        assert_ne!(s1, s2);
        assert_eq!(f.slot_for(a), s1, "slot assignment must be idempotent");
        assert_eq!(f.num_slots, 2);
    }

    #[test]
    fn validate_accepts_minimal_function() {
        assert_eq!(skeleton().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_class_mismatch() {
        let mut f = skeleton();
        let t = f.new_temp(RegClass::Float, None);
        f.block_mut(BlockId(0)).insts.insert(
            0,
            Inst::Op { op: OpCode::Add, dst: Reg::Temp(t), srcs: vec![Reg::Temp(t), Reg::Temp(t)] }
                .into(),
        );
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_branch_target() {
        let mut f = skeleton();
        let t = f.new_temp(RegClass::Int, None);
        let b1 = f.add_block();
        f.block_mut(b1).insts.push(
            Inst::Branch {
                cond: Cond::Ne,
                src: Reg::Temp(t),
                then_tgt: BlockId(9),
                else_tgt: BlockId(0),
            }
            .into(),
        );
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_virtuals_after_allocation() {
        let mut f = skeleton();
        let t = f.new_temp(RegClass::Int, None);
        f.block_mut(BlockId(0)).insts.insert(0, Inst::MovI { dst: Reg::Temp(t), imm: 1 }.into());
        assert!(f.validate().is_ok());
        f.allocated = true;
        assert!(f.validate().is_err());
    }

    #[test]
    fn preds_are_computed() {
        let mut f = Function::new("t");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let t = f.new_temp(RegClass::Int, None);
        f.block_mut(b0).insts.push(
            Inst::Branch { cond: Cond::Ne, src: Reg::Temp(t), then_tgt: b1, else_tgt: b2 }.into(),
        );
        f.block_mut(b1).insts.push(Inst::Jump { target: b2 }.into());
        f.block_mut(b2).insts.push(Inst::Ret { ret_regs: vec![] }.into());
        let preds = f.compute_preds();
        assert_eq!(preds[b2.index()], vec![b0, b1]);
        assert_eq!(preds[b0.index()], Vec::<BlockId>::new());
    }
}

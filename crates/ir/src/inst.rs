//! Instructions of the load/store IR.
//!
//! The instruction set is deliberately Alpha-flavoured: three-address ALU
//! operations, loads/stores with a base register and word offset, immediate
//! moves, compare-against-zero conditional branches, and calls that pass
//! arguments in physical argument registers (so parameter-register moves —
//! the motivating case of the paper's move optimization in §2.5 — appear
//! explicitly in the IR).

use crate::block::BlockId;
use crate::reg::{PhysReg, Reg, RegClass, Temp};

/// An ALU opcode. Each opcode fixes the classes of its operands and result
/// (see [`OpCode::sig`]) and its arity (see [`OpCode::arity`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (traps on zero in the VM).
    Div,
    /// Integer remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Shift left (shift count taken modulo 64).
    Shl,
    /// Arithmetic shift right (count modulo 64).
    Shr,
    /// Integer compare: equal (produces 0/1).
    CmpEq,
    /// Integer compare: less-than, signed.
    CmpLt,
    /// Integer compare: less-or-equal, signed.
    CmpLe,
    /// Integer negation (unary).
    Neg,
    /// Bitwise not (unary).
    Not,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Floating-point compare: equal (integer 0/1 result).
    FCmpEq,
    /// Floating-point compare: less-than (integer 0/1 result).
    FCmpLt,
    /// Floating-point compare: less-or-equal (integer 0/1 result).
    FCmpLe,
    /// Floating-point negation (unary).
    FNeg,
    /// Floating-point absolute value (unary).
    FAbs,
    /// Floating-point square root (unary).
    FSqrt,
    /// Convert integer to float (unary; int source, float result).
    IntToFloat,
    /// Convert float to integer, truncating (unary; float source, int result).
    FloatToInt,
}

impl OpCode {
    /// Number of register sources (1 or 2).
    pub fn arity(self) -> usize {
        use OpCode::*;
        match self {
            Neg | Not | FNeg | FAbs | FSqrt | IntToFloat | FloatToInt => 1,
            _ => 2,
        }
    }

    /// `(source class, destination class)` for this opcode.
    pub fn sig(self) -> (RegClass, RegClass) {
        use OpCode::*;
        use RegClass::{Float, Int};
        match self {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | CmpEq | CmpLt | CmpLe
            | Neg | Not => (Int, Int),
            FAdd | FSub | FMul | FDiv | FNeg | FAbs | FSqrt => (Float, Float),
            FCmpEq | FCmpLt | FCmpLe | FloatToInt => (Float, Int),
            IntToFloat => (Int, Float),
        }
    }

    /// The IR printer's mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use OpCode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            CmpEq => "cmpeq",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            Neg => "neg",
            Not => "not",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FCmpEq => "fcmpeq",
            FCmpLt => "fcmplt",
            FCmpLe => "fcmple",
            FNeg => "fneg",
            FAbs => "fabs",
            FSqrt => "fsqrt",
            IntToFloat => "itof",
            FloatToInt => "ftoi",
        }
    }
}

/// Condition for a conditional branch; the operand is compared against zero,
/// Alpha-style (`beq`, `bne`, `blt`, ...).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if the operand is zero.
    Eq,
    /// Branch if the operand is non-zero.
    Ne,
    /// Branch if the operand is negative.
    Lt,
    /// Branch if the operand is non-positive.
    Le,
    /// Branch if the operand is positive.
    Gt,
    /// Branch if the operand is non-negative.
    Ge,
}

impl Cond {
    /// Evaluates the condition against an integer value.
    pub fn eval(self, v: i64) -> bool {
        match self {
            Cond::Eq => v == 0,
            Cond::Ne => v != 0,
            Cond::Lt => v < 0,
            Cond::Le => v <= 0,
            Cond::Gt => v > 0,
            Cond::Ge => v >= 0,
        }
    }

    /// The printer's mnemonic (`beq` etc. without the `b`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

/// Identifies a function within a [`crate::Module`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Dense index of the function in its module.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// External (runtime-provided) routines. They follow the normal calling
/// convention: arguments in argument registers, results in return registers,
/// caller-saved registers clobbered.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExtFn {
    /// Read the next byte of the program input; returns `-1` at end of input.
    GetChar,
    /// Write one integer argument to the output trace.
    PutInt,
    /// Write one character (low byte of the integer argument) to the output
    /// trace.
    PutChar,
    /// Write one floating-point argument to the output trace.
    PutFloat,
}

impl ExtFn {
    /// The printer's name for the routine.
    pub fn name(self) -> &'static str {
        match self {
            ExtFn::GetChar => "getchar",
            ExtFn::PutInt => "putint",
            ExtFn::PutChar => "putchar",
            ExtFn::PutFloat => "putfloat",
        }
    }
}

/// A call target: another function in the module or an external routine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// An intra-module function.
    Func(FuncId),
    /// An external runtime routine.
    Ext(ExtFn),
}

/// Provenance tag for instructions inserted by a register allocator,
/// matching the six categories of the paper's Figure 3 plus coloring's
/// single "spill" category folded into the `Evict*` kinds.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SpillTag {
    /// Original program instruction.
    None,
    /// Spill load inserted during the linear scan (or coloring's rewrite).
    EvictLoad,
    /// Spill store inserted during the linear scan (or coloring's rewrite).
    EvictStore,
    /// Register-to-register move inserted during the linear scan
    /// (early second chance, §2.5).
    EvictMove,
    /// Load inserted by the resolution pass (§2.4).
    ResolveLoad,
    /// Store inserted by the resolution pass (§2.4), including consistency
    /// stores from the `USED_C` dataflow.
    ResolveStore,
    /// Move inserted by the resolution pass (§2.4).
    ResolveMove,
}

impl SpillTag {
    /// True for any allocator-inserted instruction.
    #[inline]
    pub fn is_spill(self) -> bool {
        !matches!(self, SpillTag::None)
    }

    /// All spill categories, in Figure 3's order.
    pub const SPILL_KINDS: [SpillTag; 6] = [
        SpillTag::EvictLoad,
        SpillTag::EvictStore,
        SpillTag::EvictMove,
        SpillTag::ResolveLoad,
        SpillTag::ResolveStore,
        SpillTag::ResolveMove,
    ];
}

/// An IR instruction.
///
/// Every block ends with exactly one terminator (`Jump`, `Branch`, or `Ret`);
/// terminators appear nowhere else.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// `dst = op(srcs...)`.
    Op {
        /// The operation.
        op: OpCode,
        /// Destination register.
        dst: Reg,
        /// Source registers (`op.arity()` of them).
        srcs: Vec<Reg>,
    },
    /// `dst = imm` (integer immediate).
    MovI {
        /// Destination (integer class).
        dst: Reg,
        /// The immediate value.
        imm: i64,
    },
    /// `dst = imm` (floating-point immediate).
    MovF {
        /// Destination (float class).
        dst: Reg,
        /// The immediate value.
        imm: f64,
    },
    /// Register move within a class.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = memory[base + offset]` (word-addressed).
    Load {
        /// Destination (either class; memory is untyped words).
        dst: Reg,
        /// Base address register (integer class).
        base: Reg,
        /// Word offset.
        offset: i32,
    },
    /// `memory[base + offset] = src`.
    Store {
        /// The stored register.
        src: Reg,
        /// Base address register (integer class).
        base: Reg,
        /// Word offset.
        offset: i32,
    },
    /// Reload `temp` from its spill slot into `dst` (allocator-inserted).
    SpillLoad {
        /// Destination register.
        dst: Reg,
        /// The spilled temporary whose memory home is read.
        temp: Temp,
    },
    /// Store `src` to `temp`'s spill slot (allocator-inserted).
    SpillStore {
        /// Source register holding the value.
        src: Reg,
        /// The spilled temporary whose memory home is written.
        temp: Temp,
    },
    /// Call `callee`. Arguments have already been moved into `arg_regs`;
    /// results appear in `ret_regs`. All caller-saved registers are
    /// clobbered.
    Call {
        /// The call target.
        callee: Callee,
        /// Argument registers read by the call.
        arg_regs: Vec<PhysReg>,
        /// Return-value registers written by the call.
        ret_regs: Vec<PhysReg>,
    },
    /// Unconditional jump (terminator).
    Jump {
        /// Jump target.
        target: BlockId,
    },
    /// Conditional branch comparing `src` against zero (terminator).
    Branch {
        /// The comparison against zero.
        cond: Cond,
        /// The tested register (integer class).
        src: Reg,
        /// Target when the condition holds.
        then_tgt: BlockId,
        /// Target when the condition fails.
        else_tgt: BlockId,
    },
    /// Return from the function (terminator). Return values have already
    /// been moved into `ret_regs`.
    Ret {
        /// Return-value registers live out of the function.
        ret_regs: Vec<PhysReg>,
    },
}

impl Inst {
    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jump { .. } | Inst::Branch { .. } | Inst::Ret { .. })
    }

    /// True for register-to-register moves (the subject of move coalescing).
    pub fn is_move(&self) -> bool {
        matches!(self, Inst::Mov { .. })
    }

    /// True for calls.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }

    /// Successor blocks if this is a terminator (empty for `Ret`).
    pub fn branch_targets(&self) -> Vec<BlockId> {
        match self {
            Inst::Jump { target } => vec![*target],
            Inst::Branch { then_tgt, else_tgt, .. } => {
                if then_tgt == else_tgt {
                    vec![*then_tgt]
                } else {
                    vec![*then_tgt, *else_tgt]
                }
            }
            Inst::Ret { .. } => vec![],
            _ => panic!("branch_targets on non-terminator {self:?}"),
        }
    }

    /// Invokes `f` on every register *use* (source operand).
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        match self {
            Inst::Op { srcs, .. } => srcs.iter().for_each(|&r| f(r)),
            Inst::MovI { .. } | Inst::MovF { .. } => {}
            Inst::Mov { src, .. } => f(*src),
            Inst::Load { base, .. } => f(*base),
            Inst::Store { src, base, .. } => {
                f(*src);
                f(*base);
            }
            Inst::SpillLoad { .. } => {}
            Inst::SpillStore { src, .. } => f(*src),
            Inst::Call { arg_regs, .. } => arg_regs.iter().for_each(|&p| f(Reg::Phys(p))),
            Inst::Jump { .. } => {}
            Inst::Branch { src, .. } => f(*src),
            Inst::Ret { ret_regs } => ret_regs.iter().for_each(|&p| f(Reg::Phys(p))),
        }
    }

    /// Invokes `f` on every register *definition* (destination operand).
    pub fn for_each_def(&self, mut f: impl FnMut(Reg)) {
        match self {
            Inst::Op { dst, .. }
            | Inst::MovI { dst, .. }
            | Inst::MovF { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::SpillLoad { dst, .. } => f(*dst),
            Inst::Store { .. } | Inst::SpillStore { .. } => {}
            Inst::Call { ret_regs, .. } => ret_regs.iter().for_each(|&p| f(Reg::Phys(p))),
            Inst::Jump { .. } | Inst::Branch { .. } | Inst::Ret { .. } => {}
        }
    }

    /// Mutable access to every use operand that is a rewritable register
    /// reference (calls and returns use fixed physical registers, which are
    /// not rewritable).
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Reg)) {
        match self {
            Inst::Op { srcs, .. } => srcs.iter_mut().for_each(&mut f),
            Inst::MovI { .. } | Inst::MovF { .. } => {}
            Inst::Mov { src, .. } => f(src),
            Inst::Load { base, .. } => f(base),
            Inst::Store { src, base, .. } => {
                f(src);
                f(base);
            }
            Inst::SpillLoad { .. } => {}
            Inst::SpillStore { src, .. } => f(src),
            Inst::Call { .. } => {}
            Inst::Jump { .. } => {}
            Inst::Branch { src, .. } => f(src),
            Inst::Ret { .. } => {}
        }
    }

    /// Mutable access to every rewritable definition operand.
    pub fn for_each_def_mut(&mut self, mut f: impl FnMut(&mut Reg)) {
        match self {
            Inst::Op { dst, .. }
            | Inst::MovI { dst, .. }
            | Inst::MovF { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::SpillLoad { dst, .. } => f(dst),
            _ => {}
        }
    }

    /// Collected uses (convenience wrapper over [`Inst::for_each_use`]).
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.for_each_use(|r| v.push(r));
        v
    }

    /// Collected definitions (convenience wrapper over
    /// [`Inst::for_each_def`]).
    pub fn defs(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.for_each_def(|r| v.push(r));
        v
    }
}

/// An instruction together with its allocator provenance tag.
#[derive(Clone, Debug, PartialEq)]
pub struct Ins {
    /// The instruction.
    pub inst: Inst,
    /// Who inserted it (original program vs. a spill category).
    pub tag: SpillTag,
}

impl Ins {
    /// Wraps an original program instruction.
    pub fn new(inst: Inst) -> Self {
        Ins { inst, tag: SpillTag::None }
    }

    /// Wraps an allocator-inserted instruction with its category.
    pub fn tagged(inst: Inst, tag: SpillTag) -> Self {
        Ins { inst, tag }
    }
}

impl From<Inst> for Ins {
    fn from(inst: Inst) -> Ins {
        Ins::new(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_arity_and_sig() {
        assert_eq!(OpCode::Add.arity(), 2);
        assert_eq!(OpCode::Neg.arity(), 1);
        assert_eq!(OpCode::FAdd.sig(), (RegClass::Float, RegClass::Float));
        assert_eq!(OpCode::FCmpLt.sig(), (RegClass::Float, RegClass::Int));
        assert_eq!(OpCode::IntToFloat.sig(), (RegClass::Int, RegClass::Float));
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(0));
        assert!(!Cond::Eq.eval(3));
        assert!(Cond::Ne.eval(-1));
        assert!(Cond::Lt.eval(-5));
        assert!(Cond::Ge.eval(0));
        assert!(Cond::Gt.eval(2));
        assert!(Cond::Le.eval(0));
    }

    #[test]
    fn uses_and_defs() {
        let t = |i| Reg::Temp(Temp(i));
        let add = Inst::Op { op: OpCode::Add, dst: t(0), srcs: vec![t(1), t(2)] };
        assert_eq!(add.uses(), vec![t(1), t(2)]);
        assert_eq!(add.defs(), vec![t(0)]);

        let st = Inst::Store { src: t(3), base: t(4), offset: 2 };
        assert_eq!(st.uses(), vec![t(3), t(4)]);
        assert!(st.defs().is_empty());

        let call = Inst::Call {
            callee: Callee::Ext(ExtFn::PutInt),
            arg_regs: vec![PhysReg::int(1)],
            ret_regs: vec![],
        };
        assert_eq!(call.uses(), vec![Reg::Phys(PhysReg::int(1))]);
        assert!(call.defs().is_empty());
    }

    #[test]
    fn mutation_visits_rewritable_operands() {
        let t = |i| Reg::Temp(Temp(i));
        let mut add = Inst::Op { op: OpCode::Add, dst: t(0), srcs: vec![t(1), t(2)] };
        add.for_each_use_mut(|r| *r = Reg::Phys(PhysReg::int(7)));
        add.for_each_def_mut(|r| *r = Reg::Phys(PhysReg::int(8)));
        assert_eq!(add.uses(), vec![Reg::Phys(PhysReg::int(7)); 2]);
        assert_eq!(add.defs(), vec![Reg::Phys(PhysReg::int(8))]);
    }

    #[test]
    fn terminator_classification() {
        assert!(Inst::Jump { target: BlockId(0) }.is_terminator());
        assert!(Inst::Ret { ret_regs: vec![] }.is_terminator());
        assert!(!Inst::MovI { dst: Reg::Temp(Temp(0)), imm: 1 }.is_terminator());
    }

    #[test]
    fn branch_targets_dedup() {
        let b = Inst::Branch {
            cond: Cond::Ne,
            src: Reg::Temp(Temp(0)),
            then_tgt: BlockId(3),
            else_tgt: BlockId(3),
        };
        assert_eq!(b.branch_targets(), vec![BlockId(3)]);
    }

    #[test]
    fn spill_tags() {
        assert!(!SpillTag::None.is_spill());
        for k in SpillTag::SPILL_KINDS {
            assert!(k.is_spill());
        }
        assert_eq!(SpillTag::SPILL_KINDS.len(), 6);
    }
}

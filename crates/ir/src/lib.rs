//! A load/store machine IR for register-allocation research.
//!
//! This crate is the substrate of a reproduction of Traub, Holloway &
//! Smith, *Quality and Speed in Linear-scan Register Allocation* (PLDI
//! 1998). It models the essential features of the paper's target — the
//! Digital Alpha compiled through Machine SUIF:
//!
//! * two register files ([`RegClass::Int`], [`RegClass::Float`]) that cannot
//!   exchange values except through memory;
//! * virtual *temporaries* ([`Temp`]) as allocation candidates, mixed with
//!   precolored physical registers ([`PhysReg`]) at call boundaries;
//! * explicit parameter/argument/return-value moves, the motivating case of
//!   the paper's move optimization (§2.5);
//! * a calling convention with caller- and callee-saved registers
//!   ([`MachineSpec`]), which the binpacking allocator models as *register
//!   lifetime holes*;
//! * allocator-inserted spill code carrying provenance tags ([`SpillTag`])
//!   so dynamic spill-code composition (the paper's Figure 3) can be
//!   measured.
//!
//! # Examples
//!
//! Build a function that sums its argument with a constant:
//!
//! ```
//! use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
//!
//! let spec = MachineSpec::alpha_like();
//! let mut b = FunctionBuilder::new(&spec, "add1", &[RegClass::Int]);
//! let x = b.param(0);
//! let one = b.int_temp("one");
//! let sum = b.int_temp("sum");
//! b.movi(one, 1);
//! b.add(sum, x, one);
//! b.ret(Some(sum.into()));
//! let f = b.finish();
//! assert_eq!(f.num_temps(), 3);
//! println!("{f}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod builder;
mod display;
mod function;
mod inst;
mod machine;
mod module;
pub mod parse;
mod reg;

pub use block::{Block, BlockId};
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use function::{Function, SlotId, TempInfo, ValidateError};
pub use inst::{Callee, Cond, ExtFn, FuncId, Ins, Inst, OpCode, SpillTag};
pub use machine::MachineSpec;
pub use module::Module;
pub use parse::{
    parse_function, parse_function_with_lines, parse_module, parse_module_with_lines,
    FunctionLines, ModuleLines, ParseError,
};
pub use reg::{PhysReg, Reg, RegClass, Temp};

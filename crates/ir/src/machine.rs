//! Machine descriptions: register counts, register classes, and the
//! calling-convention register sets that shape register lifetime holes (§2.5
//! of the paper).

use crate::reg::{PhysReg, RegClass};

/// A description of a target machine's allocatable register files and
/// calling convention.
///
/// The paper targets the Digital Alpha; [`MachineSpec::alpha_like`] models
/// its essential structure (two files, caller-/callee-saved split, argument
/// registers). Small configurations (see [`MachineSpec::small`]) are useful
/// for stress-testing spilling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineSpec {
    name: String,
    num_regs: [u8; 2],
    caller_saved: [Vec<u8>; 2],
    arg_regs: [Vec<u8>; 2],
    ret_regs: [Vec<u8>; 2],
}

impl MachineSpec {
    /// Creates a machine description.
    ///
    /// `num_regs` gives the allocatable register count per class (indexed by
    /// [`RegClass::index`]); `caller_saved` lists the caller-saved register
    /// indices per class; `arg_regs` the argument-passing registers; and
    /// `ret_regs` the return-value registers.
    ///
    /// # Panics
    ///
    /// Panics if any listed register index is out of range, or if argument
    /// or return registers are not caller-saved (a convention this model
    /// requires: values arriving in or leaving through those registers are
    /// not preserved across calls).
    pub fn new(
        name: impl Into<String>,
        num_regs: [u8; 2],
        caller_saved: [Vec<u8>; 2],
        arg_regs: [Vec<u8>; 2],
        ret_regs: [Vec<u8>; 2],
    ) -> Self {
        for c in RegClass::ALL {
            let i = c.index();
            for &r in caller_saved[i].iter().chain(&arg_regs[i]).chain(&ret_regs[i]) {
                assert!(r < num_regs[i], "register {c}{r} out of range");
            }
            for &r in arg_regs[i].iter().chain(&ret_regs[i]) {
                assert!(
                    caller_saved[i].contains(&r),
                    "argument/return register {c}{r} must be caller-saved"
                );
            }
        }
        MachineSpec { name: name.into(), num_regs, caller_saved, arg_regs, ret_regs }
    }

    /// An Alpha-like machine: 25 allocatable integer registers and 28
    /// floating-point registers. Registers `0..=14` (int) and `0..=15`
    /// (float) are caller-saved; argument values travel in registers `1..=6`
    /// of each class and return values in register `0`.
    ///
    /// The true Alpha reserves several integer registers (sp, gp, at, zero,
    /// ra, pv); we model only the allocatable remainder, which is what the
    /// register allocators compete for.
    pub fn alpha_like() -> Self {
        MachineSpec::new(
            "alpha-like",
            [25, 28],
            [(0..=14).collect(), (0..=15).collect()],
            [(1..=6).collect(), (1..=6).collect()],
            [vec![0], vec![0]],
        )
    }

    /// A small machine with `int` integer and `float` floating-point
    /// registers, for spill stress tests. Roughly half of each file is
    /// caller-saved; one argument register per class (two if the file has at
    /// least four registers, none if it has only one); return register `0`.
    ///
    /// A single-register float file (`small:2,1`) is the extreme fuzzing
    /// configuration: unary float operations and conversions remain
    /// expressible, binary float arithmetic is not (it needs two
    /// simultaneously live float registers).
    ///
    /// # Panics
    ///
    /// Panics if `int < 2` (a return register plus at least one other
    /// register are required) or `float < 1`. Use
    /// [`MachineSpec::try_small`] when the counts come from user input.
    pub fn small(int: u8, float: u8) -> Self {
        MachineSpec::try_small(int, float).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MachineSpec::small`]: returns an error message instead of
    /// panicking on an infeasible register file, so CLI and protocol paths
    /// can turn bad counts into a usage error.
    ///
    /// # Errors
    ///
    /// Returns a message if `int < 2` or `float < 1`.
    pub fn try_small(int: u8, float: u8) -> Result<Self, String> {
        if int < 2 {
            return Err("need at least 2 integer registers".to_string());
        }
        if float < 1 {
            return Err("need at least 1 float register".to_string());
        }
        let args = |n: u8| -> Vec<u8> {
            if n >= 4 {
                vec![1, 2]
            } else if n >= 2 {
                vec![1]
            } else {
                vec![]
            }
        };
        // Caller-saved: at least half of the file, and always enough to
        // cover the argument and return registers (which must be
        // caller-saved).
        let caller = |n: u8| -> Vec<u8> {
            let max_arg = args(n).iter().max().copied().unwrap_or(0);
            (0..n.div_ceil(2).max(max_arg + 1)).collect()
        };
        Ok(MachineSpec::new(
            format!("small-{int}i{float}f"),
            [int, float],
            [caller(int), caller(float)],
            [args(int), args(float)],
            [vec![0], vec![0]],
        ))
    }

    /// Parses a machine selector as the CLI and the allocation-service
    /// protocol spell it: `alpha` (the [`MachineSpec::alpha_like`] default)
    /// or `small:I,F` (a [`MachineSpec::try_small`] configuration).
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown selectors, malformed counts, or
    /// infeasible register files (e.g. `small:1,0`), never panicking on user
    /// input.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "alpha" {
            return Ok(MachineSpec::alpha_like());
        }
        if let Some(rest) = s.strip_prefix("small:") {
            let (i, f) = rest.split_once(',').ok_or("expected small:I,F")?;
            let i: u8 = i.parse().map_err(|_| "bad int register count")?;
            let f: u8 = f.parse().map_err(|_| "bad float register count")?;
            return MachineSpec::try_small(i, f);
        }
        Err(format!("unknown machine `{s}` (alpha | small:I,F)"))
    }

    /// The selector string [`MachineSpec::parse`] maps back to this spec:
    /// `alpha` for the Alpha-like machine, `small:I,F` for small files.
    pub fn selector(&self) -> String {
        if self.name == "alpha-like" {
            "alpha".to_string()
        } else {
            format!("small:{},{}", self.num_regs(RegClass::Int), self.num_regs(RegClass::Float))
        }
    }

    /// The machine's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of allocatable registers in `class`.
    #[inline]
    pub fn num_regs(&self, class: RegClass) -> u8 {
        self.num_regs[class.index()]
    }

    /// Iterates over every allocatable register of `class`.
    pub fn regs(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        (0..self.num_regs(class)).map(move |i| PhysReg::new(class, i))
    }

    /// Iterates over every allocatable register of both classes.
    pub fn all_regs(&self) -> impl Iterator<Item = PhysReg> + '_ {
        RegClass::ALL.into_iter().flat_map(|c| self.regs(c))
    }

    /// True if `reg` is clobbered by a call (not preserved by callees).
    #[inline]
    pub fn is_caller_saved(&self, reg: PhysReg) -> bool {
        self.caller_saved[reg.class.index()].contains(&reg.index)
    }

    /// True if `reg` is preserved across calls by the callee.
    #[inline]
    pub fn is_callee_saved(&self, reg: PhysReg) -> bool {
        !self.is_caller_saved(reg)
    }

    /// The caller-saved registers of `class`.
    pub fn caller_saved(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        self.caller_saved[class.index()].iter().map(move |&i| PhysReg::new(class, i))
    }

    /// The callee-saved registers of `class`.
    pub fn callee_saved(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        self.regs(class).filter(|&r| self.is_callee_saved(r))
    }

    /// The argument-passing registers of `class`, in argument order.
    pub fn arg_regs(&self, class: RegClass) -> &[u8] {
        &self.arg_regs[class.index()]
    }

    /// The `i`-th argument register of `class`, if the convention has one.
    pub fn arg_reg(&self, class: RegClass, i: usize) -> Option<PhysReg> {
        self.arg_regs[class.index()].get(i).map(|&r| PhysReg::new(class, r))
    }

    /// The (first) return-value register of `class`.
    pub fn ret_reg(&self, class: RegClass) -> PhysReg {
        PhysReg::new(class, self.ret_regs[class.index()][0])
    }

    /// Total allocatable registers across both classes.
    pub fn total_regs(&self) -> usize {
        self.num_regs.iter().map(|&n| n as usize).sum()
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec::alpha_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_like_register_counts() {
        let m = MachineSpec::alpha_like();
        assert_eq!(m.num_regs(RegClass::Int), 25);
        assert_eq!(m.num_regs(RegClass::Float), 28);
        assert_eq!(m.total_regs(), 53);
        assert_eq!(m.regs(RegClass::Int).count(), 25);
    }

    #[test]
    fn alpha_like_conventions() {
        let m = MachineSpec::alpha_like();
        assert!(m.is_caller_saved(PhysReg::int(0)));
        assert!(m.is_caller_saved(PhysReg::int(14)));
        assert!(m.is_callee_saved(PhysReg::int(15)));
        assert!(m.is_callee_saved(PhysReg::int(24)));
        assert_eq!(m.arg_reg(RegClass::Int, 0), Some(PhysReg::int(1)));
        assert_eq!(m.arg_reg(RegClass::Int, 5), Some(PhysReg::int(6)));
        assert_eq!(m.arg_reg(RegClass::Int, 6), None);
        assert_eq!(m.ret_reg(RegClass::Float), PhysReg::float(0));
    }

    #[test]
    fn caller_callee_partition() {
        let m = MachineSpec::alpha_like();
        for c in RegClass::ALL {
            let caller: Vec<_> = m.caller_saved(c).collect();
            let callee: Vec<_> = m.callee_saved(c).collect();
            assert_eq!(caller.len() + callee.len(), m.num_regs(c) as usize);
            for r in &caller {
                assert!(!callee.contains(r));
            }
        }
    }

    #[test]
    fn small_machine() {
        let m = MachineSpec::small(4, 2);
        assert_eq!(m.num_regs(RegClass::Int), 4);
        assert_eq!(m.caller_saved(RegClass::Int).count(), 3);
        assert!(m.is_caller_saved(PhysReg::int(2)), "arg registers are caller-saved");
        assert!(m.is_callee_saved(PhysReg::int(3)));
        assert_eq!(m.arg_reg(RegClass::Int, 0), Some(PhysReg::int(1)));
        assert_eq!(m.arg_reg(RegClass::Float, 0), Some(PhysReg::float(1)));
    }

    #[test]
    fn single_register_float_file() {
        let m = MachineSpec::small(2, 1);
        assert_eq!(m.num_regs(RegClass::Float), 1);
        assert_eq!(m.arg_regs(RegClass::Float), &[] as &[u8]);
        assert_eq!(m.ret_reg(RegClass::Float), PhysReg::float(0));
        assert!(m.is_caller_saved(PhysReg::float(0)), "return register must be caller-saved");
        assert_eq!(m.arg_reg(RegClass::Int, 0), Some(PhysReg::int(1)));
    }

    #[test]
    fn try_small_rejects_infeasible_files_without_panicking() {
        assert!(MachineSpec::try_small(1, 0).is_err());
        assert!(MachineSpec::try_small(2, 0).is_err());
        assert!(MachineSpec::try_small(0, 3).is_err());
        assert_eq!(MachineSpec::try_small(2, 1).unwrap(), MachineSpec::small(2, 1));
    }

    #[test]
    fn parse_and_selector_round_trip() {
        for sel in ["alpha", "small:2,1", "small:4,2", "small:25,28"] {
            let m = MachineSpec::parse(sel).unwrap();
            assert_eq!(m.selector(), sel);
            assert_eq!(MachineSpec::parse(&m.selector()).unwrap(), m);
        }
        assert!(MachineSpec::parse("small:1,0").is_err(), "infeasible file is an error");
        assert!(MachineSpec::parse("small:4").is_err());
        assert!(MachineSpec::parse("vax").is_err());
        assert!(MachineSpec::parse("small:x,y").is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_registers() {
        MachineSpec::new("bad", [2, 2], [vec![5], vec![]], [vec![], vec![]], [vec![0], vec![0]]);
    }

    #[test]
    #[should_panic(expected = "must be caller-saved")]
    fn rejects_callee_saved_arg_regs() {
        MachineSpec::new("bad", [4, 4], [vec![0], vec![0]], [vec![3], vec![]], [vec![0], vec![0]]);
    }
}

//! Modules: collections of functions plus a static data image.

use crate::function::Function;
use crate::inst::FuncId;

/// A compilation unit: functions, an entry point, and an initial memory
/// image (word-addressed).
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    /// The module's name (benchmark name in the evaluation harness).
    pub name: String,
    /// The functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Entry function executed by the VM.
    pub entry: FuncId,
    /// Initial contents of data memory (word `i` holds `data[i]`); memory
    /// beyond the image reads as zero up to `memory_words`.
    pub data: Vec<i64>,
    /// Total data memory size in words.
    pub memory_words: usize,
}

impl Module {
    /// Creates an empty module with `memory_words` words of zeroed memory.
    pub fn new(name: impl Into<String>, memory_words: usize) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            entry: FuncId(0),
            data: Vec::new(),
            memory_words,
        }
    }

    /// Adds a function and returns its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Shared access to a function.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    #[inline]
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// All function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Reserves a region of `words` words of static memory, initialised with
    /// `init` (shorter than `words` is zero-padded), and returns its word
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `init` is longer than `words` or the region exceeds the
    /// module's memory size.
    pub fn reserve(&mut self, words: usize, init: &[i64]) -> i64 {
        assert!(init.len() <= words, "initialiser longer than region");
        let addr = self.data.len();
        self.data.extend_from_slice(init);
        self.data.resize(addr + words, 0);
        assert!(self.data.len() <= self.memory_words, "static data exceeds memory size");
        addr as i64
    }

    /// Validates every function in the module.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::ValidateError`] found, plus checks that
    /// every `Call` names a function that exists.
    pub fn validate(&self) -> Result<(), crate::ValidateError> {
        for f in &self.funcs {
            f.validate()?;
            for b in f.block_ids() {
                for (i, ins) in f.block(b).insts.iter().enumerate() {
                    if let crate::Inst::Call { callee: crate::Callee::Func(id), .. } = ins.inst {
                        if id.index() >= self.funcs.len() {
                            return Err(crate::ValidateError {
                                func: f.name.clone(),
                                block: b,
                                inst: i,
                                msg: format!("call to unknown function {id:?}"),
                            });
                        }
                    }
                }
            }
        }
        if self.entry.index() >= self.funcs.len() {
            return Err(crate::ValidateError {
                func: "<module>".into(),
                block: crate::BlockId(0),
                inst: 0,
                msg: "entry function does not exist".into(),
            });
        }
        Ok(())
    }

    /// Total instruction count over all functions (static size).
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }

    /// Total temporary (register-candidate) count over all functions.
    pub fn num_temps(&self) -> usize {
        self.funcs.iter().map(|f| f.num_temps()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_lays_out_regions() {
        let mut m = Module::new("m", 100);
        let a = m.reserve(10, &[1, 2, 3]);
        let b = m.reserve(5, &[]);
        assert_eq!(a, 0);
        assert_eq!(b, 10);
        assert_eq!(m.data[0..3], [1, 2, 3]);
        assert_eq!(m.data[3], 0);
        assert_eq!(m.data.len(), 15);
    }

    #[test]
    #[should_panic(expected = "exceeds memory size")]
    fn reserve_checks_bounds() {
        let mut m = Module::new("m", 4);
        m.reserve(10, &[]);
    }

    #[test]
    fn validate_checks_entry() {
        let m = Module::new("m", 0);
        assert!(m.validate().is_err(), "empty module has no entry function");
    }
}

//! A parser for the IR's textual form, the exact format the `Display`
//! implementations print — so modules and functions round-trip through
//! text. Useful for hand-written test inputs, golden files, and the CLI.

use std::fmt;

use crate::block::BlockId;
use crate::function::{Function, SlotId};
use crate::inst::{Callee, Cond, ExtFn, FuncId, Ins, Inst, OpCode, SpillTag};
use crate::module::Module;
use crate::reg::{PhysReg, Reg, RegClass, Temp};

/// A syntax or consistency error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line where the problem was found.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Source lines recorded while parsing one function: where the header sits
/// and, per block, the 1-based line of every instruction. Line numbers are
/// relative to the text handed to the parser — [`parse_module_with_lines`]
/// offsets them so they are file-relative.
///
/// This is what lets diagnostics (validation errors, lints) point at the
/// offending *source line* instead of just a `(block, inst)` pair.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FunctionLines {
    /// Line of the `func @name(...) {` header.
    pub header: usize,
    /// `insts[b][i]` is the line of block `b`'s `i`-th instruction.
    pub insts: Vec<Vec<usize>>,
}

impl FunctionLines {
    /// The source line of `block`'s `inst`-th instruction, if recorded.
    pub fn line_of(&self, block: BlockId, inst: usize) -> Option<usize> {
        self.insts.get(block.index()).and_then(|b| b.get(inst)).copied()
    }

    fn offset(&mut self, by: usize) {
        self.header += by;
        for b in &mut self.insts {
            for l in b.iter_mut() {
                *l += by;
            }
        }
    }
}

/// Per-function [`FunctionLines`] for a parsed module, indexed like
/// `Module::funcs`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModuleLines {
    /// One entry per function, in `Module::funcs` order.
    pub funcs: Vec<FunctionLines>,
}

impl ModuleLines {
    /// The source line of instruction `inst` in `block` of function `func`.
    pub fn line_of(&self, func: usize, block: BlockId, inst: usize) -> Option<usize> {
        self.funcs.get(func).and_then(|f| f.line_of(block, inst))
    }
}

type Result<T> = std::result::Result<T, ParseError>;

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T> {
    Err(ParseError { line, msg: msg.into() })
}

fn parse_class(s: &str, line: usize) -> Result<RegClass> {
    match s {
        "i" => Ok(RegClass::Int),
        "f" => Ok(RegClass::Float),
        _ => err(line, format!("unknown register class `{s}`")),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg> {
    let (head, rest) = s.split_at(1);
    let idx = || -> Result<u32> {
        rest.parse().map_err(|_| ParseError { line, msg: format!("bad register `{s}`") })
    };
    match head {
        "t" => Ok(Reg::Temp(Temp(idx()?))),
        "r" => Ok(Reg::Phys(PhysReg::int(idx()? as u8))),
        "f" => Ok(Reg::Phys(PhysReg::float(idx()? as u8))),
        _ => err(line, format!("bad register `{s}`")),
    }
}

fn parse_phys(s: &str, line: usize) -> Result<PhysReg> {
    match parse_reg(s, line)? {
        Reg::Phys(p) => Ok(p),
        Reg::Temp(_) => err(line, format!("expected physical register, got `{s}`")),
    }
}

fn parse_temp(s: &str, line: usize) -> Result<Temp> {
    match parse_reg(s, line)? {
        Reg::Temp(t) => Ok(t),
        Reg::Phys(_) => err(line, format!("expected temporary, got `{s}`")),
    }
}

fn parse_block(s: &str, line: usize) -> Result<BlockId> {
    s.strip_prefix('b')
        .and_then(|n| n.parse().ok())
        .map(BlockId)
        .ok_or_else(|| ParseError { line, msg: format!("bad block label `{s}`") })
}

fn opcode_by_mnemonic(s: &str) -> Option<OpCode> {
    use OpCode::*;
    Some(match s {
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "div" => Div,
        "rem" => Rem,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "shr" => Shr,
        "cmpeq" => CmpEq,
        "cmplt" => CmpLt,
        "cmple" => CmpLe,
        "neg" => Neg,
        "not" => Not,
        "fadd" => FAdd,
        "fsub" => FSub,
        "fmul" => FMul,
        "fdiv" => FDiv,
        "fcmpeq" => FCmpEq,
        "fcmplt" => FCmpLt,
        "fcmple" => FCmpLe,
        "fneg" => FNeg,
        "fabs" => FAbs,
        "fsqrt" => FSqrt,
        "itof" => IntToFloat,
        "ftoi" => FloatToInt,
        _ => return None,
    })
}

fn cond_by_mnemonic(s: &str) -> Option<Cond> {
    Some(match s {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "ble" => Cond::Le,
        "bgt" => Cond::Gt,
        "bge" => Cond::Ge,
        _ => return None,
    })
}

fn split_tag(line: &str) -> (&str, SpillTag) {
    if let Some((body, comment)) = line.split_once(';') {
        let tag = match comment.trim() {
            "EvictLoad" => SpillTag::EvictLoad,
            "EvictStore" => SpillTag::EvictStore,
            "EvictMove" => SpillTag::EvictMove,
            "ResolveLoad" => SpillTag::ResolveLoad,
            "ResolveStore" => SpillTag::ResolveStore,
            "ResolveMove" => SpillTag::ResolveMove,
            _ => SpillTag::None,
        };
        (body.trim_end(), tag)
    } else {
        (line, SpillTag::None)
    }
}

/// `[base+offset]` (offset may itself be negative: `[t4+-48]`).
fn parse_addr(s: &str, line: usize) -> Result<(Reg, i32)> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| ParseError { line, msg: format!("bad address `{s}`") })?;
    let (base, off) = inner
        .split_once('+')
        .ok_or_else(|| ParseError { line, msg: format!("bad address `{s}`") })?;
    let offset: i32 =
        off.parse().map_err(|_| ParseError { line, msg: format!("bad offset `{off}`") })?;
    Ok((parse_reg(base, line)?, offset))
}

struct FuncParser {
    func: Function,
    current: Option<BlockId>,
}

impl FuncParser {
    /// Parses `func @name(...) {`.
    fn start(header: &str, lineno: usize) -> Result<FuncParser> {
        let rest = header
            .strip_prefix("func @")
            .ok_or_else(|| ParseError { line: lineno, msg: "expected `func @...`".into() })?;
        let open =
            rest.find('(').ok_or_else(|| ParseError { line: lineno, msg: "missing `(`".into() })?;
        let name = &rest[..open];
        let close =
            rest.find(')').ok_or_else(|| ParseError { line: lineno, msg: "missing `)`".into() })?;
        let params_str = &rest[open + 1..close];
        let mut func = Function::new(name);
        let mut params = Vec::new();
        for p in params_str.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (t, class) = p
                .split_once(':')
                .ok_or_else(|| ParseError { line: lineno, msg: format!("bad param `{p}`") })?;
            params.push((parse_temp(t, lineno)?, parse_class(class, lineno)?));
        }
        // Parameter temps are declared by the `temps` line; remember them.
        for (t, _) in &params {
            func.params.push(*t);
        }
        let _ = params;
        Ok(FuncParser { func, current: None })
    }

    fn temps_line(&mut self, rest: &str, lineno: usize) -> Result<()> {
        for decl in rest.split_whitespace() {
            let (t, class) = decl
                .split_once(':')
                .ok_or_else(|| ParseError { line: lineno, msg: format!("bad temp `{decl}`") })?;
            let t = parse_temp(t, lineno)?;
            let class = parse_class(class, lineno)?;
            if t.index() != self.func.num_temps() {
                return err(lineno, format!("temp {t} declared out of order"));
            }
            self.func.new_temp(class, None);
        }
        Ok(())
    }

    fn note_slot(&mut self, t: Temp, slot_str: Option<&str>, lineno: usize) -> Result<()> {
        if let Some(s) = slot_str {
            let id: u32 = s
                .parse()
                .map_err(|_| ParseError { line: lineno, msg: format!("bad slot `{s}`") })?;
            if t.index() >= self.func.spill_slots.len() {
                return err(lineno, format!("slot for unknown temp {t}"));
            }
            self.func.spill_slots[t.index()] = Some(SlotId(id));
            self.func.num_slots = self.func.num_slots.max(id + 1);
        } else {
            self.func.slot_for(t);
        }
        Ok(())
    }

    fn inst_line(&mut self, body: &str, tag: SpillTag, lineno: usize) -> Result<()> {
        let Some(current) = self.current else {
            return err(lineno, "instruction outside a block");
        };
        let inst = self.parse_inst(body, lineno)?;
        self.func.block_mut(current).insts.push(Ins::tagged(inst, tag));
        Ok(())
    }

    fn parse_inst(&mut self, body: &str, lineno: usize) -> Result<Inst> {
        let tokens: Vec<&str> = body.split([' ', ',']).filter(|t| !t.is_empty()).collect();
        if tokens.is_empty() {
            return err(lineno, "empty instruction");
        }
        // Forms starting with a keyword.
        match tokens[0] {
            "st" => {
                // st [base+off], src
                let (base, offset) = parse_addr(tokens[1], lineno)?;
                let src = parse_reg(tokens[2], lineno)?;
                return Ok(Inst::Store { src, base, offset });
            }
            "spill" => {
                // spill tY (slot N), rX   |   spill tY, rX
                let temp = parse_temp(tokens[1], lineno)?;
                let (slot, src_tok) = if tokens[2].starts_with("(slot") {
                    (Some(tokens[3].trim_end_matches(')')), tokens[4])
                } else {
                    (None, tokens[2])
                };
                self.note_slot(temp, slot, lineno)?;
                let src = parse_reg(src_tok, lineno)?;
                return Ok(Inst::SpillStore { src, temp });
            }
            "call" => {
                // call @3 (r1, r2) -> r0  |  call !getchar ()
                let callee = match tokens[1].split_at(1) {
                    ("@", id) => Callee::Func(FuncId(id.parse().map_err(|_| ParseError {
                        line: lineno,
                        msg: format!("bad function id `{}`", tokens[1]),
                    })?)),
                    ("!", name) => Callee::Ext(match name {
                        "getchar" => ExtFn::GetChar,
                        "putint" => ExtFn::PutInt,
                        "putchar" => ExtFn::PutChar,
                        "putfloat" => ExtFn::PutFloat,
                        _ => return err(lineno, format!("unknown external `{name}`")),
                    }),
                    _ => return err(lineno, format!("bad callee `{}`", tokens[1])),
                };
                let mut arg_regs = Vec::new();
                let mut ret_regs = Vec::new();
                let mut in_rets = false;
                for tok in &tokens[2..] {
                    let tok = tok.trim_matches(|c| c == '(' || c == ')');
                    if tok.is_empty() {
                        continue;
                    }
                    if tok == "->" {
                        in_rets = true;
                        continue;
                    }
                    let p = parse_phys(tok, lineno)?;
                    if in_rets {
                        ret_regs.push(p);
                    } else {
                        arg_regs.push(p);
                    }
                }
                return Ok(Inst::Call { callee, arg_regs, ret_regs });
            }
            "jmp" => return Ok(Inst::Jump { target: parse_block(tokens[1], lineno)? }),
            "ret" => {
                let mut ret_regs = Vec::new();
                for tok in &tokens[1..] {
                    ret_regs.push(parse_phys(tok, lineno)?);
                }
                return Ok(Inst::Ret { ret_regs });
            }
            t if cond_by_mnemonic(t).is_some() => {
                let cond = cond_by_mnemonic(t).unwrap();
                let src = parse_reg(tokens[1], lineno)?;
                let then_tgt = parse_block(tokens[2], lineno)?;
                let else_tgt = parse_block(tokens[3], lineno)?;
                return Ok(Inst::Branch { cond, src, then_tgt, else_tgt });
            }
            _ => {}
        }
        // Assignment forms: `<dst> = ...`.
        if tokens.len() < 3 || tokens[1] != "=" {
            return err(lineno, format!("unrecognised instruction `{body}`"));
        }
        let dst = parse_reg(tokens[0], lineno)?;
        let rhs = &tokens[2..];
        match rhs[0] {
            "ld" => {
                let (base, offset) = parse_addr(rhs[1], lineno)?;
                Ok(Inst::Load { dst, base, offset })
            }
            "reload" => {
                let temp = parse_temp(rhs[1], lineno)?;
                let slot = if rhs.len() > 2 && rhs[2].starts_with("(slot") {
                    Some(rhs[3].trim_end_matches(')'))
                } else {
                    None
                };
                self.note_slot(temp, slot, lineno)?;
                Ok(Inst::SpillLoad { dst, temp })
            }
            op if opcode_by_mnemonic(op).is_some() => {
                let op = opcode_by_mnemonic(op).unwrap();
                let mut srcs = Vec::new();
                for tok in &rhs[1..] {
                    srcs.push(parse_reg(tok, lineno)?);
                }
                if srcs.len() != op.arity() {
                    return err(
                        lineno,
                        format!("{} expects {} operands", op.mnemonic(), op.arity()),
                    );
                }
                Ok(Inst::Op { op, dst, srcs })
            }
            single if rhs.len() == 1 => {
                // Move or immediate.
                if let Ok(imm) = single.parse::<i64>() {
                    Ok(Inst::MovI { dst, imm })
                } else if let Ok(imm) = single.parse::<f64>() {
                    Ok(Inst::MovF { dst, imm })
                } else {
                    Ok(Inst::Mov { dst, src: parse_reg(single, lineno)? })
                }
            }
            other => err(lineno, format!("unrecognised operation `{other}`")),
        }
    }
}

/// Parses one function in the printer's format.
///
/// # Examples
///
/// ```
/// let text = "func @double(t0:i) {\n  temps t0:i t1:i\nb0:\n  t1 = add t0, t0\n  r0 = t1\n  ret r0\n}\n";
/// let f = lsra_ir::parse_function(text)?;
/// assert_eq!(f.name, "double");
/// assert_eq!(f.num_temps(), 2);
/// # Ok::<(), lsra_ir::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line; additionally the
/// result is validated structurally.
pub fn parse_function(text: &str) -> Result<Function> {
    parse_function_with_lines(text).map(|(f, _)| f)
}

/// [`parse_function`] plus the [`FunctionLines`] source map; validation
/// errors point at the offending instruction's line rather than the closing
/// brace.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_function_with_lines(text: &str) -> Result<(Function, FunctionLines)> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (lineno, header) = lines
        .by_ref()
        .map(|(n, l)| (n, l.trim()))
        .find(|(_, l)| !l.is_empty() && !l.starts_with(';'))
        .ok_or_else(|| ParseError { line: 1, msg: "empty input".into() })?;
    let mut p = FuncParser::start(header, lineno)?;
    let mut map = FunctionLines { header: lineno, insts: Vec::new() };
    for (lineno, raw) in lines {
        let (body, tag) = split_tag(raw);
        let line = body.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if line == "}" {
            let f = p.func;
            f.validate().map_err(|e| ParseError {
                line: map.line_of(e.block, e.inst).unwrap_or(lineno),
                msg: e.to_string(),
            })?;
            return Ok((f, map));
        }
        if let Some(rest) = line.strip_prefix("temps ") {
            p.temps_line(rest, lineno)?;
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let id = parse_block(label, lineno)?;
            while p.func.num_blocks() <= id.index() {
                p.func.add_block();
                map.insts.push(Vec::new());
            }
            p.current = Some(id);
            continue;
        }
        p.inst_line(line, tag, lineno)?;
        map.insts[p.current.expect("inst_line checked this").index()].push(lineno);
    }
    err(text.lines().count(), "missing closing `}`")
}

/// Parses a whole module in the printer's format.
///
/// # Errors
///
/// Returns a [`ParseError`]; the module is validated before returning.
pub fn parse_module(text: &str) -> Result<Module> {
    parse_module_with_lines(text).map(|(m, _)| m)
}

/// [`parse_module`] plus the per-function [`ModuleLines`] source map. All
/// line numbers (including those in errors raised while parsing a function
/// body) are file-relative, not function-relative.
///
/// # Errors
///
/// Returns a [`ParseError`]; the module is validated before returning, and
/// validation errors are mapped back to the offending instruction's line.
pub fn parse_module_with_lines(text: &str) -> Result<(Module, ModuleLines)> {
    let mut module: Option<Module> = None;
    let mut mlines = ModuleLines::default();
    let mut func_start: Option<usize> = None;
    let mut depth = 0usize;
    let all_lines: Vec<&str> = text.lines().collect();
    for (i, raw) in all_lines.iter().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if func_start.is_some() {
            if line == "}" {
                depth -= 1;
                if depth == 0 {
                    let start = func_start.take().unwrap();
                    let ftext = all_lines[start..=i].join("\n");
                    // Line 1 of `ftext` is file line `start + 1`: offset both
                    // error lines and the recorded source map by `start`.
                    let (f, mut fl) = parse_function_with_lines(&ftext)
                        .map_err(|e| ParseError { line: e.line + start, msg: e.msg })?;
                    fl.offset(start);
                    mlines.funcs.push(fl);
                    module
                        .as_mut()
                        .ok_or_else(|| ParseError {
                            line: lineno,
                            msg: "function before module header".into(),
                        })?
                        .add_func(f);
                }
            }
            continue;
        }
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            let (name, tail) = rest
                .split_once(" (")
                .ok_or_else(|| ParseError { line: lineno, msg: "bad module header".into() })?;
            let words: usize = tail
                .strip_suffix(" words data)")
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| ParseError { line: lineno, msg: "bad module header".into() })?;
            module = Some(Module::new(name, words));
        } else if let Some(rest) = line.strip_prefix("entry @") {
            let id: u32 = rest
                .parse()
                .map_err(|_| ParseError { line: lineno, msg: "bad entry id".into() })?;
            module
                .as_mut()
                .ok_or_else(|| ParseError { line: lineno, msg: "entry before module".into() })?
                .entry = FuncId(id);
        } else if let Some(rest) = line.strip_prefix("data") {
            let m = module
                .as_mut()
                .ok_or_else(|| ParseError { line: lineno, msg: "data before module".into() })?;
            for w in rest.split_whitespace() {
                let v: i64 = w.parse().map_err(|_| ParseError {
                    line: lineno,
                    msg: format!("bad data word `{w}`"),
                })?;
                m.data.push(v);
            }
            if m.data.len() > m.memory_words {
                return err(lineno, "data longer than declared memory");
            }
        } else if line.starts_with("func @") {
            func_start = Some(i);
            depth = 1;
        } else {
            return err(lineno, format!("unexpected line `{line}`"));
        }
    }
    let m = module.ok_or_else(|| ParseError { line: 1, msg: "no module header".into() })?;
    m.validate().map_err(|e| {
        // Map the (function, block, inst) coordinates back to a source line;
        // fall back to the function header for errors without one.
        let idx = m.funcs.iter().position(|f| f.name == e.func);
        let line = idx
            .and_then(|fi| {
                mlines.line_of(fi, e.block, e.inst).or(mlines.funcs.get(fi).map(|fl| fl.header))
            })
            .unwrap_or(0);
        ParseError { line, msg: e.to_string() }
    })?;
    Ok((m, mlines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::machine::MachineSpec;

    fn sample_function() -> Function {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "demo", &[RegClass::Int, RegClass::Float]);
        let x = b.param(0);
        let y = b.param(1);
        let z = b.int_temp("z");
        b.movi(z, -7);
        let w = b.float_temp("w");
        b.movf(w, 2.5);
        let s = b.float_temp("s");
        b.op2(OpCode::FMul, s, y, w);
        let si = b.int_temp("si");
        b.op1(OpCode::FloatToInt, si, s);
        let out = b.int_temp("out");
        b.add(out, x, si);
        b.add(out, out, z);
        b.store(out, z, 3);
        let l = b.int_temp("l");
        b.load(l, z, 3);
        let exit = b.block();
        b.branch(Cond::Ge, l, exit, exit);
        b.switch_to(exit);
        b.call_ext(ExtFn::PutInt, &[l.into()], None);
        b.ret(Some(l.into()));
        b.finish()
    }

    #[test]
    fn function_round_trips() {
        let f = sample_function();
        let text = f.to_string();
        let parsed = parse_function(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed.to_string(), text);
        assert_eq!(parsed.num_temps(), f.num_temps());
        assert_eq!(parsed.num_blocks(), f.num_blocks());
    }

    #[test]
    fn module_round_trips() {
        let mut mb = ModuleBuilder::new("m", 32);
        mb.reserve(4, &[1, -2, 3, 4]);
        let id = mb.add(sample_function());
        mb.entry(id);
        let m = mb.finish();
        let text = m.to_string();
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed.to_string(), text);
        assert_eq!(parsed.data, m.data);
        assert_eq!(parsed.entry, m.entry);
    }

    #[test]
    fn spill_instructions_round_trip() {
        let mut f = Function::new("sp");
        let t = f.new_temp(RegClass::Int, None);
        f.slot_for(t);
        let b0 = f.add_block();
        let r1: Reg = PhysReg::int(1).into();
        let r2: Reg = PhysReg::int(2).into();
        f.block_mut(b0).insts.extend([
            Ins::new(Inst::MovI { dst: r1, imm: 5 }),
            Ins::tagged(Inst::SpillStore { src: r1, temp: t }, SpillTag::EvictStore),
            Ins::tagged(Inst::SpillLoad { dst: r2, temp: t }, SpillTag::ResolveLoad),
            Ins::new(Inst::Ret { ret_regs: vec![PhysReg::int(0)] }),
        ]);
        f.allocated = true;
        let text = f.to_string();
        let parsed = parse_function(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        // allocated is metadata the text doesn't carry; compare bodies.
        assert_eq!(parsed.blocks, f.blocks);
        assert_eq!(parsed.spill_slots, f.spill_slots);
    }

    #[test]
    fn negative_offsets_parse() {
        let text = "func @n() {\n  temps t0:i t1:i\nb0:\n  t0 = 4\n  t1 = ld [t0+-2]\n  ret\n}\n";
        let f = parse_function(text).unwrap();
        assert!(matches!(f.block(BlockId(0)).insts[1].inst, Inst::Load { offset: -2, .. }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "func @bad() {\nb0:\n  t0 = frobnicate t1\n  ret\n}\n";
        let e = parse_function(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("frobnicate"), "{e}");
    }

    #[test]
    fn rejects_missing_brace() {
        let text = "func @open() {\nb0:\n  ret\n";
        assert!(parse_function(text).is_err());
    }

    #[test]
    fn rejects_invalid_parsed_function() {
        // Block without terminator: validation fires at the closing brace,
        // but the error points at the offending instruction's line.
        let text = "func @inv() {\n  temps t0:i\nb0:\n  t0 = 3\n}\n";
        let e = parse_function(text).unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        assert!(e.msg.contains("malformed block"), "{e}");
    }

    #[test]
    fn validation_errors_point_at_the_offending_instruction() {
        // t1 is a float; the add on line 5 is the class mismatch.
        let text = "func @cls() {\n  temps t0:i t1:f\nb0:\n  t0 = 1\n  t1 = add t0, t0\n  ret\n}\n";
        let e = parse_function(text).unwrap_err();
        assert_eq!(e.line, 5, "{e}");
    }

    #[test]
    fn function_lines_map_every_instruction() {
        let f = sample_function();
        let text = f.to_string();
        let (parsed, lines) = parse_function_with_lines(&text).unwrap();
        assert_eq!(lines.header, 1);
        let num_lines = text.lines().count();
        let mut mapped = 0;
        for b in parsed.block_ids() {
            let mut prev = 0;
            for i in 0..parsed.block(b).insts.len() {
                let l = lines.line_of(b, i).unwrap_or_else(|| panic!("no line for {b} inst {i}"));
                assert!(l > prev && l <= num_lines, "{b} inst {i} -> line {l}");
                prev = l;
                mapped += 1;
            }
        }
        assert_eq!(mapped, parsed.num_insts());
        assert_eq!(lines.line_of(BlockId(99), 0), None);
    }

    #[test]
    fn module_errors_are_file_relative() {
        // The bad opcode sits on file line 8, inside the second function.
        let text = "module m (0 words data)\nentry @0\nfunc @a() {\nb0:\n  ret\n}\nfunc @b() {\nb0:\n  t0 = frobnicate t1\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 9, "{e}");
        assert!(e.msg.contains("frobnicate"), "{e}");
    }

    #[test]
    fn module_validation_errors_are_file_relative() {
        // Parses fine; validation rejects the float move into an int temp on
        // line 10 of the file (line 4 of the second function).
        let text = "module m (0 words data)\nentry @0\nfunc @a() {\nb0:\n  ret\n}\nfunc @b() {\n  temps t0:i\nb0:\n  t0 = 2.5\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 10, "{e}");
    }
}

//! Register operands: virtual temporaries and physical (machine) registers.
//!
//! The paper calls every allocation candidate — program variable or
//! compiler-generated value — a *temporary* (§2.1). Before allocation,
//! instructions reference [`Temp`]s (plus a few precolored [`PhysReg`]s at
//! call boundaries); after allocation every operand is a [`PhysReg`].

use std::fmt;

/// A machine register file. The Digital Alpha, the paper's target, has
/// separate integer and floating-point files that cannot exchange values
/// except through memory (§3).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General-purpose (integer/pointer) registers.
    Int,
    /// Floating-point registers.
    Float,
}

impl RegClass {
    /// Both classes, in a fixed order usable for indexing per-class tables.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Float];

    /// A dense index (0 or 1) for per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Float => 1,
        }
    }

    /// Short mnemonic used by the IR printer (`i` / `f`).
    pub fn mnemonic(self) -> char {
        match self {
            RegClass::Int => 'i',
            RegClass::Float => 'f',
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A virtual register: an allocation candidate ("temporary" in the paper).
///
/// The integer is an index into the owning function's temporary table, which
/// records the class and optional name of each temporary.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Temp(pub u32);

impl Temp {
    /// The dense index of this temporary within its function.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A physical machine register: a class plus an index within that class's
/// allocatable register set (`0..MachineSpec::num_regs(class)`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg {
    /// Which register file this register belongs to.
    pub class: RegClass,
    /// Index within the file.
    pub index: u8,
}

impl PhysReg {
    /// Creates a physical register reference.
    #[inline]
    pub fn new(class: RegClass, index: u8) -> Self {
        PhysReg { class, index }
    }

    /// An integer register.
    #[inline]
    pub fn int(index: u8) -> Self {
        PhysReg::new(RegClass::Int, index)
    }

    /// A floating-point register.
    #[inline]
    pub fn float(index: u8) -> Self {
        PhysReg::new(RegClass::Float, index)
    }
}

impl fmt::Debug for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Float => write!(f, "f{}", self.index),
        }
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A register operand: either a virtual temporary (pre-allocation) or a
/// physical register (precolored operand, or post-allocation).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// A virtual temporary awaiting allocation.
    Temp(Temp),
    /// A physical machine register.
    Phys(PhysReg),
}

impl Reg {
    /// Returns the temporary if this operand is virtual.
    #[inline]
    pub fn as_temp(self) -> Option<Temp> {
        match self {
            Reg::Temp(t) => Some(t),
            Reg::Phys(_) => None,
        }
    }

    /// Returns the physical register if this operand is precolored/allocated.
    #[inline]
    pub fn as_phys(self) -> Option<PhysReg> {
        match self {
            Reg::Phys(p) => Some(p),
            Reg::Temp(_) => None,
        }
    }

    /// True if this operand is a virtual temporary.
    #[inline]
    pub fn is_temp(self) -> bool {
        matches!(self, Reg::Temp(_))
    }

    /// True if this operand is a physical register.
    #[inline]
    pub fn is_phys(self) -> bool {
        matches!(self, Reg::Phys(_))
    }
}

impl From<Temp> for Reg {
    fn from(t: Temp) -> Reg {
        Reg::Temp(t)
    }
}

impl From<PhysReg> for Reg {
    fn from(p: PhysReg) -> Reg {
        Reg::Phys(p)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Temp(t) => write!(f, "{t}"),
            Reg::Phys(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense() {
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Float.index(), 1);
        for (i, c) in RegClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn reg_conversions() {
        let t = Temp(7);
        let r: Reg = t.into();
        assert_eq!(r.as_temp(), Some(t));
        assert_eq!(r.as_phys(), None);
        assert!(r.is_temp());

        let p = PhysReg::int(3);
        let r: Reg = p.into();
        assert_eq!(r.as_phys(), Some(p));
        assert!(r.is_phys());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Temp(4).to_string(), "t4");
        assert_eq!(PhysReg::int(2).to_string(), "r2");
        assert_eq!(PhysReg::float(9).to_string(), "f9");
        assert_eq!(Reg::Temp(Temp(1)).to_string(), "t1");
    }

    #[test]
    fn phys_reg_ordering_groups_by_class() {
        let a = PhysReg::int(31);
        let b = PhysReg::float(0);
        assert!(a < b, "all int registers sort before float registers");
    }
}

//! A minimal x86-64 instruction encoder.
//!
//! Emits exactly the subset of x86-64 the lowering in [`crate::lower`]
//! needs: 64-bit ALU operations, scalar-double SSE2, memory operands with a
//! 32-bit displacement (plus one scaled-index form for data memory), byte
//! condition sets, and rel32 control flow with label fixups. There is no
//! disassembler; tests compare emitted bytes against hand-assembled
//! patterns, which is the crate's `encoding` test surface.
//!
//! Encoding choices are deliberately uniform rather than minimal:
//! register-indirect operands always use a 32-bit displacement, so the same
//! logical operation always produces the same byte shape regardless of
//! offset magnitude. The only size optimisation kept is `mov r64, imm`
//! (sign-extended imm32 vs. full imm64), because immediate loads are the
//! most frequent instruction the lowering emits.

/// A 64-bit general-purpose register (hardware encoding 0-15).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Gpr(pub u8);

/// `rax` — scratch lane 0, division dividend/quotient.
pub const RAX: Gpr = Gpr(0);
/// `rcx` — scratch lane 1, shift count, division divisor.
pub const RCX: Gpr = Gpr(1);
/// `rdx` — scratch lane 2, division remainder.
pub const RDX: Gpr = Gpr(2);
/// `rbx` — callee-saved; the lowering pins the `Env` pointer here.
pub const RBX: Gpr = Gpr(3);
/// `rsp` — stack pointer.
pub const RSP: Gpr = Gpr(4);
/// `rbp` — frame base; virtual registers and spill slots live below it.
pub const RBP: Gpr = Gpr(5);
/// `rsi` — second SysV argument register (helper calls).
pub const RSI: Gpr = Gpr(6);
/// `rdi` — first SysV argument register (helper calls, `rep stosq`).
pub const RDI: Gpr = Gpr(7);
/// `r12` — callee-saved; the lowering pins the data-memory base here.
pub const R12: Gpr = Gpr(12);
/// `r13` — callee-saved; saved/restored only for stack alignment.
pub const R13: Gpr = Gpr(13);
/// `r14` — callee-saved; the lowering pins the memory word count here.
pub const R14: Gpr = Gpr(14);

/// An SSE register (hardware encoding 0-15).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Xmm(pub u8);

/// `xmm0` — float scratch lane 0.
pub const XMM0: Xmm = Xmm(0);
/// `xmm1` — float scratch lane 1.
pub const XMM1: Xmm = Xmm(1);

/// A condition code for `setcc`/`jcc` (the low nibble of the opcode).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Cc {
    /// Below (unsigned <, CF=1).
    B = 2,
    /// Above or equal (unsigned >=, CF=0).
    Ae = 3,
    /// Equal (ZF=1).
    E = 4,
    /// Not equal (ZF=0).
    Ne = 5,
    /// Below or equal (unsigned <=).
    Be = 6,
    /// Above (unsigned >).
    A = 7,
    /// Sign (SF=1).
    S = 8,
    /// No sign (SF=0).
    Ns = 9,
    /// Parity (PF=1; unordered after `ucomisd`).
    P = 10,
    /// No parity (PF=0; ordered after `ucomisd`).
    Np = 11,
    /// Less (signed <).
    L = 12,
    /// Greater or equal (signed >=).
    Ge = 13,
    /// Less or equal (signed <=).
    Le = 14,
    /// Greater (signed >).
    G = 15,
}

impl Cc {
    /// Every condition code, in nibble order.
    pub const ALL: [Cc; 14] = [
        Cc::B,
        Cc::Ae,
        Cc::E,
        Cc::Ne,
        Cc::Be,
        Cc::A,
        Cc::S,
        Cc::Ns,
        Cc::P,
        Cc::Np,
        Cc::L,
        Cc::Ge,
        Cc::Le,
        Cc::G,
    ];

    /// The condition code with opcode nibble `n`, if one exists (the
    /// decoder's inverse of `jcc`/`setcc` emission).
    pub fn from_nibble(n: u8) -> Option<Cc> {
        Cc::ALL.into_iter().find(|c| *c as u8 == n)
    }

    /// The standard mnemonic suffix (`e`, `ne`, `l`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cc::B => "b",
            Cc::Ae => "ae",
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::Be => "be",
            Cc::A => "a",
            Cc::S => "s",
            Cc::Ns => "ns",
            Cc::P => "p",
            Cc::Np => "np",
            Cc::L => "l",
            Cc::Ge => "ge",
            Cc::Le => "le",
            Cc::G => "g",
        }
    }
}

/// A forward-referencable position in the code stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Label(usize);

/// The instruction stream under construction.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<u8>,
    /// Bound byte offset per label (`usize::MAX` while unbound).
    labels: Vec<usize>,
    /// `(rel32 position, target)` pairs patched by [`Asm::finish`].
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current length in bytes (the offset the next instruction lands at).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Emitted bytes so far (fixups unpatched until [`Asm::finish`]).
    pub fn bytes(&self) -> &[u8] {
        &self.code
    }

    /// Creates a fresh unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(usize::MAX);
        Label(self.labels.len() - 1)
    }

    /// Binds `l` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if `l` is already bound.
    pub fn bind(&mut self, l: Label) {
        assert_eq!(self.labels[l.0], usize::MAX, "label bound twice");
        self.labels[l.0] = self.code.len();
    }

    /// Patches every recorded rel32 against its bound label and returns the
    /// finished byte stream.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Vec<u8> {
        for &(pos, l) in &self.fixups {
            let target = self.labels[l.0];
            assert_ne!(target, usize::MAX, "unbound label {l:?}");
            let rel = target as i64 - (pos as i64 + 4);
            self.code[pos..pos + 4].copy_from_slice(&(rel as i32).to_le_bytes());
        }
        self.code
    }

    fn u8(&mut self, b: u8) {
        self.code.push(b);
    }

    fn i32(&mut self, v: i32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// REX prefix with W=1. `r` is the ModRM reg operand, `b` the rm/base.
    fn rex_w(&mut self, r: u8, b: u8) {
        self.u8(0x48 | ((r >> 3) << 2) | (b >> 3));
    }

    /// REX prefix with W=1 and an index register (for SIB forms).
    fn rex_wx(&mut self, r: u8, x: u8, b: u8) {
        self.u8(0x48 | ((r >> 3) << 2) | ((x >> 3) << 1) | (b >> 3));
    }

    fn modrm(&mut self, md: u8, reg: u8, rm: u8) {
        self.u8((md << 6) | ((reg & 7) << 3) | (rm & 7));
    }

    /// ModRM (+SIB) for `[base + disp32]`. Always emits the disp32 form so
    /// every offset encodes identically; `rsp`/`r12` bases get the required
    /// SIB byte.
    fn mem(&mut self, reg: u8, base: Gpr, disp: i32) {
        if base.0 & 7 == 4 {
            self.modrm(2, reg, 4);
            self.u8(0x24); // SIB: scale=1, no index, base=rsp/r12
        } else {
            self.modrm(2, reg, base.0);
        }
        self.i32(disp);
    }

    /// ModRM+SIB for `[base + index*8]` (no displacement).
    fn mem_index8(&mut self, reg: u8, base: Gpr, index: Gpr) {
        debug_assert!(base.0 & 7 != 5, "rbp/r13 base needs disp");
        debug_assert!(index.0 & 7 != 4, "rsp cannot index");
        self.modrm(0, reg, 4);
        self.u8((3 << 6) | ((index.0 & 7) << 3) | (base.0 & 7));
    }

    // ---- moves ----

    /// `mov dst, src` (64-bit register-register).
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_w(src.0, dst.0);
        self.u8(0x89);
        self.modrm(3, src.0, dst.0);
    }

    /// `mov dst, imm` — sign-extended imm32 when it fits, else `movabs`.
    pub fn mov_ri(&mut self, dst: Gpr, imm: i64) {
        if imm as i32 as i64 == imm {
            self.rex_w(0, dst.0);
            self.u8(0xC7);
            self.modrm(3, 0, dst.0);
            self.i32(imm as i32);
        } else {
            self.rex_w(0, dst.0);
            self.u8(0xB8 | (dst.0 & 7));
            self.i64(imm);
        }
    }

    /// `mov dst, [base + disp]` (64-bit load).
    pub fn mov_rm(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex_w(dst.0, base.0);
        self.u8(0x8B);
        self.mem(dst.0, base, disp);
    }

    /// `mov [base + disp], src` (64-bit store).
    pub fn mov_mr(&mut self, base: Gpr, disp: i32, src: Gpr) {
        self.rex_w(src.0, base.0);
        self.u8(0x89);
        self.mem(src.0, base, disp);
    }

    /// `mov dst, [base + index*8]`.
    pub fn mov_rm_index8(&mut self, dst: Gpr, base: Gpr, index: Gpr) {
        self.rex_wx(dst.0, index.0, base.0);
        self.u8(0x8B);
        self.mem_index8(dst.0, base, index);
    }

    /// `mov [base + index*8], src`.
    pub fn mov_mr_index8(&mut self, base: Gpr, index: Gpr, src: Gpr) {
        self.rex_wx(src.0, index.0, base.0);
        self.u8(0x89);
        self.mem_index8(src.0, base, index);
    }

    /// `mov qword ptr [base + disp], imm32` (sign-extended).
    pub fn mov_mi(&mut self, base: Gpr, disp: i32, imm: i32) {
        self.rex_w(0, base.0);
        self.u8(0xC7);
        self.mem(0, base, disp);
        self.i32(imm);
    }

    /// `movzx dst, al`-style zero extension of a low byte register.
    pub fn movzx_rb(&mut self, dst: Gpr, src: Gpr) {
        debug_assert!(src.0 < 4, "only a/c/d/b low bytes are REX-free");
        self.rex_w(dst.0, src.0);
        self.u8(0x0F);
        self.u8(0xB6);
        self.modrm(3, dst.0, src.0);
    }

    // ---- ALU ----

    fn alu_rr(&mut self, opcode: u8, dst: Gpr, src: Gpr) {
        self.rex_w(src.0, dst.0);
        self.u8(opcode);
        self.modrm(3, src.0, dst.0);
    }

    /// `add dst, src`.
    pub fn add_rr(&mut self, dst: Gpr, src: Gpr) {
        self.alu_rr(0x01, dst, src);
    }

    /// `sub dst, src`.
    pub fn sub_rr(&mut self, dst: Gpr, src: Gpr) {
        self.alu_rr(0x29, dst, src);
    }

    /// `and dst, src`.
    pub fn and_rr(&mut self, dst: Gpr, src: Gpr) {
        self.alu_rr(0x21, dst, src);
    }

    /// `or dst, src`.
    pub fn or_rr(&mut self, dst: Gpr, src: Gpr) {
        self.alu_rr(0x09, dst, src);
    }

    /// `xor dst, src`.
    pub fn xor_rr(&mut self, dst: Gpr, src: Gpr) {
        self.alu_rr(0x31, dst, src);
    }

    /// `cmp a, b`.
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) {
        self.alu_rr(0x39, a, b);
    }

    /// `test a, b`.
    pub fn test_rr(&mut self, a: Gpr, b: Gpr) {
        self.alu_rr(0x85, a, b);
    }

    /// `imul dst, src` (low 64 bits, i.e. wrapping multiply).
    pub fn imul_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_w(dst.0, src.0);
        self.u8(0x0F);
        self.u8(0xAF);
        self.modrm(3, dst.0, src.0);
    }

    /// `add reg, imm32` (sign-extended).
    pub fn add_ri(&mut self, reg: Gpr, imm: i32) {
        self.rex_w(0, reg.0);
        self.u8(0x81);
        self.modrm(3, 0, reg.0);
        self.i32(imm);
    }

    /// `sub reg, imm32`.
    pub fn sub_ri(&mut self, reg: Gpr, imm: i32) {
        self.rex_w(0, reg.0);
        self.u8(0x81);
        self.modrm(3, 5, reg.0);
        self.i32(imm);
    }

    /// `cmp reg, imm8` (sign-extended).
    pub fn cmp_ri8(&mut self, reg: Gpr, imm: i8) {
        self.rex_w(0, reg.0);
        self.u8(0x83);
        self.modrm(3, 7, reg.0);
        self.u8(imm as u8);
    }

    /// `cmp qword ptr [base + disp], imm8` (sign-extended).
    pub fn cmp_mi8(&mut self, base: Gpr, disp: i32, imm: i8) {
        self.rex_w(0, base.0);
        self.u8(0x83);
        self.mem(7, base, disp);
        self.u8(imm as u8);
    }

    /// `cmp a, qword ptr [base + disp]`.
    pub fn cmp_rm(&mut self, a: Gpr, base: Gpr, disp: i32) {
        self.rex_w(a.0, base.0);
        self.u8(0x3B);
        self.mem(a.0, base, disp);
    }

    /// `neg reg`.
    pub fn neg_r(&mut self, reg: Gpr) {
        self.rex_w(0, reg.0);
        self.u8(0xF7);
        self.modrm(3, 3, reg.0);
    }

    /// `not reg`.
    pub fn not_r(&mut self, reg: Gpr) {
        self.rex_w(0, reg.0);
        self.u8(0xF7);
        self.modrm(3, 2, reg.0);
    }

    /// `shl reg, cl`.
    pub fn shl_cl(&mut self, reg: Gpr) {
        self.rex_w(0, reg.0);
        self.u8(0xD3);
        self.modrm(3, 4, reg.0);
    }

    /// `sar reg, cl`.
    pub fn sar_cl(&mut self, reg: Gpr) {
        self.rex_w(0, reg.0);
        self.u8(0xD3);
        self.modrm(3, 7, reg.0);
    }

    /// `cqo` (sign-extend rax into rdx:rax).
    pub fn cqo(&mut self) {
        self.u8(0x48);
        self.u8(0x99);
    }

    /// `idiv reg` (rdx:rax / reg -> quotient rax, remainder rdx).
    pub fn idiv_r(&mut self, reg: Gpr) {
        self.rex_w(0, reg.0);
        self.u8(0xF7);
        self.modrm(3, 7, reg.0);
    }

    /// `xor e<reg>, e<reg>` — the canonical 64-bit zeroing idiom.
    pub fn zero_r(&mut self, reg: Gpr) {
        if reg.0 >= 8 {
            self.u8(0x45);
        }
        self.u8(0x31);
        self.modrm(3, reg.0, reg.0);
    }

    /// `setcc` on a low byte register (`al`, `cl`, `dl`, `bl`).
    pub fn setcc(&mut self, cc: Cc, reg: Gpr) {
        debug_assert!(reg.0 < 4, "only a/c/d/b low bytes are REX-free");
        self.u8(0x0F);
        self.u8(0x90 | cc as u8);
        self.modrm(3, 0, reg.0);
    }

    /// `and dst8, src8` on low byte registers.
    pub fn and_rr8(&mut self, dst: Gpr, src: Gpr) {
        debug_assert!(dst.0 < 4 && src.0 < 4);
        self.u8(0x20);
        self.modrm(3, src.0, dst.0);
    }

    /// `inc qword ptr [base + disp]`.
    pub fn inc_m(&mut self, base: Gpr, disp: i32) {
        self.rex_w(0, base.0);
        self.u8(0xFF);
        self.mem(0, base, disp);
    }

    /// `dec qword ptr [base + disp]`.
    pub fn dec_m(&mut self, base: Gpr, disp: i32) {
        self.rex_w(0, base.0);
        self.u8(0xFF);
        self.mem(1, base, disp);
    }

    // ---- SSE2 scalar double ----

    fn sse_prefix_op(&mut self, prefix: u8, op: u8, reg: u8, rm: u8) {
        self.u8(prefix);
        if reg >= 8 || rm >= 8 {
            self.u8(0x40 | ((reg >> 3) << 2) | (rm >> 3));
        }
        self.u8(0x0F);
        self.u8(op);
        self.modrm(3, reg, rm);
    }

    /// `movsd xmm, [base + disp]`.
    pub fn movsd_xm(&mut self, dst: Xmm, base: Gpr, disp: i32) {
        self.u8(0xF2);
        if dst.0 >= 8 || base.0 >= 8 {
            self.u8(0x40 | ((dst.0 >> 3) << 2) | (base.0 >> 3));
        }
        self.u8(0x0F);
        self.u8(0x10);
        self.mem(dst.0, base, disp);
    }

    /// `movsd [base + disp], xmm`.
    pub fn movsd_mx(&mut self, base: Gpr, disp: i32, src: Xmm) {
        self.u8(0xF2);
        if src.0 >= 8 || base.0 >= 8 {
            self.u8(0x40 | ((src.0 >> 3) << 2) | (base.0 >> 3));
        }
        self.u8(0x0F);
        self.u8(0x11);
        self.mem(src.0, base, disp);
    }

    /// `addsd dst, src`.
    pub fn addsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_prefix_op(0xF2, 0x58, dst.0, src.0);
    }

    /// `subsd dst, src`.
    pub fn subsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_prefix_op(0xF2, 0x5C, dst.0, src.0);
    }

    /// `mulsd dst, src`.
    pub fn mulsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_prefix_op(0xF2, 0x59, dst.0, src.0);
    }

    /// `divsd dst, src`.
    pub fn divsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_prefix_op(0xF2, 0x5E, dst.0, src.0);
    }

    /// `sqrtsd dst, src`.
    pub fn sqrtsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_prefix_op(0xF2, 0x51, dst.0, src.0);
    }

    /// `ucomisd a, b` (sets ZF/PF/CF like an unsigned compare).
    pub fn ucomisd(&mut self, a: Xmm, b: Xmm) {
        self.sse_prefix_op(0x66, 0x2E, a.0, b.0);
    }

    /// `cvtsi2sd xmm, r64` (exactly Rust's `i64 as f64`).
    pub fn cvtsi2sd(&mut self, dst: Xmm, src: Gpr) {
        self.u8(0xF2);
        self.rex_w(dst.0, src.0);
        self.u8(0x0F);
        self.u8(0x2A);
        self.modrm(3, dst.0, src.0);
    }

    // ---- stack / control flow ----

    /// `push reg`.
    pub fn push_r(&mut self, reg: Gpr) {
        if reg.0 >= 8 {
            self.u8(0x41);
        }
        self.u8(0x50 | (reg.0 & 7));
    }

    /// `pop reg`.
    pub fn pop_r(&mut self, reg: Gpr) {
        if reg.0 >= 8 {
            self.u8(0x41);
        }
        self.u8(0x58 | (reg.0 & 7));
    }

    /// `leave` (`mov rsp, rbp; pop rbp`).
    pub fn leave(&mut self) {
        self.u8(0xC9);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.u8(0xC3);
    }

    /// `rep stosq` (fills `rcx` qwords at `[rdi]` with `rax`).
    pub fn rep_stosq(&mut self) {
        self.u8(0xF3);
        self.u8(0x48);
        self.u8(0xAB);
    }

    /// `jmp label` (rel32).
    pub fn jmp(&mut self, l: Label) {
        self.u8(0xE9);
        self.fixups.push((self.code.len(), l));
        self.i32(0);
    }

    /// `jcc label` (rel32).
    pub fn jcc(&mut self, cc: Cc, l: Label) {
        self.u8(0x0F);
        self.u8(0x80 | cc as u8);
        self.fixups.push((self.code.len(), l));
        self.i32(0);
    }

    /// `call` with a rel32 placeholder; returns the placeholder's byte
    /// position for an external (cross-function) patch.
    pub fn call_rel32_placeholder(&mut self) -> usize {
        self.u8(0xE8);
        let pos = self.code.len();
        self.i32(0);
        pos
    }

    /// `call reg` (indirect, for absolute helper addresses).
    pub fn call_r(&mut self, reg: Gpr) {
        if reg.0 >= 8 {
            self.u8(0x41);
        }
        self.u8(0xFF);
        self.modrm(3, 2, reg.0);
    }

    /// Patches a rel32 at `pos` so control transfers to absolute offset
    /// `target` within the same buffer.
    pub fn patch_rel32(code: &mut [u8], pos: usize, target: usize) {
        let rel = target as i64 - (pos as i64 + 4);
        code[pos..pos + 4].copy_from_slice(&(rel as i32).to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(f: impl FnOnce(&mut Asm)) -> Vec<u8> {
        let mut a = Asm::new();
        f(&mut a);
        a.finish()
    }

    #[test]
    fn mov_reg_reg() {
        assert_eq!(emit(|a| a.mov_rr(RBP, RSP)), [0x48, 0x89, 0xE5]);
        assert_eq!(emit(|a| a.mov_rr(RBX, RDI)), [0x48, 0x89, 0xFB]);
        assert_eq!(emit(|a| a.mov_rr(R12, RAX)), [0x49, 0x89, 0xC4]);
    }

    #[test]
    fn mov_imm_compression() {
        // imm32 fits: sign-extended C7 form.
        assert_eq!(emit(|a| a.mov_ri(RAX, 42)), [0x48, 0xC7, 0xC0, 42, 0, 0, 0]);
        assert_eq!(emit(|a| a.mov_ri(RAX, -1)), [0x48, 0xC7, 0xC0, 0xFF, 0xFF, 0xFF, 0xFF]);
        // imm64: movabs.
        let big = 0x1122334455667788u64 as i64;
        assert_eq!(
            emit(|a| a.mov_ri(RAX, big)),
            [0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
    }

    #[test]
    fn loads_and_stores_use_disp32() {
        assert_eq!(emit(|a| a.mov_rm(RAX, RBP, -8)), [0x48, 0x8B, 0x85, 0xF8, 0xFF, 0xFF, 0xFF]);
        assert_eq!(emit(|a| a.mov_mr(RBX, 0x58, RAX)), [0x48, 0x89, 0x83, 0x58, 0, 0, 0]);
        // r12 base forces a SIB byte.
        assert_eq!(emit(|a| a.mov_rm(RCX, R12, 16)), [0x49, 0x8B, 0x8C, 0x24, 16, 0, 0, 0]);
    }

    #[test]
    fn scaled_index_memory_access() {
        // mov rcx, [r12 + rax*8]
        assert_eq!(emit(|a| a.mov_rm_index8(RCX, R12, RAX)), [0x49, 0x8B, 0x0C, 0xC4]);
        // mov [r12 + rax*8], rcx
        assert_eq!(emit(|a| a.mov_mr_index8(R12, RAX, RCX)), [0x49, 0x89, 0x0C, 0xC4]);
    }

    #[test]
    fn alu_forms() {
        assert_eq!(emit(|a| a.add_rr(RAX, RCX)), [0x48, 0x01, 0xC8]);
        assert_eq!(emit(|a| a.sub_rr(RAX, RCX)), [0x48, 0x29, 0xC8]);
        assert_eq!(emit(|a| a.imul_rr(RAX, RCX)), [0x48, 0x0F, 0xAF, 0xC1]);
        assert_eq!(emit(|a| a.cmp_rr(RAX, R14)), [0x4C, 0x39, 0xF0]);
        assert_eq!(emit(|a| a.test_rr(RAX, RAX)), [0x48, 0x85, 0xC0]);
        assert_eq!(emit(|a| a.neg_r(RAX)), [0x48, 0xF7, 0xD8]);
        assert_eq!(emit(|a| a.not_r(RAX)), [0x48, 0xF7, 0xD0]);
        assert_eq!(emit(|a| a.shl_cl(RAX)), [0x48, 0xD3, 0xE0]);
        assert_eq!(emit(|a| a.sar_cl(RAX)), [0x48, 0xD3, 0xF8]);
        assert_eq!(emit(|a| a.cqo()), [0x48, 0x99]);
        assert_eq!(emit(|a| a.idiv_r(RCX)), [0x48, 0xF7, 0xF9]);
        assert_eq!(emit(|a| a.zero_r(RAX)), [0x31, 0xC0]);
    }

    #[test]
    fn flag_materialisation() {
        assert_eq!(emit(|a| a.setcc(Cc::E, RAX)), [0x0F, 0x94, 0xC0]);
        assert_eq!(emit(|a| a.setcc(Cc::L, RAX)), [0x0F, 0x9C, 0xC0]);
        assert_eq!(emit(|a| a.setcc(Cc::Np, RAX)), [0x0F, 0x9B, 0xC0]);
        assert_eq!(emit(|a| a.and_rr8(RAX, RDX)), [0x20, 0xD0]);
        assert_eq!(emit(|a| a.movzx_rb(RAX, RAX)), [0x48, 0x0F, 0xB6, 0xC0]);
    }

    #[test]
    fn counter_and_guard_forms() {
        assert_eq!(emit(|a| a.inc_m(RBX, 8)), [0x48, 0xFF, 0x83, 8, 0, 0, 0]);
        assert_eq!(emit(|a| a.dec_m(RBX, 8)), [0x48, 0xFF, 0x8B, 8, 0, 0, 0]);
        assert_eq!(emit(|a| a.cmp_mi8(RBX, 8, 0)), [0x48, 0x83, 0xBB, 8, 0, 0, 0, 0]);
        assert_eq!(emit(|a| a.cmp_ri8(RCX, -1)), [0x48, 0x83, 0xF9, 0xFF]);
        assert_eq!(emit(|a| a.mov_mi(RBX, 0x70, 3)), [0x48, 0xC7, 0x83, 0x70, 0, 0, 0, 3, 0, 0, 0]);
    }

    #[test]
    fn sse_scalar_double() {
        assert_eq!(
            emit(|a| a.movsd_xm(XMM0, RBP, -16)),
            [0xF2, 0x0F, 0x10, 0x85, 0xF0, 0xFF, 0xFF, 0xFF]
        );
        assert_eq!(
            emit(|a| a.movsd_mx(RBP, -16, XMM0)),
            [0xF2, 0x0F, 0x11, 0x85, 0xF0, 0xFF, 0xFF, 0xFF]
        );
        assert_eq!(emit(|a| a.addsd(XMM0, XMM1)), [0xF2, 0x0F, 0x58, 0xC1]);
        assert_eq!(emit(|a| a.subsd(XMM0, XMM1)), [0xF2, 0x0F, 0x5C, 0xC1]);
        assert_eq!(emit(|a| a.mulsd(XMM0, XMM1)), [0xF2, 0x0F, 0x59, 0xC1]);
        assert_eq!(emit(|a| a.divsd(XMM0, XMM1)), [0xF2, 0x0F, 0x5E, 0xC1]);
        assert_eq!(emit(|a| a.sqrtsd(XMM0, XMM0)), [0xF2, 0x0F, 0x51, 0xC0]);
        assert_eq!(emit(|a| a.ucomisd(XMM1, XMM0)), [0x66, 0x0F, 0x2E, 0xC8]);
        assert_eq!(emit(|a| a.cvtsi2sd(XMM0, RAX)), [0xF2, 0x48, 0x0F, 0x2A, 0xC0]);
    }

    #[test]
    fn stack_and_calls() {
        assert_eq!(emit(|a| a.push_r(RBP)), [0x55]);
        assert_eq!(emit(|a| a.push_r(R12)), [0x41, 0x54]);
        assert_eq!(emit(|a| a.pop_r(R14)), [0x41, 0x5E]);
        assert_eq!(emit(|a| a.leave()), [0xC9]);
        assert_eq!(emit(|a| a.ret()), [0xC3]);
        assert_eq!(emit(|a| a.call_r(RAX)), [0xFF, 0xD0]);
        assert_eq!(emit(|a| a.rep_stosq()), [0xF3, 0x48, 0xAB]);
        assert_eq!(emit(|a| a.sub_ri(RSP, 32)), [0x48, 0x81, 0xEC, 32, 0, 0, 0]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.label();
        let out = a.label();
        a.bind(top);
        a.test_rr(RAX, RAX); // 3 bytes
        a.jcc(Cc::E, out); // 6 bytes
        a.jmp(top); // 5 bytes
        a.bind(out);
        a.ret();
        let code = a.finish();
        // jcc at offset 3, rel32 at 5..9, target 14 => 14 - 9 = 5
        assert_eq!(&code[5..9], &5i32.to_le_bytes());
        // jmp at offset 9, rel32 at 10..14, target 0 => 0 - 14 = -14
        assert_eq!(&code[10..14], &(-14i32).to_le_bytes());
    }

    #[test]
    fn call_placeholder_patching() {
        let mut a = Asm::new();
        let pos = a.call_rel32_placeholder();
        a.ret();
        let mut code = a.finish();
        Asm::patch_rel32(&mut code, pos, 5);
        assert_eq!(code, [0xE8, 0, 0, 0, 0, 0xC3]);
    }
}

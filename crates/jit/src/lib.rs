//! Native x86-64 JIT backend for allocated IR.
//!
//! The paper measured allocation quality by *running* compiled programs on
//! Alpha hardware; this crate closes the same loop for the reproduction. It
//! lowers an *allocated* [`lsra_ir::Module`] (every operand a physical
//! register or spill slot) to x86-64 machine code, maps it W^X-safely, and
//! executes it on the host — with instruction-category counters incremented
//! inline so the resulting [`lsra_vm::RunResult`] is field-for-field
//! comparable with [`lsra_vm::run_module`]: same output events, same return
//! value, same memory checksum, same [`lsra_vm::DynCounts`].
//!
//! The crate is dependency-free (only `lsra-ir` and `lsra-vm` from the
//! workspace; syscalls go through self-declared bindings) and degrades
//! gracefully: on hosts that cannot map executable memory, every entry
//! point returns [`JitError::Unsupported`] and [`jit_supported`] lets
//! callers skip up front.
//!
//! ```no_run
//! use lsra_ir::MachineSpec;
//! use lsra_vm::VmOptions;
//!
//! # fn demo(module: &lsra_ir::Module) -> Result<(), lsra_jit::JitRunError> {
//! let spec = MachineSpec::alpha_like();
//! if lsra_jit::jit_supported() {
//!     let code = lsra_jit::compile_module(module, &spec)?;
//!     let result = code.run(b"input", &VmOptions::default())?;
//!     assert_eq!(result.counts.total, result.counts.by_tag.iter().sum());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod encoder;
mod lower;
mod runtime;

use lsra_ir::{FuncId, Function, MachineSpec, Module};
use lsra_vm::{DynCounts, RunResult, VmError, VmOptions};

pub use runtime::{jit_supported, Env};

use runtime::{err, ExecMem, IoState};

/// The lowering's machine-level contract, re-exported for static analysis.
///
/// Everything generated code and the runtime agree on lives here: the
/// [`Env`] field offsets baked into `inc`/`cmp`/`mov` instructions, the
/// error codes fault stubs write, the per-function [`abi::FrameLayout`],
/// the transfer-file addressing ([`abi::xfer_off`]), the counter-tag order
/// ([`abi::tag_index`]), and the absolute helper addresses embedded at
/// external call sites. The `lsra-verify` crate checks compiled buffers
/// against exactly these constants.
pub mod abi {
    pub use crate::lower::{tag_index, xfer_off, FrameLayout};
    pub use crate::runtime::{err, ftoi_address, helper_address, MAX_REGS};
    pub use crate::runtime::{OFF_BY_TAG, OFF_CALLS, OFF_MEMORY_OPS, OFF_MOVES, OFF_TOTAL};
    pub use crate::runtime::{OFF_DEPTH, OFF_FUEL, OFF_MAX_DEPTH};
    pub use crate::runtime::{OFF_ERR_ADDR, OFF_ERR_CODE, OFF_ERR_FUNC};
    pub use crate::runtime::{OFF_LAST_RET, OFF_MEM_BASE, OFF_MEM_WORDS};
    pub use crate::runtime::{OFF_XFER_FLOAT, OFF_XFER_INT};
}

/// A compile-time JIT failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JitError {
    /// This host cannot map or execute generated code (non-x86-64, or a
    /// noexec/W^X-restricted environment). Callers should fall back to the
    /// VM; [`jit_supported`] detects this up front.
    Unsupported(String),
    /// The input still contains virtual operands — run a register allocator
    /// first.
    Unallocated {
        /// Name of the offending function.
        func: String,
    },
    /// The input is structurally unsuitable for native lowering.
    Malformed {
        /// Name of the offending function.
        func: String,
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for JitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitError::Unsupported(why) => write!(f, "jit unsupported on this host: {why}"),
            JitError::Unallocated { func } => {
                write!(f, "function `{func}` is not register-allocated")
            }
            JitError::Malformed { func, what } => write!(f, "function `{func}`: {what}"),
        }
    }
}

impl std::error::Error for JitError {}

/// A failure from compile-and-run convenience entry points: either the JIT
/// could not produce runnable code, or the program faulted at runtime with
/// the same error taxonomy as the interpreter.
#[derive(Clone, Debug, PartialEq)]
pub enum JitRunError {
    /// Compilation or mapping failed.
    Jit(JitError),
    /// The native run faulted (division by zero, memory bounds, fuel,
    /// stack depth) — directly comparable with interpreter errors.
    Vm(VmError),
}

impl std::fmt::Display for JitRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitRunError::Jit(e) => e.fmt(f),
            JitRunError::Vm(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for JitRunError {}

impl From<JitError> for JitRunError {
    fn from(e: JitError) -> Self {
        JitRunError::Jit(e)
    }
}

/// Compiled (but not yet executable) machine code for a module, plus the
/// static data image needed to run it.
///
/// The raw bytes are exposed through [`CodeBuffer::encoding`] and
/// [`CodeBuffer::func_encoding`] — the byte-level test surface: encoder
/// correctness is asserted against hand-assembled patterns, without a
/// disassembler. [`CodeBuffer::map`] performs the W^X mapping step and
/// yields something executable.
#[derive(Debug)]
pub struct CodeBuffer {
    bytes: Vec<u8>,
    entry_offset: usize,
    func_ranges: Vec<(usize, usize)>,
    data: Vec<i64>,
    memory_words: usize,
}

impl CodeBuffer {
    /// The complete encoded image (trampoline + all functions, relocated).
    pub fn encoding(&self) -> &[u8] {
        &self.bytes
    }

    /// The encoded bytes of one function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_encoding(&self, id: FuncId) -> &[u8] {
        let (start, end) = self.func_ranges[id.index()];
        &self.bytes[start..end]
    }

    /// Byte offset at which the function's code starts in
    /// [`CodeBuffer::encoding`].
    pub fn func_offset(&self, id: FuncId) -> usize {
        self.func_ranges[id.index()].0
    }

    /// Per-function `(start, end)` byte ranges within
    /// [`CodeBuffer::encoding`], indexed by [`FuncId`]. Functions are laid
    /// out in id order immediately after the entry trampoline.
    pub fn func_ranges(&self) -> &[(usize, usize)] {
        &self.func_ranges
    }

    /// Byte offset of the `extern "C" fn(*mut Env)` entry trampoline.
    pub fn entry_offset(&self) -> usize {
        self.entry_offset
    }

    /// Total code size in bytes.
    pub fn code_size(&self) -> usize {
        self.bytes.len()
    }

    /// Maps the code W^X-safely (write into an RW mapping, flip to RX) and
    /// returns the executable image.
    ///
    /// # Errors
    ///
    /// [`JitError::Unsupported`] when this host cannot create executable
    /// mappings (probed via [`jit_supported`]) or the mapping itself fails.
    pub fn map(&self) -> Result<MappedModule<'_>, JitError> {
        if !jit_supported() {
            return Err(JitError::Unsupported(
                "executable-memory probe failed (noexec host or LSRA_JIT_DISABLE set)".into(),
            ));
        }
        let mem = ExecMem::new(&self.bytes).map_err(JitError::Unsupported)?;
        Ok(MappedModule { buf: self, mem })
    }

    /// Maps and runs the module in one step.
    ///
    /// # Errors
    ///
    /// Mapping failures as [`JitRunError::Jit`]; runtime faults as
    /// [`JitRunError::Vm`].
    pub fn run(&self, input: &[u8], options: &VmOptions) -> Result<RunResult, JitRunError> {
        self.map()?.run(input, options)
    }
}

/// Executable, mapped machine code. Create via [`CodeBuffer::map`]; run as
/// many times as needed (each run gets fresh memory, I/O, and counters).
#[derive(Debug)]
pub struct MappedModule<'a> {
    buf: &'a CodeBuffer,
    mem: ExecMem,
}

impl MappedModule<'_> {
    /// Executes the module natively.
    ///
    /// Behaviour matches [`lsra_vm::Vm::run`] on every observable the VM
    /// defines for *successful* interpreted runs: return value, output
    /// events, dynamic counts, and final-memory checksum. Faults surface as
    /// the interpreter's error values for the fault classes native code can
    /// detect (division by zero, memory bounds, fuel, call depth); the VM's
    /// poison/validity diagnostics have no native counterpart.
    ///
    /// # Errors
    ///
    /// [`JitRunError::Vm`] on a runtime fault.
    pub fn run(&self, input: &[u8], options: &VmOptions) -> Result<RunResult, JitRunError> {
        let mut memory = self.buf.data.clone();
        memory.resize(self.buf.memory_words, 0);
        let mut io = IoState { input: input.to_vec(), pos: 0, output: Vec::new() };
        let mut env = Env::boxed();
        env.fuel = options.fuel;
        env.max_depth = options.max_depth as u64;
        env.mem_base = memory.as_mut_ptr();
        env.mem_words = memory.len() as u64;
        env.io = &mut io;
        let entry = self.mem.addr(self.buf.entry_offset);
        // SAFETY: `entry` points at the trampoline emitted by the lowering,
        // an `extern "C" fn(*mut Env)`; the mapping is RX and outlives the
        // call, and `env`/`memory`/`io` outlive it too.
        unsafe {
            let f: unsafe extern "C" fn(*mut Env) = std::mem::transmute(entry);
            f(&mut *env);
        }
        let counts = DynCounts {
            total: env.total,
            by_tag: env.by_tag,
            calls: env.calls,
            memory_ops: env.memory_ops,
            moves: env.moves,
        };
        match env.err_code {
            0 => Ok(RunResult {
                ret: if env.last_ret_reg >= 0 {
                    Some(env.xfer_int[env.last_ret_reg as usize])
                } else {
                    None
                },
                output: io.output,
                counts,
                memory_checksum: fnv1a(&memory),
            }),
            err::DIV_BY_ZERO => {
                Err(JitRunError::Vm(VmError::DivByZero { func: FuncId(env.err_func as u32) }))
            }
            err::OUT_OF_BOUNDS => Err(JitRunError::Vm(VmError::MemoryOutOfBounds {
                func: FuncId(env.err_func as u32),
                addr: env.err_addr,
            })),
            err::FUEL => Err(JitRunError::Vm(VmError::FuelExhausted)),
            _ => Err(JitRunError::Vm(VmError::StackOverflow)),
        }
    }
}

/// Compiles every function of an allocated `module` into one relocated
/// [`CodeBuffer`] (entry trampoline first, then functions in id order).
///
/// Compilation itself is pure byte generation and works on any host; only
/// [`CodeBuffer::map`]/[`CodeBuffer::run`] need executable memory.
///
/// # Errors
///
/// [`JitError::Unallocated`] if any operand is still virtual, or
/// [`JitError::Malformed`] for structurally unlowerable input.
pub fn compile_module(module: &Module, spec: &MachineSpec) -> Result<CodeBuffer, JitError> {
    let lowered = lower::lower_module(module, spec)?;
    Ok(CodeBuffer {
        bytes: lowered.code,
        entry_offset: lowered.entry_offset,
        func_ranges: lowered.func_ranges,
        data: module.data.clone(),
        memory_words: module.memory_words,
    })
}

/// Compiles a single allocated function as if it were a module's entry, with
/// no data memory and no intra-module call targets (calls to other functions
/// are a [`JitError::Malformed`] error; external calls work).
///
/// # Errors
///
/// As [`compile_module`].
pub fn compile_function(func: &Function, spec: &MachineSpec) -> Result<CodeBuffer, JitError> {
    let lowered = lower::lower_single_function(func, spec)?;
    Ok(CodeBuffer {
        bytes: lowered.code,
        entry_offset: lowered.entry_offset,
        func_ranges: lowered.func_ranges,
        data: Vec::new(),
        memory_words: 0,
    })
}

/// Compiles and runs `module` natively with default [`VmOptions`] — the
/// native counterpart of [`lsra_vm::run_module`].
///
/// # Errors
///
/// [`JitRunError::Jit`] when compilation/mapping fails (including
/// unsupported hosts), [`JitRunError::Vm`] on runtime faults.
pub fn run_module_native(
    module: &Module,
    spec: &MachineSpec,
    input: &[u8],
) -> Result<RunResult, JitRunError> {
    compile_module(module, spec)?.run(input, &VmOptions::default())
}

/// FNV-1a over the final data memory, identical to the interpreter's
/// checksum so the two backends can be compared verbatim.
fn fnv1a(words: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{FunctionBuilder, Inst, ModuleBuilder, OpCode, PhysReg, Reg};

    fn spec() -> MachineSpec {
        MachineSpec::alpha_like()
    }

    /// Builds a tiny pre-allocated function directly on physical registers.
    fn phys_func(build: impl FnOnce(&mut FunctionBuilder)) -> Function {
        let s = spec();
        let mut b = FunctionBuilder::new(&s, "f", &[]);
        build(&mut b);
        let mut f = b.finish();
        f.allocated = true;
        f
    }

    #[test]
    fn compile_rejects_virtual_operands() {
        let s = spec();
        let mut b = FunctionBuilder::new(&s, "virt", &[]);
        let t = b.int_temp("t");
        b.movi(t, 1);
        b.ret(Some(t.into()));
        let f = b.finish();
        match compile_function(&f, &s) {
            Err(JitError::Unallocated { func }) => assert_eq!(func, "virt"),
            other => panic!("expected Unallocated, got {other:?}"),
        }
    }

    #[test]
    fn single_function_runs_natively() {
        if !jit_supported() {
            eprintln!("skipping: jit unsupported on this host");
            return;
        }
        let s = spec();
        let r0: Reg = PhysReg::int(0).into();
        let r1: Reg = PhysReg::int(1).into();
        let f = phys_func(|b| {
            b.movi(r0, 6);
            b.movi(r1, 7);
            b.op2(OpCode::Mul, r0, r0, r1);
            b.emit(Inst::Ret { ret_regs: vec![PhysReg::int(0)] });
        });
        let code = compile_function(&f, &s).unwrap();
        let r = code.run(&[], &VmOptions::default()).unwrap();
        assert_eq!(r.ret, Some(42));
        assert_eq!(r.counts.total, 4);
    }

    #[test]
    fn module_matches_vm_on_arithmetic() {
        if !jit_supported() {
            eprintln!("skipping: jit unsupported on this host");
            return;
        }
        let s = spec();
        let mut mb = ModuleBuilder::new("t", 16);
        let r0: Reg = PhysReg::int(0).into();
        let r1: Reg = PhysReg::int(1).into();
        let mut b = FunctionBuilder::new(&s, "main", &[]);
        b.movi(r0, 100);
        b.movi(r1, -7);
        b.op2(OpCode::Div, r0, r0, r1);
        b.emit(Inst::Ret { ret_regs: vec![PhysReg::int(0)] });
        let mut f = b.finish();
        f.allocated = true;
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        let vm = lsra_vm::run_module(&m, &s, &[]).unwrap();
        let native = run_module_native(&m, &s, &[]).unwrap();
        assert_eq!(vm, native);
        assert_eq!(native.ret, Some(-14));
    }
}

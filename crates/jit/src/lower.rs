//! Lowering of allocated IR to x86-64 machine code.
//!
//! # Register map
//!
//! The virtual machines the allocators target (up to 25 integer + 28 float
//! registers on the Alpha-like spec) do not fit in 8 host GPRs, so the
//! virtual register file is memory-resident: each native frame holds the
//! full per-class register file plus the function's spill slots, and every
//! IR operand compiles to a fixed `[rbp + disp]` slot. Host registers have
//! fixed roles instead:
//!
//! | host | role |
//! |------|------|
//! | `rbx`         | [`crate::runtime::Env`] pointer (counters, limits, transfer file) |
//! | `r12`         | data-memory base |
//! | `r14`         | data-memory size in words |
//! | `rbp`         | frame base (virtual registers + spill slots below) |
//! | `rax rcx rdx` | integer scratch lanes (div/shift-constrained) |
//! | `rdi rsi`     | helper-call arguments, `rep stosq` |
//! | `xmm0 xmm1`   | float scratch lanes |
//!
//! # Frame layout (rbp-relative, all 8-byte words)
//!
//! ```text
//! [rbp - 8*(1+i)]            integer register i
//! [rbp - 8*(ni+1+j)]         float register j
//! [rbp - 8*(ni+nf+1+s)]      spill slot s
//! ```
//!
//! The prologue zeroes the whole frame (determinism), bumps and checks the
//! call-depth counter, then copies the full per-class transfer file from
//! `Env` into the frame — that is how arguments arrive. Every `Ret`
//! publishes the full register file back to the transfer file and records
//! the statically-known integer return register, which makes the callee
//! protocol independent of what the caller expects (the caller copies out
//! only its declared return registers). Calls therefore clobber nothing the
//! VM would preserve, and preserve nothing the VM would clobber — the VM's
//! poison rules are not modelled, which is sound because results are only
//! compared on runs the VM completes without a poison fault.
//!
//! # Counter and error ABI
//!
//! Every IR instruction compiles to a counter prelude — fuel check
//! (bailing with `FuelExhausted` *before* counting, like the interpreter),
//! fuel decrement, `total` and `by_tag[tag]` increments — followed by its
//! body; `Mov`, memory operations and calls additionally bump their
//! dedicated counters, so a native [`lsra_vm::DynCounts`] is
//! field-for-field comparable with an interpreted one. Faults (division by
//! zero, out-of-bounds memory, fuel, depth) write an error code into `Env`
//! and unwind through each frame's exit stub; callers test the error cell
//! after every intra-module call.

use lsra_ir::{Callee, Cond, ExtFn, FuncId, Function, Inst, MachineSpec, OpCode};
use lsra_ir::{Ins, Module, PhysReg, Reg, RegClass, SpillTag};

use crate::encoder::{Asm, Cc, Label, R12, R14, RAX, RBP, RBX, RCX, RDI, RDX, RSI, XMM0, XMM1};
use crate::encoder::{R13, RSP};
use crate::runtime::{self as rt, err};
use crate::JitError;

/// Everything [`crate::CodeBuffer`] needs from one lowering pass.
pub(crate) struct LoweredModule {
    /// The finished, relocated machine code.
    pub code: Vec<u8>,
    /// Byte offset of the `extern "C" fn(*mut Env)` entry trampoline.
    pub entry_offset: usize,
    /// Per-function `(start, end)` byte ranges, indexed by [`FuncId`].
    pub func_ranges: Vec<(usize, usize)>,
}

/// The frame geometry of one function — part of the JIT's public contract
/// (re-exported as [`crate::abi::FrameLayout`] for the static verifier).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FrameLayout {
    /// Number of integer-class virtual registers in the frame.
    pub ni: i32,
    /// Number of float-class virtual registers in the frame.
    pub nf: i32,
    /// Number of spill slots in the frame.
    pub ns: i32,
}

impl FrameLayout {
    /// The layout `f` compiles with under `spec`.
    pub fn new(f: &Function, spec: &MachineSpec) -> FrameLayout {
        FrameLayout {
            ni: spec.num_regs(RegClass::Int) as i32,
            nf: spec.num_regs(RegClass::Float) as i32,
            ns: f.num_slots as i32,
        }
    }

    /// Frame payload in 8-byte words (registers + spill slots).
    pub fn words(&self) -> i32 {
        self.ni + self.nf + self.ns
    }

    /// Frame size in bytes, 16-byte aligned so `rsp` stays aligned at calls.
    pub fn size(&self) -> i32 {
        (8 * self.words() + 15) & !15
    }

    /// `rbp`-relative home offset of a physical register.
    pub fn reg_off(&self, p: PhysReg) -> i32 {
        match p.class {
            RegClass::Int => -8 * (p.index as i32 + 1),
            RegClass::Float => -8 * (self.ni + p.index as i32 + 1),
        }
    }

    /// `rbp`-relative offset of spill slot `slot`.
    pub fn slot_off(&self, slot: i32) -> i32 {
        -8 * (self.ni + self.nf + slot + 1)
    }
}

/// `Env` transfer-file offset for a physical register.
pub fn xfer_off(p: PhysReg) -> i32 {
    match p.class {
        RegClass::Int => rt::OFF_XFER_INT + 8 * p.index as i32,
        RegClass::Float => rt::OFF_XFER_FLOAT + 8 * p.index as i32,
    }
}

/// `DynCounts::by_tag` index for a spill tag (the VM's `tag_index` order).
pub fn tag_index(tag: SpillTag) -> i32 {
    match tag {
        SpillTag::None => 0,
        SpillTag::EvictLoad => 1,
        SpillTag::EvictStore => 2,
        SpillTag::EvictMove => 3,
        SpillTag::ResolveLoad => 4,
        SpillTag::ResolveStore => 5,
        SpillTag::ResolveMove => 6,
    }
}

/// Emits the `extern "C" fn(*mut Env)` entry trampoline and returns the
/// position of its rel32 call into the entry function.
fn emit_trampoline(asm: &mut Asm) -> usize {
    asm.push_r(RBP);
    asm.mov_rr(RBP, RSP);
    // Four pushes keep rsp 16-byte aligned at the call below.
    asm.push_r(RBX);
    asm.push_r(R12);
    asm.push_r(R13);
    asm.push_r(R14);
    asm.mov_rr(RBX, RDI);
    asm.mov_rm(R12, RBX, rt::OFF_MEM_BASE);
    asm.mov_rm(R14, RBX, rt::OFF_MEM_WORDS);
    let entry_call = asm.call_rel32_placeholder();
    asm.pop_r(R14);
    asm.pop_r(R13);
    asm.pop_r(R12);
    asm.pop_r(RBX);
    asm.pop_r(RBP);
    asm.ret();
    entry_call
}

/// Lowering state for one function.
struct FuncLowering<'a> {
    asm: &'a mut Asm,
    f: &'a Function,
    fid: FuncId,
    fl: FrameLayout,
    /// One label per basic block, in block order.
    blocks: Vec<Label>,
    l_fuel: Label,
    l_div0: Label,
    l_oob: Label,
    l_exit: Label,
    call_fixups: &'a mut Vec<(usize, FuncId)>,
    /// False when compiled standalone (no intra-module call targets exist).
    allow_calls: bool,
}

impl<'a> FuncLowering<'a> {
    /// Resolves an operand to its physical register.
    fn phys(&self, r: Reg) -> Result<PhysReg, JitError> {
        r.as_phys().ok_or_else(|| JitError::Unallocated { func: self.f.name.clone() })
    }

    /// Frame offset of an operand's home slot.
    fn off(&self, r: Reg) -> Result<i32, JitError> {
        Ok(self.fl.reg_off(self.phys(r)?))
    }

    fn malformed(&self, what: &str) -> JitError {
        JitError::Malformed { func: self.f.name.clone(), what: what.into() }
    }

    fn lower(mut self) -> Result<(), JitError> {
        self.prologue();
        let f = self.f;
        for (bi, block) in f.blocks.iter().enumerate() {
            self.asm.bind(self.blocks[bi]);
            for ins in &block.insts {
                self.lower_ins(ins, bi + 1)?;
            }
        }
        self.stubs_and_exit();
        Ok(())
    }

    fn prologue(&mut self) {
        let asm = &mut *self.asm;
        asm.push_r(RBP);
        asm.mov_rr(RBP, RSP);
        asm.sub_ri(RSP, self.fl.size());
        // Depth accounting: fault when the new depth exceeds the limit
        // (the interpreter refuses to push frame max_depth+1).
        asm.inc_m(RBX, rt::OFF_DEPTH);
        asm.mov_rm(RAX, RBX, rt::OFF_DEPTH);
        asm.cmp_rm(RAX, RBX, rt::OFF_MAX_DEPTH);
        let depth_ok = asm.label();
        asm.jcc(Cc::Be, depth_ok);
        asm.mov_mi(RBX, rt::OFF_ERR_CODE, err::DEPTH as i32);
        asm.jmp(self.l_exit);
        asm.bind(depth_ok);
        // Zero the frame for determinism (slots read-before-write are a VM
        // error; zeroing makes native behaviour reproducible anyway).
        if self.fl.size() > 0 {
            asm.zero_r(RAX);
            asm.mov_rr(RDI, RSP);
            asm.mov_ri(RCX, (self.fl.size() / 8) as i64);
            asm.rep_stosq();
        }
        // Arguments arrive through the transfer file: copy it in whole.
        for i in 0..self.fl.ni {
            asm.mov_rm(RAX, RBX, rt::OFF_XFER_INT + 8 * i);
            asm.mov_mr(RBP, -8 * (i + 1), RAX);
        }
        for j in 0..self.fl.nf {
            asm.mov_rm(RAX, RBX, rt::OFF_XFER_FLOAT + 8 * j);
            asm.mov_mr(RBP, -8 * (self.fl.ni + j + 1), RAX);
        }
    }

    /// Error stubs and the shared exit sequence.
    fn stubs_and_exit(&mut self) {
        let asm = &mut *self.asm;
        asm.bind(self.l_fuel);
        asm.mov_mi(RBX, rt::OFF_ERR_CODE, err::FUEL as i32);
        asm.jmp(self.l_exit);
        asm.bind(self.l_div0);
        asm.mov_mi(RBX, rt::OFF_ERR_CODE, err::DIV_BY_ZERO as i32);
        asm.mov_mi(RBX, rt::OFF_ERR_FUNC, self.fid.0 as i32);
        asm.jmp(self.l_exit);
        asm.bind(self.l_oob);
        // The faulting address is still in rax.
        asm.mov_mr(RBX, rt::OFF_ERR_ADDR, RAX);
        asm.mov_mi(RBX, rt::OFF_ERR_CODE, err::OUT_OF_BOUNDS as i32);
        asm.mov_mi(RBX, rt::OFF_ERR_FUNC, self.fid.0 as i32);
        asm.bind(self.l_exit);
        asm.dec_m(RBX, rt::OFF_DEPTH);
        asm.leave();
        asm.ret();
    }

    /// Fuel check and counter increments shared by every instruction.
    fn counter_prelude(&mut self, tag: SpillTag) {
        let asm = &mut *self.asm;
        asm.cmp_mi8(RBX, rt::OFF_FUEL, 0);
        asm.jcc(Cc::E, self.l_fuel);
        asm.dec_m(RBX, rt::OFF_FUEL);
        asm.inc_m(RBX, rt::OFF_TOTAL);
        asm.inc_m(RBX, rt::OFF_BY_TAG + 8 * tag_index(tag));
    }

    /// Computes the effective word address of `base + offset` into rax and
    /// bounds-checks it against r14 (a single unsigned compare also rejects
    /// negative addresses).
    fn address_check(&mut self, base: Reg, offset: i32) -> Result<(), JitError> {
        let base_off = self.off(base)?;
        let asm = &mut *self.asm;
        asm.mov_rm(RAX, RBP, base_off);
        if offset != 0 {
            asm.add_ri(RAX, offset);
        }
        asm.cmp_rr(RAX, R14);
        asm.jcc(Cc::Ae, self.l_oob);
        Ok(())
    }

    fn lower_ins(&mut self, ins: &Ins, next_block: usize) -> Result<(), JitError> {
        self.counter_prelude(ins.tag);
        match &ins.inst {
            Inst::Op { op, dst, srcs } => self.lower_op(*op, *dst, srcs)?,
            Inst::MovI { dst, imm } => {
                let d = self.off(*dst)?;
                self.asm.mov_ri(RAX, *imm);
                self.asm.mov_mr(RBP, d, RAX);
            }
            Inst::MovF { dst, imm } => {
                let d = self.off(*dst)?;
                self.asm.mov_ri(RAX, imm.to_bits() as i64);
                self.asm.mov_mr(RBP, d, RAX);
            }
            Inst::Mov { dst, src } => {
                // A raw 8-byte copy is exact for both classes.
                let (d, s) = (self.off(*dst)?, self.off(*src)?);
                self.asm.inc_m(RBX, rt::OFF_MOVES);
                self.asm.mov_rm(RAX, RBP, s);
                self.asm.mov_mr(RBP, d, RAX);
            }
            Inst::Load { dst, base, offset } => {
                let d = self.off(*dst)?;
                self.asm.inc_m(RBX, rt::OFF_MEMORY_OPS);
                self.address_check(*base, *offset)?;
                self.asm.mov_rm_index8(RCX, R12, RAX);
                self.asm.mov_mr(RBP, d, RCX);
            }
            Inst::Store { src, base, offset } => {
                let s = self.off(*src)?;
                self.asm.inc_m(RBX, rt::OFF_MEMORY_OPS);
                self.address_check(*base, *offset)?;
                self.asm.mov_rm(RCX, RBP, s);
                self.asm.mov_mr_index8(R12, RAX, RCX);
            }
            Inst::SpillLoad { dst, temp } => {
                let slot = self.f.spill_slots[temp.index()]
                    .ok_or_else(|| self.malformed("spill load of temp without slot"))?;
                let (d, s) = (self.off(*dst)?, self.fl.slot_off(slot.0 as i32));
                self.asm.inc_m(RBX, rt::OFF_MEMORY_OPS);
                self.asm.mov_rm(RAX, RBP, s);
                self.asm.mov_mr(RBP, d, RAX);
            }
            Inst::SpillStore { src, temp } => {
                let slot = self.f.spill_slots[temp.index()]
                    .ok_or_else(|| self.malformed("spill store of temp without slot"))?;
                let (s, d) = (self.off(*src)?, self.fl.slot_off(slot.0 as i32));
                self.asm.inc_m(RBX, rt::OFF_MEMORY_OPS);
                self.asm.mov_rm(RAX, RBP, s);
                self.asm.mov_mr(RBP, d, RAX);
            }
            Inst::Call { callee, arg_regs, ret_regs } => {
                self.lower_call(*callee, arg_regs, ret_regs)?;
            }
            Inst::Jump { target } => {
                if target.index() != next_block {
                    self.asm.jmp(self.blocks[target.index()]);
                }
            }
            Inst::Branch { cond, src, then_tgt, else_tgt } => {
                let s = self.off(*src)?;
                self.asm.mov_rm(RAX, RBP, s);
                self.asm.test_rr(RAX, RAX);
                let cc = match cond {
                    Cond::Eq => Cc::E,
                    Cond::Ne => Cc::Ne,
                    Cond::Lt => Cc::L,
                    Cond::Le => Cc::Le,
                    Cond::Gt => Cc::G,
                    Cond::Ge => Cc::Ge,
                };
                self.asm.jcc(cc, self.blocks[then_tgt.index()]);
                if else_tgt.index() != next_block {
                    self.asm.jmp(self.blocks[else_tgt.index()]);
                }
            }
            Inst::Ret { ret_regs } => {
                // Publish the full register file; the caller copies out only
                // its declared return registers. The entry return value is
                // read by the runtime from the transfer file.
                for i in 0..self.fl.ni {
                    self.asm.mov_rm(RAX, RBP, -8 * (i + 1));
                    self.asm.mov_mr(RBX, rt::OFF_XFER_INT + 8 * i, RAX);
                }
                for j in 0..self.fl.nf {
                    self.asm.mov_rm(RAX, RBP, -8 * (self.fl.ni + j + 1));
                    self.asm.mov_mr(RBX, rt::OFF_XFER_FLOAT + 8 * j, RAX);
                }
                let ret_idx = ret_regs
                    .iter()
                    .find(|p| p.class == RegClass::Int)
                    .map(|p| p.index as i32)
                    .unwrap_or(-1);
                self.asm.mov_mi(RBX, rt::OFF_LAST_RET, ret_idx);
                self.asm.jmp(self.l_exit);
            }
        }
        Ok(())
    }

    fn lower_op(&mut self, op: OpCode, dst: Reg, srcs: &[Reg]) -> Result<(), JitError> {
        use OpCode::*;
        let d = self.off(dst)?;
        let s0 = self.off(srcs[0])?;
        match op {
            Add | Sub | Mul | And | Or | Xor => {
                let s1 = self.off(srcs[1])?;
                let asm = &mut *self.asm;
                asm.mov_rm(RAX, RBP, s0);
                asm.mov_rm(RCX, RBP, s1);
                match op {
                    Add => asm.add_rr(RAX, RCX),
                    Sub => asm.sub_rr(RAX, RCX),
                    Mul => asm.imul_rr(RAX, RCX),
                    And => asm.and_rr(RAX, RCX),
                    Or => asm.or_rr(RAX, RCX),
                    _ => asm.xor_rr(RAX, RCX),
                }
                asm.mov_mr(RBP, d, RAX);
            }
            Shl | Shr => {
                // The hardware masks cl by 63 for 64-bit shifts, exactly the
                // interpreter's `count as u32 & 63`.
                let s1 = self.off(srcs[1])?;
                let asm = &mut *self.asm;
                asm.mov_rm(RAX, RBP, s0);
                asm.mov_rm(RCX, RBP, s1);
                if op == Shl {
                    asm.shl_cl(RAX);
                } else {
                    asm.sar_cl(RAX);
                }
                asm.mov_mr(RBP, d, RAX);
            }
            CmpEq | CmpLt | CmpLe => {
                let s1 = self.off(srcs[1])?;
                let asm = &mut *self.asm;
                asm.mov_rm(RAX, RBP, s0);
                asm.mov_rm(RCX, RBP, s1);
                asm.cmp_rr(RAX, RCX);
                let cc = match op {
                    CmpEq => Cc::E,
                    CmpLt => Cc::L,
                    _ => Cc::Le,
                };
                asm.setcc(cc, RAX);
                asm.movzx_rb(RAX, RAX);
                asm.mov_mr(RBP, d, RAX);
            }
            Div | Rem => self.lower_div(op == Rem, d, s0, self.off(srcs[1])?),
            Neg | Not => {
                let asm = &mut *self.asm;
                asm.mov_rm(RAX, RBP, s0);
                if op == Neg {
                    asm.neg_r(RAX);
                } else {
                    asm.not_r(RAX);
                }
                asm.mov_mr(RBP, d, RAX);
            }
            FAdd | FSub | FMul | FDiv => {
                let s1 = self.off(srcs[1])?;
                let asm = &mut *self.asm;
                asm.movsd_xm(XMM0, RBP, s0);
                asm.movsd_xm(XMM1, RBP, s1);
                match op {
                    FAdd => asm.addsd(XMM0, XMM1),
                    FSub => asm.subsd(XMM0, XMM1),
                    FMul => asm.mulsd(XMM0, XMM1),
                    _ => asm.divsd(XMM0, XMM1),
                }
                asm.movsd_mx(RBP, d, XMM0);
            }
            FSqrt => {
                let asm = &mut *self.asm;
                asm.movsd_xm(XMM0, RBP, s0);
                asm.sqrtsd(XMM0, XMM0);
                asm.movsd_mx(RBP, d, XMM0);
            }
            FNeg | FAbs => {
                // Pure sign-bit manipulation, like LLVM's fneg/fabs — exact
                // on NaNs where an SSE arithmetic identity would not be.
                let asm = &mut *self.asm;
                asm.mov_rm(RAX, RBP, s0);
                if op == FNeg {
                    asm.mov_ri(RCX, i64::MIN);
                    asm.xor_rr(RAX, RCX);
                } else {
                    asm.mov_ri(RCX, i64::MAX);
                    asm.and_rr(RAX, RCX);
                }
                asm.mov_mr(RBP, d, RAX);
            }
            FCmpEq => {
                // ZF alone conflates "equal" with "unordered": guard with PF.
                let s1 = self.off(srcs[1])?;
                let asm = &mut *self.asm;
                asm.movsd_xm(XMM0, RBP, s0);
                asm.movsd_xm(XMM1, RBP, s1);
                asm.ucomisd(XMM0, XMM1);
                asm.setcc(Cc::Np, RAX);
                asm.setcc(Cc::E, RDX);
                asm.and_rr8(RAX, RDX);
                asm.movzx_rb(RAX, RAX);
                asm.mov_mr(RBP, d, RAX);
            }
            FCmpLt | FCmpLe => {
                // Compare operands swapped so the unsigned "above" family
                // yields false on unordered (CF=1), matching Rust's `<`/`<=`.
                let s1 = self.off(srcs[1])?;
                let asm = &mut *self.asm;
                asm.movsd_xm(XMM0, RBP, s0);
                asm.movsd_xm(XMM1, RBP, s1);
                asm.ucomisd(XMM1, XMM0);
                asm.setcc(if op == FCmpLt { Cc::A } else { Cc::Ae }, RAX);
                asm.movzx_rb(RAX, RAX);
                asm.mov_mr(RBP, d, RAX);
            }
            IntToFloat => {
                let asm = &mut *self.asm;
                asm.mov_rm(RAX, RBP, s0);
                asm.cvtsi2sd(XMM0, RAX);
                asm.movsd_mx(RBP, d, XMM0);
            }
            FloatToInt => {
                // Rust's saturating cast differs from raw cvttsd2si; call the
                // out-of-line Rust helper for bit-exact agreement.
                let asm = &mut *self.asm;
                asm.mov_rm(RDI, RBP, s0);
                asm.mov_ri(RAX, rt::ftoi_address() as i64);
                asm.call_r(RAX);
                asm.mov_mr(RBP, d, RAX);
            }
        }
        Ok(())
    }

    /// Integer division with the interpreter's exact semantics: divisor zero
    /// faults, `i64::MIN / -1` wraps (quotient MIN, remainder 0) instead of
    /// raising x86's #DE.
    fn lower_div(&mut self, is_rem: bool, d: i32, s0: i32, s1: i32) {
        let asm = &mut *self.asm;
        let l_do = asm.label();
        let l_done = asm.label();
        asm.mov_rm(RAX, RBP, s0);
        asm.mov_rm(RCX, RBP, s1);
        asm.test_rr(RCX, RCX);
        asm.jcc(Cc::E, self.l_div0);
        asm.cmp_ri8(RCX, -1);
        asm.jcc(Cc::Ne, l_do);
        asm.mov_ri(RDX, i64::MIN);
        asm.cmp_rr(RAX, RDX);
        asm.jcc(Cc::Ne, l_do);
        if is_rem {
            asm.zero_r(RAX); // MIN wrapping_rem -1 == 0
        }
        asm.jmp(l_done); // MIN wrapping_div -1 == MIN, already in rax
        asm.bind(l_do);
        asm.cqo();
        asm.idiv_r(RCX);
        if is_rem {
            asm.mov_rr(RAX, RDX);
        }
        asm.bind(l_done);
        asm.mov_mr(RBP, d, RAX);
    }

    fn lower_call(
        &mut self,
        callee: Callee,
        arg_regs: &[PhysReg],
        ret_regs: &[PhysReg],
    ) -> Result<(), JitError> {
        self.asm.inc_m(RBX, rt::OFF_CALLS);
        match callee {
            Callee::Ext(ext) => {
                let helper: usize = rt::helper_address(ext);
                // Mirror the interpreter's argument selection: first operand
                // of the class the routine consumes.
                let wanted = match ext {
                    ExtFn::GetChar => None,
                    ExtFn::PutFloat => Some(RegClass::Float),
                    _ => Some(RegClass::Int),
                };
                if let Some(class) = wanted {
                    let arg = arg_regs
                        .iter()
                        .find(|p| p.class == class)
                        .copied()
                        .ok_or_else(|| self.malformed("external call missing argument"))?;
                    let s = self.fl.reg_off(arg);
                    self.asm.mov_rm(RSI, RBP, s);
                }
                self.asm.mov_rr(RDI, RBX);
                self.asm.mov_ri(RAX, helper as i64);
                self.asm.call_r(RAX);
                if ext == ExtFn::GetChar {
                    let ret = *ret_regs
                        .first()
                        .ok_or_else(|| self.malformed("getchar without return register"))?;
                    let doff = self.fl.reg_off(ret);
                    self.asm.mov_mr(RBP, doff, RAX);
                }
            }
            Callee::Func(id) => {
                if !self.allow_calls {
                    return Err(self.malformed("intra-module call cannot be compiled standalone"));
                }
                // Stage arguments in the transfer file.
                for &p in arg_regs {
                    let s = self.fl.reg_off(p);
                    self.asm.mov_rm(RAX, RBP, s);
                    self.asm.mov_mr(RBX, xfer_off(p), RAX);
                }
                let pos = self.asm.call_rel32_placeholder();
                self.call_fixups.push((pos, id));
                // Propagate callee faults before touching results.
                self.asm.cmp_mi8(RBX, rt::OFF_ERR_CODE, 0);
                self.asm.jcc(Cc::Ne, self.l_exit);
                for &p in ret_regs {
                    let doff = self.fl.reg_off(p);
                    self.asm.mov_rm(RAX, RBX, xfer_off(p));
                    self.asm.mov_mr(RBP, doff, RAX);
                }
            }
        }
        Ok(())
    }
}

fn lower_function(
    asm: &mut Asm,
    f: &Function,
    fid: FuncId,
    spec: &MachineSpec,
    call_fixups: &mut Vec<(usize, FuncId)>,
    allow_calls: bool,
) -> Result<(), JitError> {
    let blocks = (0..f.blocks.len()).map(|_| asm.label()).collect();
    let (l_fuel, l_div0, l_oob, l_exit) = (asm.label(), asm.label(), asm.label(), asm.label());
    FuncLowering {
        asm,
        f,
        fid,
        fl: FrameLayout::new(f, spec),
        blocks,
        l_fuel,
        l_div0,
        l_oob,
        l_exit,
        call_fixups,
        allow_calls,
    }
    .lower()
}

/// Lowers every function of `module`, links intra-module calls, and returns
/// the relocated code image.
pub(crate) fn lower_module(module: &Module, spec: &MachineSpec) -> Result<LoweredModule, JitError> {
    let mut asm = Asm::new();
    let entry_call = emit_trampoline(&mut asm);
    let mut call_fixups = Vec::new();
    let mut func_ranges = Vec::with_capacity(module.funcs.len());
    for (i, f) in module.funcs.iter().enumerate() {
        let start = asm.len();
        lower_function(&mut asm, f, FuncId(i as u32), spec, &mut call_fixups, true)?;
        func_ranges.push((start, asm.len()));
    }
    let mut code = asm.finish();
    Asm::patch_rel32(&mut code, entry_call, func_ranges[module.entry.index()].0);
    for (pos, fid) in call_fixups {
        Asm::patch_rel32(&mut code, pos, func_ranges[fid.index()].0);
    }
    Ok(LoweredModule { code, entry_offset: 0, func_ranges })
}

/// Lowers a single function with no intra-module call targets.
pub(crate) fn lower_single_function(
    f: &Function,
    spec: &MachineSpec,
) -> Result<LoweredModule, JitError> {
    let mut asm = Asm::new();
    let entry_call = emit_trampoline(&mut asm);
    let mut call_fixups = Vec::new();
    let start = asm.len();
    lower_function(&mut asm, f, FuncId(0), spec, &mut call_fixups, false)?;
    let end = asm.len();
    let mut code = asm.finish();
    Asm::patch_rel32(&mut code, entry_call, start);
    Ok(LoweredModule { code, entry_offset: 0, func_ranges: vec![(start, end)] })
}

//! The native runtime: the `Env` block shared between Rust and JIT code,
//! the `extern "C"` helper routines, and W^X executable memory.
//!
//! # The `Env` ABI
//!
//! Generated code keeps a single pointer (in `rbx`) to one [`Env`] block for
//! the whole run. Every dynamic counter, the fuel/depth limits, the error
//! cell, the data-memory descriptor, and the call transfer register file
//! live at fixed offsets in it; the lowering bakes those offsets (taken via
//! `offset_of!`, so Rust's own layout is the single source of truth) into
//! `inc`/`cmp`/`mov` instructions. Fields are all 8 bytes wide so `repr(C)`
//! gives a flat, padding-free prefix.
//!
//! # W^X protocol
//!
//! Code is encoded into a plain `Vec<u8>`, copied into an anonymous
//! `mmap(PROT_READ|PROT_WRITE)` region, and only then flipped to
//! `PROT_READ|PROT_EXEC` with `mprotect` — the mapping is never writable
//! and executable at the same time. Both syscalls go through self-declared
//! bindings (no external crates). On hosts where the final `mprotect` (or
//! the probe call) fails — non-Linux, non-x86-64, or `noexec`/SELinux
//! `execmem`-restricted environments — [`jit_supported`] reports `false`
//! and every entry point degrades to [`crate::JitError::Unsupported`].

use std::sync::OnceLock;

use lsra_vm::OutputEvent;

/// Error codes written by generated code into [`Env::err_code`].
pub mod err {
    /// Integer division or remainder by zero.
    pub const DIV_BY_ZERO: u64 = 1;
    /// Data-memory access outside `0..memory_words`.
    pub const OUT_OF_BOUNDS: u64 = 2;
    /// Instruction budget exhausted.
    pub const FUEL: u64 = 3;
    /// Call depth exceeded `max_depth`.
    pub const DEPTH: u64 = 4;
}

/// Upper bound on per-class register-file size addressable through the
/// transfer arrays (register indices are `u8`).
pub const MAX_REGS: usize = 256;

/// Host-side I/O state reached from helper routines via [`Env::io`].
/// Opaque to generated code.
#[derive(Debug, Default)]
pub(crate) struct IoState {
    pub input: Vec<u8>,
    pub pos: usize,
    pub output: Vec<OutputEvent>,
}

/// The runtime block generated code addresses through `rbx`.
///
/// Counter fields mirror [`lsra_vm::DynCounts`] one-for-one; `by_tag` uses
/// the VM's `tag_index` order (index 0 = untagged program instructions).
#[repr(C)]
#[derive(Debug)]
pub struct Env {
    /// Total executed instructions (`DynCounts::total`).
    pub total: u64,
    /// Executed instructions per spill category (`DynCounts::by_tag`).
    pub by_tag: [u64; 7],
    /// Executed calls (`DynCounts::calls`).
    pub calls: u64,
    /// Executed memory operations (`DynCounts::memory_ops`).
    pub memory_ops: u64,
    /// Executed register moves (`DynCounts::moves`).
    pub moves: u64,
    /// Remaining instruction budget; checked before each instruction.
    pub fuel: u64,
    /// Current call depth (incremented in every function prologue).
    pub depth: u64,
    /// Depth limit; exceeding it raises `StackOverflow`.
    pub max_depth: u64,
    /// Error cell: 0 while running, an [`err`] code after a bail.
    pub err_code: u64,
    /// Function id recorded with `DIV_BY_ZERO` / `OUT_OF_BOUNDS`.
    pub err_func: u64,
    /// Faulting word address recorded with `OUT_OF_BOUNDS`.
    pub err_addr: i64,
    /// Base of data memory (word-addressed `i64`s); generated code keeps a
    /// copy in `r12`.
    pub mem_base: *mut i64,
    /// Data memory size in words; generated code keeps a copy in `r14`.
    pub mem_words: u64,
    /// Integer register index of the entry function's returned value, or -1;
    /// written by every `Ret` from statically-known return registers.
    pub last_ret_reg: i64,
    /// Host I/O state for the `getchar`/`put*` helpers.
    pub(crate) io: *mut IoState,
    /// Integer-class call transfer file: callers stage arguments here, every
    /// `Ret` publishes the callee's full integer register file here.
    pub xfer_int: [i64; MAX_REGS],
    /// Float-class transfer file (raw f64 bits).
    pub xfer_float: [u64; MAX_REGS],
}

impl Env {
    /// A zeroed `Env` on the heap (the transfer files make it ~4 KiB).
    pub(crate) fn boxed() -> Box<Env> {
        Box::new(Env {
            total: 0,
            by_tag: [0; 7],
            calls: 0,
            memory_ops: 0,
            moves: 0,
            fuel: 0,
            depth: 0,
            max_depth: 0,
            err_code: 0,
            err_func: 0,
            err_addr: 0,
            mem_base: std::ptr::null_mut(),
            mem_words: 0,
            last_ret_reg: -1,
            io: std::ptr::null_mut(),
            xfer_int: [0; MAX_REGS],
            xfer_float: [0; MAX_REGS],
        })
    }
}

// Env field offsets baked into generated code (and checked by the static
// verifier in `lsra-verify`, which re-exports them through `crate::abi`).

/// Offset of [`Env::total`].
pub const OFF_TOTAL: i32 = std::mem::offset_of!(Env, total) as i32;
/// Offset of [`Env::by_tag`] (7 contiguous 8-byte counters).
pub const OFF_BY_TAG: i32 = std::mem::offset_of!(Env, by_tag) as i32;
/// Offset of [`Env::calls`].
pub const OFF_CALLS: i32 = std::mem::offset_of!(Env, calls) as i32;
/// Offset of [`Env::memory_ops`].
pub const OFF_MEMORY_OPS: i32 = std::mem::offset_of!(Env, memory_ops) as i32;
/// Offset of [`Env::moves`].
pub const OFF_MOVES: i32 = std::mem::offset_of!(Env, moves) as i32;
/// Offset of [`Env::fuel`].
pub const OFF_FUEL: i32 = std::mem::offset_of!(Env, fuel) as i32;
/// Offset of [`Env::depth`].
pub const OFF_DEPTH: i32 = std::mem::offset_of!(Env, depth) as i32;
/// Offset of [`Env::max_depth`].
pub const OFF_MAX_DEPTH: i32 = std::mem::offset_of!(Env, max_depth) as i32;
/// Offset of [`Env::err_code`].
pub const OFF_ERR_CODE: i32 = std::mem::offset_of!(Env, err_code) as i32;
/// Offset of [`Env::err_func`].
pub const OFF_ERR_FUNC: i32 = std::mem::offset_of!(Env, err_func) as i32;
/// Offset of [`Env::err_addr`].
pub const OFF_ERR_ADDR: i32 = std::mem::offset_of!(Env, err_addr) as i32;
/// Offset of [`Env::mem_base`].
pub const OFF_MEM_BASE: i32 = std::mem::offset_of!(Env, mem_base) as i32;
/// Offset of [`Env::mem_words`].
pub const OFF_MEM_WORDS: i32 = std::mem::offset_of!(Env, mem_words) as i32;
/// Offset of [`Env::last_ret_reg`].
pub const OFF_LAST_RET: i32 = std::mem::offset_of!(Env, last_ret_reg) as i32;
/// Offset of [`Env::xfer_int`].
pub const OFF_XFER_INT: i32 = std::mem::offset_of!(Env, xfer_int) as i32;
/// Offset of [`Env::xfer_float`].
pub const OFF_XFER_FLOAT: i32 = std::mem::offset_of!(Env, xfer_float) as i32;

/// Absolute address of the helper routine the lowering embeds (as a
/// `movabs` immediate) for an external call to `ext`. Process-constant, so
/// a compiled buffer can be statically checked against it.
///
/// `inline(never)`: the fn-pointer coercion must be codegen'd exactly
/// once. Inlined into multiple codegen units, each copy can resolve the
/// coercion to a *different* duplicate of the helper symbol, and then the
/// address the lowering embeds would not equal the address the verifier
/// compares against.
#[inline(never)]
pub fn helper_address(ext: lsra_ir::ExtFn) -> usize {
    match ext {
        lsra_ir::ExtFn::GetChar => rt_getchar as *const () as usize,
        lsra_ir::ExtFn::PutInt => rt_putint as *const () as usize,
        lsra_ir::ExtFn::PutChar => rt_putchar as *const () as usize,
        lsra_ir::ExtFn::PutFloat => rt_putfloat as *const () as usize,
    }
}

/// Absolute address of the out-of-line `f64 as i64` helper used by
/// `FloatToInt` lowering. `inline(never)` for the same reason as
/// [`helper_address`].
#[inline(never)]
pub fn ftoi_address() -> usize {
    rt_ftoi as *const () as usize
}

// ---- extern "C" helper routines called from generated code ----
//
// Helper addresses are embedded as absolute `movabs` immediates: they are
// process constants, so the encoded buffer stays copyable (only rel32
// references are position-relative, and those all stay inside the buffer).
// Float arguments travel as raw bits in integer registers to keep call
// emission uniform. None of these helpers unwind.

/// `getchar`: next input byte, or -1 at end of input.
pub(crate) unsafe extern "C" fn rt_getchar(env: *mut Env) -> i64 {
    let io = &mut *(*env).io;
    if io.pos < io.input.len() {
        let c = io.input[io.pos] as i64;
        io.pos += 1;
        c
    } else {
        -1
    }
}

/// `putint`: append an integer output event.
pub(crate) unsafe extern "C" fn rt_putint(env: *mut Env, v: i64) {
    (*(*env).io).output.push(OutputEvent::Int(v));
}

/// `putchar`: append a character output event (low byte).
pub(crate) unsafe extern "C" fn rt_putchar(env: *mut Env, v: i64) {
    (*(*env).io).output.push(OutputEvent::Char(v as u8));
}

/// `putfloat`: append a float output event (payload arrives as bits).
pub(crate) unsafe extern "C" fn rt_putfloat(env: *mut Env, bits: u64) {
    (*(*env).io).output.push(OutputEvent::Float(bits));
}

/// Rust's saturating `f64 as i64` cast (NaN -> 0), called out-of-line so the
/// native backend matches the VM bit-for-bit without re-deriving the clamp
/// sequence from `cvttsd2si`.
pub(crate) extern "C" fn rt_ftoi(bits: u64) -> i64 {
    f64::from_bits(bits) as i64
}

// ---- executable memory ----

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod exec_impl {
    use std::ffi::c_void;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const PROT_EXEC: i32 = 4;
    const MAP_PRIVATE: i32 = 2;
    const MAP_ANONYMOUS: i32 = 0x20;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An anonymous mapping holding executable code; unmapped on drop.
    #[derive(Debug)]
    pub struct ExecMem {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is immutable (RX) after construction.
    unsafe impl Send for ExecMem {}
    unsafe impl Sync for ExecMem {}

    impl ExecMem {
        /// Maps `code` W^X-safely: RW mapping, copy, flip to RX.
        pub fn new(code: &[u8]) -> Result<ExecMem, String> {
            if code.is_empty() {
                return Err("cannot map empty code buffer".into());
            }
            unsafe {
                let ptr = mmap(
                    std::ptr::null_mut(),
                    code.len(),
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                );
                if ptr as isize == -1 || ptr.is_null() {
                    return Err("mmap(PROT_READ|PROT_WRITE) failed".into());
                }
                std::ptr::copy_nonoverlapping(code.as_ptr(), ptr as *mut u8, code.len());
                if mprotect(ptr, code.len(), PROT_READ | PROT_EXEC) != 0 {
                    munmap(ptr, code.len());
                    return Err(
                        "mprotect(PROT_READ|PROT_EXEC) refused (noexec environment?)".into()
                    );
                }
                Ok(ExecMem { ptr: ptr as *mut u8, len: code.len() })
            }
        }

        /// Address of byte `offset` within the mapping.
        ///
        /// # Panics
        ///
        /// Panics if `offset` is out of range.
        pub fn addr(&self, offset: usize) -> *const u8 {
            assert!(offset < self.len);
            unsafe { self.ptr.add(offset) }
        }
    }

    impl Drop for ExecMem {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod exec_impl {
    /// Stub for hosts that cannot execute the generated x86-64 code.
    #[derive(Debug)]
    pub struct ExecMem {}

    impl ExecMem {
        /// Always fails: execution requires Linux x86-64.
        pub fn new(_code: &[u8]) -> Result<ExecMem, String> {
            Err("native execution requires a Linux x86-64 host".into())
        }

        /// Unreachable (construction always fails).
        pub fn addr(&self, _offset: usize) -> *const u8 {
            unreachable!("ExecMem stub cannot be constructed")
        }
    }
}

pub(crate) use exec_impl::ExecMem;

/// Byte pattern of the support probe: `mov eax, 42; ret`.
const PROBE_STUB: [u8; 6] = [0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3];

fn probe() -> bool {
    let mem = match ExecMem::new(&PROBE_STUB) {
        Ok(m) => m,
        Err(_) => return false,
    };
    // SAFETY: the mapping holds exactly the probe stub, a valid
    // parameterless function returning 42 in eax.
    let f: extern "C" fn() -> i32 = unsafe { std::mem::transmute(mem.addr(0)) };
    f() == 42
}

/// True when this process can map and execute generated code.
///
/// Probes once per process by mapping and calling a six-byte stub through
/// the same W^X path real code uses; the result is cached. Setting the
/// `LSRA_JIT_DISABLE` environment variable forces `false`, which exercises
/// every fallback path on hosts where the JIT would work.
pub fn jit_supported() -> bool {
    static SUPPORTED: OnceLock<bool> = OnceLock::new();
    *SUPPORTED.get_or_init(|| {
        if std::env::var_os("LSRA_JIT_DISABLE").is_some() {
            return false;
        }
        probe()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_counter_prefix_is_flat() {
        // The lowering indexes by_tag as OFF_BY_TAG + 8*i and relies on the
        // DynCounts-mirroring fields being contiguous 8-byte cells.
        assert_eq!(OFF_TOTAL, 0);
        assert_eq!(OFF_BY_TAG, 8);
        assert_eq!(OFF_CALLS, 64);
        assert_eq!(OFF_MEMORY_OPS, 72);
        assert_eq!(OFF_MOVES, 80);
        assert_eq!(OFF_XFER_FLOAT - OFF_XFER_INT, (MAX_REGS * 8) as i32);
    }

    #[test]
    fn ftoi_matches_rust_cast_semantics() {
        for (x, want) in [
            (3.9f64, 3i64),
            (-3.9, -3),
            (f64::NAN, 0),
            (f64::INFINITY, i64::MAX),
            (f64::NEG_INFINITY, i64::MIN),
            (1e300, i64::MAX),
        ] {
            assert_eq!(rt_ftoi(x.to_bits()), want, "cast of {x}");
        }
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn probe_stub_executes() {
        if jit_supported() {
            assert!(probe());
        }
    }
}

//! Family A — input-IR validation lints (`L0xx`).
//!
//! These run *before* allocation on arbitrary (possibly hostile) input IR.
//! [`lsra_ir::Function::validate`] stops at the first structural error; this
//! pass keeps going, collects every finding, and adds the properties the
//! validator deliberately leaves to dataflow analysis: use-before-def,
//! unreachability, and critical-edge advisories.
//!
//! Ordering matters: the CFG analyses ([`Order`], predecessor lists, the
//! must-dataflow) index blocks through terminators, so they only run once
//! the structural lints (`L003`, `L006`) report the function clean. A
//! structurally broken function still gets its full set of structural and
//! per-instruction class diagnostics.

use lsra_analysis::{is_critical, solve_forward_must, BitSet, Order};
use lsra_ir::{Function, FunctionLines, Inst, Module, ModuleLines, Reg, RegClass};

use crate::{class_of, Emitter, LintCode, LintReport};

/// Runs every Family A lint over one function.
///
/// `lines` (from [`lsra_ir::parse_function_with_lines`]) lets diagnostics
/// carry source lines; pass `None` for programmatically built IR.
pub fn lint_input_function(f: &Function, lines: Option<&FunctionLines>) -> LintReport {
    let mut em = Emitter { func: &f.name, lines, diags: Vec::new() };
    if f.blocks.is_empty() {
        em.emit(LintCode::MalformedBlock, None, None, "function has no blocks".to_string());
        return LintReport { diags: em.diags };
    }

    // Structural pass: every CFG lint below depends on well-formed blocks
    // (terminators exist) and in-range targets (successor lists index the
    // block table).
    let mut structural_ok = true;
    for b in f.block_ids() {
        let blk = f.block(b);
        if blk.insts.is_empty() {
            em.emit(LintCode::MalformedBlock, Some(b), None, "empty block".to_string());
            structural_ok = false;
            continue;
        }
        let last = blk.insts.len() - 1;
        for (i, ins) in blk.insts.iter().enumerate() {
            if i < last && ins.inst.is_terminator() {
                em.emit(
                    LintCode::MalformedBlock,
                    Some(b),
                    Some(i),
                    "terminator in the middle of a block".to_string(),
                );
                structural_ok = false;
            }
        }
        if !blk.insts[last].inst.is_terminator() {
            em.emit(
                LintCode::MalformedBlock,
                Some(b),
                Some(last),
                "block does not end in a terminator".to_string(),
            );
            structural_ok = false;
        }
        for (i, ins) in blk.insts.iter().enumerate() {
            match &ins.inst {
                Inst::Jump { target } if target.index() >= f.num_blocks() => {
                    em.emit(
                        LintCode::BadBlockTarget,
                        Some(b),
                        Some(i),
                        format!("jump to undefined block {target}"),
                    );
                    structural_ok = false;
                }
                Inst::Branch { then_tgt, else_tgt, .. } => {
                    for t in [then_tgt, else_tgt] {
                        if t.index() >= f.num_blocks() {
                            em.emit(
                                LintCode::BadBlockTarget,
                                Some(b),
                                Some(i),
                                format!("branch to undefined block {t}"),
                            );
                            structural_ok = false;
                        }
                    }
                    if then_tgt == else_tgt {
                        em.emit(
                            LintCode::DuplicateBranchTarget,
                            Some(b),
                            Some(i),
                            format!("both branch arms target {then_tgt} (should be a jump)"),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    class_lints(f, &mut em);

    if structural_ok {
        cfg_lints(f, &mut em);
    }

    let mut report = LintReport { diags: em.diags };
    report.sort();
    report
}

/// Runs every Family A lint over a module, function by function.
pub fn lint_input(m: &Module, lines: Option<&ModuleLines>) -> LintReport {
    let mut report = LintReport::new();
    for (i, f) in m.funcs.iter().enumerate() {
        let fl = lines.and_then(|l| l.funcs.get(i));
        report.merge(lint_input_function(f, fl));
    }
    report
}

/// `L005`: per-instruction register-class and shape checks. Mirrors
/// `Function::validate`'s class rules but reports *all* findings instead of
/// stopping at the first, and never panics on out-of-range temps.
fn class_lints(f: &Function, em: &mut Emitter<'_>) {
    fn check(f: &Function, bad: &mut Vec<String>, r: Reg, want: Option<RegClass>) {
        match class_of(f, r) {
            None => bad.push(format!("reference to undeclared temp {r}")),
            Some(c) => {
                if let Some(w) = want {
                    if c != w {
                        bad.push(format!("operand {r} must be class {w}"));
                    }
                }
            }
        }
    }
    for b in f.block_ids() {
        for (i, ins) in f.block(b).insts.iter().enumerate() {
            let mut bad: Vec<String> = Vec::new();
            match &ins.inst {
                Inst::Op { op, dst, srcs } => {
                    if srcs.len() != op.arity() {
                        bad.push(format!(
                            "{} expects {} sources, got {}",
                            op.mnemonic(),
                            op.arity(),
                            srcs.len()
                        ));
                    }
                    let (sc, dc) = op.sig();
                    for &s in srcs {
                        check(f, &mut bad, s, Some(sc));
                    }
                    check(f, &mut bad, *dst, Some(dc));
                }
                Inst::MovI { dst, .. } => check(f, &mut bad, *dst, Some(RegClass::Int)),
                Inst::MovF { dst, .. } => check(f, &mut bad, *dst, Some(RegClass::Float)),
                Inst::Mov { dst, src } => {
                    let (dc, sc) = (class_of(f, *dst), class_of(f, *src));
                    check(f, &mut bad, *src, None);
                    check(f, &mut bad, *dst, None);
                    if let (Some(dc), Some(sc)) = (dc, sc) {
                        if dc != sc {
                            bad.push("move between register classes".to_string());
                        }
                    }
                }
                Inst::Load { dst, base, .. } => {
                    check(f, &mut bad, *base, Some(RegClass::Int));
                    check(f, &mut bad, *dst, None);
                }
                Inst::Store { src, base, .. } => {
                    check(f, &mut bad, *base, Some(RegClass::Int));
                    check(f, &mut bad, *src, None);
                }
                Inst::SpillLoad { dst, temp } => {
                    if temp.index() >= f.num_temps() {
                        bad.push(format!("reference to undeclared temp {temp}"));
                    } else {
                        check(f, &mut bad, *dst, Some(f.temp_class(*temp)));
                    }
                }
                Inst::SpillStore { src, temp } => {
                    if temp.index() >= f.num_temps() {
                        bad.push(format!("reference to undeclared temp {temp}"));
                    } else {
                        check(f, &mut bad, *src, Some(f.temp_class(*temp)));
                    }
                }
                Inst::Branch { src, .. } => check(f, &mut bad, *src, Some(RegClass::Int)),
                Inst::Call { .. } | Inst::Jump { .. } | Inst::Ret { .. } => {}
            }
            for msg in bad {
                em.emit(LintCode::ClassMismatch, Some(b), Some(i), msg);
            }
        }
    }
}

/// The CFG-dependent lints: `L002` unreachable blocks, `L007` critical
/// edges, and `L001` use-before-def as a forward must-dataflow (a temp is
/// soundly defined at a use only if a definition reaches it along *every*
/// path from the entry).
fn cfg_lints(f: &Function, em: &mut Emitter<'_>) {
    let order = Order::compute(f);
    for b in f.block_ids() {
        if !order.is_reachable(b) {
            em.emit(
                LintCode::UnreachableBlock,
                Some(b),
                None,
                "unreachable from the entry block".to_string(),
            );
        }
    }

    let preds = f.compute_preds();
    for &b in &order.rpo {
        let term = f.block(b).insts.len() - 1;
        for s in f.succs(b) {
            if is_critical(f, &preds, b, s) {
                em.emit(
                    LintCode::CriticalEdge,
                    Some(b),
                    Some(term),
                    format!("critical edge {b} -> {s} (the resolution pass will split it)"),
                );
            }
        }
    }

    // Use-before-def. Block-level: gen = temps defined in the block, no
    // kills; entry facts are the parameters (defined by the convention).
    let nt = f.num_temps();
    if nt == 0 {
        return;
    }
    let mut gen = vec![BitSet::new(nt); f.num_blocks()];
    for b in f.block_ids() {
        for ins in &f.block(b).insts {
            ins.inst.for_each_def(|r| {
                if let Reg::Temp(t) = r {
                    if t.index() < nt {
                        gen[b.index()].insert(t.index());
                    }
                }
            });
        }
    }
    let kill = vec![BitSet::new(nt); f.num_blocks()];
    let mut entry_in = BitSet::new(nt);
    for t in &f.params {
        if t.index() < nt {
            entry_in.insert(t.index());
        }
    }
    let sol = solve_forward_must(f, nt, &gen, &kill, &entry_in, &order);

    // Reporting walk: re-run the per-instruction transfer with the block
    // in-sets, flagging each temp once (at its first dubious use in RPO).
    let mut reported = BitSet::new(nt);
    for &b in &order.rpo {
        let mut defined = sol.must_in[b.index()].clone();
        for (i, ins) in f.block(b).insts.iter().enumerate() {
            ins.inst.for_each_use(|r| {
                if let Reg::Temp(t) = r {
                    if t.index() < nt && !defined.contains(t.index()) && reported.insert(t.index())
                    {
                        em.emit(
                            LintCode::UseBeforeDef,
                            Some(b),
                            Some(i),
                            format!("{t} is read before any definition reaches it on some path"),
                        );
                    }
                }
            });
            ins.inst.for_each_def(|r| {
                if let Reg::Temp(t) = r {
                    if t.index() < nt {
                        defined.insert(t.index());
                    }
                }
            });
        }
    }
}

//! Static lints for the register-allocation pipeline: a small diagnostics
//! engine plus two lint families.
//!
//! * **Family A — input-IR validation** ([`lint_input`], codes `L0xx`): runs
//!   *before* allocation on user-supplied IR and reports everything
//!   [`Function::validate`] deliberately leaves to analysis — use-before-def
//!   (a forward must-dataflow over temporaries), unreachable blocks,
//!   undefined or duplicate branch targets, register-class misuse, malformed
//!   terminators, and critical-edge advisories.
//! * **Family B — allocation-quality lints** ([`lint_quality`], codes
//!   `Q1xx`): runs on *allocated* output, **before** identity-move removal,
//!   and flags the residues the paper's machinery exists to avoid: dead
//!   spill stores the consistency bit (§2.3) should have suppressed,
//!   redundant reloads of a value still held in a register, identity and
//!   uncoalesced move chains (§2.5), and spill code placed in blocks whose
//!   register pressure never exhausts the file.
//!
//! Every diagnostic carries a stable [`LintCode`], a [`Severity`], and a
//! span (function, block, instruction, and — when the input came from text
//! parsed with [`lsra_ir::parse_module_with_lines`] — the source line).
//! [`LintReport`] renders human-readable text or JSONL (one object per
//! diagnostic, built on [`lsra_trace::json::JsonWriter`] so output is
//! escaping-safe and byte-deterministic).
//!
//! # Examples
//!
//! ```
//! let text = "func @f() {\n  temps t0:i t1:i\nb0:\n  t1 = add t0, t0\n  ret\n}\n";
//! let (f, lines) = lsra_ir::parse_function_with_lines(text)?;
//! let report = lsra_lint::lint_input_function(&f, Some(&lines));
//! assert_eq!(report.count(lsra_lint::LintCode::UseBeforeDef), 1);
//! assert_eq!(report.diags[0].line, Some(4));
//! # Ok::<(), lsra_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use lsra_ir::{BlockId, Function};
use lsra_trace::json::JsonWriter;
use lsra_trace::QualityLintSummary;

mod input;
mod quality;

pub use input::{lint_input, lint_input_function};
pub use quality::{lint_quality, lint_quality_function};

/// How serious a diagnostic is. Ordered: `Note < Warning < Error`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: expected or merely interesting (e.g. identity moves before
    /// the postopt pass, critical edges the allocator will split itself).
    Note,
    /// Suspicious: allowed, but indicates wasted work or dubious input.
    Warning,
    /// Broken input: allocation on this IR is meaningless or will misbehave.
    Error,
}

impl Severity {
    /// Lower-case name (`note` / `warning` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of shipped lint codes (the length of [`LintCode::ALL`]).
pub const NUM_CODES: usize = 19;

/// A stable lint code. `L0xx` codes are Family A (input-IR validation),
/// `Q1xx` codes are Family B (allocation quality), and `N0xx` codes are
/// Family C (native-code translation validation, emitted by the
/// `lsra-verify` crate's static machine-code verifier). The numeric code,
/// the kebab-case name, the default severity, and the one-line description
/// are all fixed per variant — see the tables in `DESIGN.md` §11 and §16.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `L001`: a temporary is read before any definition reaches it.
    UseBeforeDef,
    /// `L002`: a block is unreachable from the entry block.
    UnreachableBlock,
    /// `L003`: a jump or branch targets a block that does not exist.
    BadBlockTarget,
    /// `L004`: both arms of a branch target the same block.
    DuplicateBranchTarget,
    /// `L005`: an operand's register class does not fit the instruction.
    ClassMismatch,
    /// `L006`: a block is empty, unterminated, or has an interior terminator.
    MalformedBlock,
    /// `L007`: a critical edge (the resolution pass will split it).
    CriticalEdge,
    /// `Q101`: a spill store whose slot is never reloaded on any path.
    DeadSpillStore,
    /// `Q102`: a reload of a slot whose value is already in a register.
    RedundantReload,
    /// `Q103`: a register-to-register move with identical source and
    /// destination (removed by the postopt pass).
    IdentityMove,
    /// `Q104`: adjacent move chain `a = b; c = a` that could read `b`
    /// directly.
    MoveChain,
    /// `Q105`: spill code in a block whose register pressure never exhausts
    /// the register file.
    LowPressureSpill,
    /// `N001`: machine bytes that do not decode as any instruction the JIT
    /// encoder can emit.
    NativeDecode,
    /// `N002`: a decoded instruction does not fit the lowering template for
    /// the allocated-IR instruction it should implement.
    NativeShape,
    /// `N003`: the symbolic effect of a template disagrees with the
    /// allocated-IR semantics (wrong source, destination, or spill offset).
    NativeDataflow,
    /// `N004`: a missing or wrong fuel check or telemetry counter update.
    NativeCounter,
    /// `N005`: a jump, branch, or fault edge resolves to the wrong target.
    NativeBranch,
    /// `N006`: a malformed prologue, stub region, or function extent.
    NativeFrame,
    /// `N007`: a call site violates the helper or intra-module call ABI.
    NativeCall,
}

const CODES: [&str; NUM_CODES] = [
    "L001", "L002", "L003", "L004", "L005", "L006", "L007", "Q101", "Q102", "Q103", "Q104", "Q105",
    "N001", "N002", "N003", "N004", "N005", "N006", "N007",
];

const NAMES: [&str; NUM_CODES] = [
    "use-before-def",
    "unreachable-block",
    "bad-block-target",
    "duplicate-branch-target",
    "class-mismatch",
    "malformed-block",
    "critical-edge",
    "dead-spill-store",
    "redundant-reload",
    "identity-move",
    "move-chain",
    "low-pressure-spill",
    "native-decode",
    "native-shape",
    "native-dataflow",
    "native-counter",
    "native-branch",
    "native-frame",
    "native-call",
];

const SEVERITIES: [Severity; NUM_CODES] = [
    Severity::Error,   // L001
    Severity::Warning, // L002
    Severity::Error,   // L003
    Severity::Warning, // L004
    Severity::Error,   // L005
    Severity::Error,   // L006
    Severity::Note,    // L007
    Severity::Warning, // Q101
    Severity::Warning, // Q102
    Severity::Note,    // Q103
    Severity::Note,    // Q104
    Severity::Note,    // Q105
    Severity::Error,   // N001
    Severity::Error,   // N002
    Severity::Error,   // N003
    Severity::Error,   // N004
    Severity::Error,   // N005
    Severity::Error,   // N006
    Severity::Error,   // N007
];

const DESCRIPTIONS: [&str; NUM_CODES] = [
    "temporary read before any definition reaches it",
    "block unreachable from the entry block",
    "jump or branch to a block that does not exist",
    "both branch arms target the same block",
    "operand register class does not fit the instruction",
    "block is empty, unterminated, or has an interior terminator",
    "critical edge (the resolution pass will split it)",
    "spill store never reloaded on any path",
    "reload of a slot value already held in a register",
    "identity register move (removed by the postopt pass)",
    "adjacent move chain that could read the original source",
    "spill code in a block whose pressure never exhausts the register file",
    "machine bytes outside the JIT encoder's instruction language",
    "decoded instruction does not fit the expected lowering template",
    "symbolic machine effect disagrees with the allocated-IR semantics",
    "missing or wrong fuel check or telemetry counter update",
    "jump, branch, or fault edge resolves to the wrong target",
    "malformed prologue, stub region, or function extent",
    "call site violates the helper or intra-module call ABI",
];

impl LintCode {
    /// Every shipped lint code, in code order (`L001..L007`, `Q101..Q105`).
    pub const ALL: [LintCode; NUM_CODES] = [
        LintCode::UseBeforeDef,
        LintCode::UnreachableBlock,
        LintCode::BadBlockTarget,
        LintCode::DuplicateBranchTarget,
        LintCode::ClassMismatch,
        LintCode::MalformedBlock,
        LintCode::CriticalEdge,
        LintCode::DeadSpillStore,
        LintCode::RedundantReload,
        LintCode::IdentityMove,
        LintCode::MoveChain,
        LintCode::LowPressureSpill,
        LintCode::NativeDecode,
        LintCode::NativeShape,
        LintCode::NativeDataflow,
        LintCode::NativeCounter,
        LintCode::NativeBranch,
        LintCode::NativeFrame,
        LintCode::NativeCall,
    ];

    /// Dense index into [`LintCode::ALL`] (and the per-code tally arrays).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable code string, e.g. `L001`.
    pub fn code(self) -> &'static str {
        CODES[self.index()]
    }

    /// The kebab-case name, e.g. `use-before-def`.
    pub fn name(self) -> &'static str {
        NAMES[self.index()]
    }

    /// The default severity.
    pub fn severity(self) -> Severity {
        SEVERITIES[self.index()]
    }

    /// One-line description for tables and `--help`-style output.
    pub fn description(self) -> &'static str {
        DESCRIPTIONS[self.index()]
    }

    /// True for the Family B (allocation-quality, `Q1xx`) codes.
    pub fn is_quality(self) -> bool {
        self.code().starts_with('Q')
    }

    /// True for the Family C (native translation-validation, `N0xx`) codes.
    pub fn is_native(self) -> bool {
        self.code().starts_with('N')
    }

    /// Parses a code (`L001`) or name (`use-before-def`), as the `--deny`
    /// flag and the server protocol accept them.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.code() == s || c.name() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One diagnostic: a [`LintCode`] plus a span and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// Name of the function the diagnostic is in.
    pub func: String,
    /// Block the diagnostic points at, if block-granular.
    pub block: Option<BlockId>,
    /// Instruction index within `block`, if instruction-granular.
    pub inst: Option<usize>,
    /// 1-based source line, when the IR came from text parsed with a
    /// [`lsra_ir::FunctionLines`] map.
    pub line: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The diagnostic's severity (the code's default).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Serialises the diagnostic as one JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("code", self.code.code());
        w.field_str("name", self.code.name());
        w.field_str("severity", self.severity().name());
        w.field_str("func", &self.func);
        w.key("block");
        match self.block {
            Some(b) => w.uint(b.index() as u64),
            None => w.null(),
        }
        w.key("inst");
        match self.inst {
            Some(i) => w.uint(i as u64),
            None => w.null(),
        }
        w.key("line");
        match self.line {
            Some(l) => w.uint(l as u64),
            None => w.null(),
        }
        w.field_str("message", &self.message);
        w.end_object();
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]: in {}", self.code, self.severity(), self.code.name(), self.func)?;
        if let Some(b) = self.block {
            write!(f, ", {b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, " inst {i}")?;
        }
        if let Some(l) = self.line {
            write!(f, " (line {l})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// An ordered collection of diagnostics with counting and rendering helpers.
///
/// Diagnostics are kept in canonical order — function, then block, then
/// instruction, then code — so renderings are byte-deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    /// The diagnostics, in canonical order.
    pub diags: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Appends `other`'s diagnostics (keeping `self`'s before them — reports
    /// merge in pipeline order: Family A first, then Family B).
    pub fn merge(&mut self, other: LintReport) {
        self.diags.extend(other.diags);
    }

    /// True if nothing fired.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Number of diagnostics with `code`.
    pub fn count(&self, code: LintCode) -> usize {
        self.diags.iter().filter(|d| d.code == code).count()
    }

    /// Number of diagnostics at exactly `sev`.
    pub fn count_severity(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity() == sev).count()
    }

    /// The most severe level present, if any fired.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity()).max()
    }

    /// Number of diagnostics whose code is in `deny`.
    pub fn denied(&self, deny: &[LintCode]) -> usize {
        self.diags.iter().filter(|d| deny.contains(&d.code)).count()
    }

    /// Per-code tally over [`LintCode::ALL`], indexed by [`LintCode::index`].
    pub fn tally(&self) -> [u64; NUM_CODES] {
        let mut t = [0u64; NUM_CODES];
        for d in &self.diags {
            t[d.code.index()] += 1;
        }
        t
    }

    /// The report as a [`QualityLintSummary`] for `ModuleMetrics`.
    pub fn quality_summary(&self) -> QualityLintSummary {
        let t = self.tally();
        QualityLintSummary {
            errors: self.count_severity(Severity::Error) as u64,
            warnings: self.count_severity(Severity::Warning) as u64,
            notes: self.count_severity(Severity::Note) as u64,
            by_code: LintCode::ALL
                .into_iter()
                .filter(|c| t[c.index()] > 0)
                .map(|c| (c.code().to_string(), t[c.index()]))
                .collect(),
        }
    }

    /// One line per diagnostic plus a summary trailer.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        if self.is_empty() {
            out.push_str("no diagnostics\n");
        } else {
            out.push_str(&format!(
                "{} diagnostics: {} errors, {} warnings, {} notes\n",
                self.len(),
                self.count_severity(Severity::Error),
                self.count_severity(Severity::Warning),
                self.count_severity(Severity::Note),
            ));
        }
        out
    }

    /// One JSON object per line (JSONL), byte-deterministic.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            let mut w = JsonWriter::new();
            d.write_json(&mut w);
            out.push_str(&w.finish());
            out.push('\n');
        }
        out
    }

    /// Sorts into canonical order. Per-function lint passes emit in block
    /// order already; this is for reports assembled from several passes.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.func.clone(),
                    d.block.map_or(usize::MAX, BlockId::index),
                    d.inst.unwrap_or(usize::MAX),
                    d.code.index(),
                    d.message.clone(),
                )
            };
            key(a).cmp(&key(b))
        });
    }
}

/// Shared helper for the lint passes: emit into a report with the span's
/// source line resolved from an optional [`lsra_ir::FunctionLines`] map.
pub(crate) struct Emitter<'a> {
    pub func: &'a str,
    pub lines: Option<&'a lsra_ir::FunctionLines>,
    pub diags: Vec<Diagnostic>,
}

impl Emitter<'_> {
    pub(crate) fn emit(
        &mut self,
        code: LintCode,
        block: Option<BlockId>,
        inst: Option<usize>,
        message: String,
    ) {
        let line = match (self.lines, block, inst) {
            (Some(map), Some(b), Some(i)) => map.line_of(b, i),
            _ => None,
        };
        self.diags.push(Diagnostic {
            code,
            func: self.func.to_string(),
            block,
            inst,
            line,
            message,
        });
    }
}

/// Returns the register class of `r` if it can be determined without
/// panicking (an out-of-range temp has no class).
pub(crate) fn class_of(f: &Function, r: lsra_ir::Reg) -> Option<lsra_ir::RegClass> {
    match r {
        lsra_ir::Reg::Phys(p) => Some(p.class),
        lsra_ir::Reg::Temp(t) => f.temps.get(t.index()).map(|ti| ti.class),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The code tables cannot drift: `ALL` is in index order, codes and
    /// names are unique, and `parse` round-trips both spellings.
    #[test]
    fn code_tables_are_consistent() {
        for (i, c) in LintCode::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(LintCode::parse(c.code()), Some(c));
            assert_eq!(LintCode::parse(c.name()), Some(c));
            assert!(!c.description().is_empty());
            assert_eq!(c.is_quality(), (7..12).contains(&i), "{c}");
            assert_eq!(c.is_native(), i >= 12, "{c}");
            if c.is_native() {
                assert_eq!(c.severity(), Severity::Error, "{c}");
            }
        }
        let mut codes: Vec<_> = CODES.to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), NUM_CODES, "duplicate code strings");
        let mut names: Vec<_> = NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CODES, "duplicate names");
        assert_eq!(LintCode::parse("L999"), None);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_renders_and_counts() {
        let mut r = LintReport::new();
        r.diags.push(Diagnostic {
            code: LintCode::UseBeforeDef,
            func: "f".into(),
            block: Some(BlockId(0)),
            inst: Some(2),
            line: Some(7),
            message: "t0 read before defined".into(),
        });
        r.diags.push(Diagnostic {
            code: LintCode::IdentityMove,
            func: "f".into(),
            block: Some(BlockId(1)),
            inst: None,
            line: None,
            message: "r1 = r1".into(),
        });
        assert_eq!(r.len(), 2);
        assert_eq!(r.count(LintCode::UseBeforeDef), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert_eq!(r.denied(&[LintCode::IdentityMove]), 1);
        assert_eq!(r.denied(&[LintCode::DeadSpillStore]), 0);
        let human = r.render_human();
        assert!(human.contains("L001 error [use-before-def]: in f, b0 inst 2 (line 7)"), "{human}");
        assert!(human.contains("2 diagnostics: 1 errors, 0 warnings, 1 notes"), "{human}");
        let jsonl = r.render_jsonl();
        for line in jsonl.lines() {
            lsra_trace::json::validate(line).unwrap();
        }
        assert!(jsonl.contains(r#""code": "L001""#), "{jsonl}");
        assert!(jsonl.contains(r#""line": 7"#), "{jsonl}");
        assert!(jsonl.contains(r#""inst": null"#), "{jsonl}");
        let summary = r.quality_summary();
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.by_code, vec![("L001".to_string(), 1), ("Q103".to_string(), 1)]);
    }

    #[test]
    fn sort_is_canonical() {
        let d = |code: LintCode, block: u32, inst: usize| Diagnostic {
            code,
            func: "f".into(),
            block: Some(BlockId(block)),
            inst: Some(inst),
            line: None,
            message: String::new(),
        };
        let mut r = LintReport::new();
        r.diags.push(d(LintCode::IdentityMove, 1, 0));
        r.diags.push(d(LintCode::UseBeforeDef, 0, 3));
        r.diags.push(d(LintCode::ClassMismatch, 0, 3));
        r.sort();
        assert_eq!(
            r.diags.iter().map(|x| x.code).collect::<Vec<_>>(),
            vec![LintCode::UseBeforeDef, LintCode::ClassMismatch, LintCode::IdentityMove]
        );
    }
}

//! Family B — allocation-quality lints (`Q1xx`) over physical-register
//! dataflow.
//!
//! These run on an **allocated** function, *before* identity-move removal
//! (`remove_identity_moves`), and flag the residues the paper's machinery
//! exists to suppress:
//!
//! * `Q101` dead spill stores — backward liveness over **spill slots**
//!   (`SpillLoad` generates, `SpillStore` kills): a store whose slot is not
//!   live after it is never reloaded on any path, exactly what the §2.3
//!   consistency bit (`USED_C`) should have caught.
//! * `Q102` redundant reloads — a forward *must* dataflow tracking, per
//!   physical register, the set of spill slots whose current value the
//!   register provably holds (intersection meet, the symbolic checker's
//!   discipline): a `SpillLoad` of a slot already held somewhere wasted a
//!   memory access.
//! * `Q103` identity moves and `Q104` adjacent uncoalesced move chains —
//!   the §2.5 move-optimization residues.
//! * `Q105` low-pressure spills — backward liveness over **physical
//!   registers**: spill code in a block whose per-class pressure never
//!   reaches K means a free register existed at every point in the block
//!   (the spill decision was forced elsewhere; a lifetime-hole split could
//!   have avoided touching this block).

use lsra_analysis::{solve_backward, BitSet, Order};
use lsra_ir::{Function, Inst, MachineSpec, Module, PhysReg, Reg, RegClass, Temp};

use crate::{Emitter, LintCode, LintReport};

/// Runs every Family B lint over one allocated function.
///
/// # Panics
///
/// Panics if `f` is not allocated — quality lints are defined over physical
/// code. Run them before `remove_identity_moves` or the `Q103`/`Q104`
/// findings are already gone.
pub fn lint_quality_function(f: &Function, spec: &MachineSpec) -> LintReport {
    assert!(f.allocated, "quality lints run on allocated functions");
    let mut em = Emitter { func: &f.name, lines: None, diags: Vec::new() };
    // Defensive: allocator output is structurally valid by construction, but
    // these lints also run on fuzzer-corrupted modules — never panic.
    let well_formed = !f.blocks.is_empty()
        && f.block_ids().all(|b| {
            let blk = f.block(b);
            blk.is_well_formed() && blk.succs().iter().all(|s| s.index() < f.num_blocks())
        });
    if well_formed {
        let order = Order::compute(f);
        move_lints(f, &mut em);
        dead_store_lint(f, &order, &mut em);
        redundant_reload_lint(f, spec, &order, &mut em);
        low_pressure_lint(f, spec, &order, &mut em);
    }
    let mut report = LintReport { diags: em.diags };
    report.sort();
    report
}

/// Runs every Family B lint over an allocated module.
pub fn lint_quality(m: &Module, spec: &MachineSpec) -> LintReport {
    let mut report = LintReport::new();
    for f in &m.funcs {
        report.merge(lint_quality_function(f, spec));
    }
    report
}

/// Location index for a physical register: int registers first, then float.
fn loc(spec: &MachineSpec, p: PhysReg) -> usize {
    match p.class {
        RegClass::Int => p.index as usize,
        RegClass::Float => spec.num_regs(RegClass::Int) as usize + p.index as usize,
    }
}

fn class_of_loc(spec: &MachineSpec, l: usize) -> RegClass {
    if l < spec.num_regs(RegClass::Int) as usize {
        RegClass::Int
    } else {
        RegClass::Float
    }
}

fn slot_of(f: &Function, t: Temp) -> Option<usize> {
    f.spill_slots.get(t.index()).copied().flatten().map(|s| s.0 as usize)
}

/// `Q103` identity moves and `Q104` adjacent move chains.
fn move_lints(f: &Function, em: &mut Emitter<'_>) {
    let as_move = |inst: &Inst| match inst {
        Inst::Mov { dst: Reg::Phys(d), src: Reg::Phys(s) } => Some((*d, *s)),
        _ => None,
    };
    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        for (i, ins) in insts.iter().enumerate() {
            let Some((d, s)) = as_move(&ins.inst) else { continue };
            if d == s {
                em.emit(
                    LintCode::IdentityMove,
                    Some(b),
                    Some(i),
                    format!("identity move {d} = {d} (the postopt pass removes it)"),
                );
                continue;
            }
            if i > 0 {
                if let Some((pd, ps)) = as_move(&insts[i - 1].inst) {
                    // `pd = ps; d = pd` with all three registers distinct:
                    // the second move could read `ps` directly.
                    if pd != ps && s == pd && d != pd {
                        em.emit(
                            LintCode::MoveChain,
                            Some(b),
                            Some(i),
                            format!("move chain {d} <- {pd} <- {ps}; could read {ps} directly"),
                        );
                    }
                }
            }
        }
    }
}

/// `Q101`: backward liveness over spill slots. `SpillLoad` is the only
/// reader of a slot, `SpillStore` the only writer; a store whose slot is
/// dead immediately after it can never be observed.
fn dead_store_lint(f: &Function, order: &Order, em: &mut Emitter<'_>) {
    let ns = f.num_slots as usize;
    if ns == 0 {
        return;
    }
    let nb = f.num_blocks();
    let mut gen = vec![BitSet::new(ns); nb];
    let mut kill = vec![BitSet::new(ns); nb];
    for b in f.block_ids() {
        let bi = b.index();
        for ins in &f.block(b).insts {
            match &ins.inst {
                Inst::SpillLoad { temp, .. } => {
                    if let Some(s) = slot_of(f, *temp) {
                        if !kill[bi].contains(s) {
                            gen[bi].insert(s);
                        }
                    }
                }
                Inst::SpillStore { temp, .. } => {
                    if let Some(s) = slot_of(f, *temp) {
                        kill[bi].insert(s);
                    }
                }
                _ => {}
            }
        }
    }
    let rev: Vec<_> = order.rpo.iter().rev().copied().collect();
    let sol = solve_backward(f, ns, &gen, &kill, &rev);

    for &b in &order.rpo {
        let mut live = sol.live_out[b.index()].clone();
        for (i, ins) in f.block(b).insts.iter().enumerate().rev() {
            match &ins.inst {
                Inst::SpillLoad { temp, .. } => {
                    if let Some(s) = slot_of(f, *temp) {
                        live.insert(s);
                    }
                }
                Inst::SpillStore { temp, .. } => {
                    if let Some(s) = slot_of(f, *temp) {
                        if !live.contains(s) {
                            em.emit(
                                LintCode::DeadSpillStore,
                                Some(b),
                                Some(i),
                                format!(
                                    "spill store of {temp} (slot {s}) is dead: \
                                     no path reloads it before the next store"
                                ),
                            );
                        }
                        live.remove(s);
                    }
                }
                _ => {}
            }
        }
    }
}

/// `Q102`: forward must-dataflow mapping each physical register to the set
/// of spill slots whose *current* value it provably holds. Not a gen/kill
/// problem (moves copy whole sets between locations), so this runs its own
/// optimistic fixpoint, exactly like the symbolic checker.
fn redundant_reload_lint(f: &Function, spec: &MachineSpec, order: &Order, em: &mut Emitter<'_>) {
    let ns = f.num_slots as usize;
    if ns == 0 {
        return;
    }
    let nlocs = spec.total_regs();
    // State: per physical register, the set of spill slots whose current
    // value the register provably holds.
    type State = Vec<BitSet>;

    /// One-instruction transfer; with `report`, `SpillLoad`s of an
    /// already-held slot emit `Q102` before the state updates.
    fn step(
        f: &Function,
        spec: &MachineSpec,
        st: &mut State,
        ins: &lsra_ir::Ins,
        report: Option<(&mut Emitter<'_>, lsra_ir::BlockId, usize)>,
    ) {
        match &ins.inst {
            Inst::SpillLoad { dst: Reg::Phys(d), temp } => {
                let slot = slot_of(f, *temp);
                if let (Some(s), Some((em, b, i))) = (slot, report) {
                    let ni = spec.num_regs(RegClass::Int) as usize;
                    let holder = (0..st.len())
                        .filter(|&l| class_of_loc(spec, l) == d.class)
                        .find(|&l| st[l].contains(s));
                    if let Some(l) = holder {
                        let r = if l < ni {
                            PhysReg::int(l as u8)
                        } else {
                            PhysReg::float((l - ni) as u8)
                        };
                        em.emit(
                            LintCode::RedundantReload,
                            Some(b),
                            Some(i),
                            format!(
                                "reload of {temp} (slot {s}) is redundant: \
                                 the value is already in {r} on every path"
                            ),
                        );
                    }
                }
                st[loc(spec, *d)].clear();
                if let Some(s) = slot {
                    st[loc(spec, *d)].insert(s);
                }
            }
            Inst::SpillStore { src: Reg::Phys(p), temp } => {
                if let Some(s) = slot_of(f, *temp) {
                    // The slot's value changed: only the stored-from
                    // register holds it now.
                    for set in st.iter_mut() {
                        set.remove(s);
                    }
                    st[loc(spec, *p)].insert(s);
                }
            }
            Inst::Mov { dst: Reg::Phys(d), src: Reg::Phys(sr) } => {
                st[loc(spec, *d)] = st[loc(spec, *sr)].clone();
            }
            Inst::Call { ret_regs, .. } => {
                for c in RegClass::ALL {
                    for r in spec.caller_saved(c) {
                        st[loc(spec, r)].clear();
                    }
                }
                for r in ret_regs {
                    st[loc(spec, *r)].clear();
                }
            }
            inst => {
                inst.for_each_def(|r| {
                    if let Reg::Phys(p) = r {
                        st[loc(spec, p)].clear();
                    }
                });
            }
        }
    }

    let empty = || vec![BitSet::new(ns); nlocs];
    let preds = f.compute_preds();
    let in_state = |b: lsra_ir::BlockId, outs: &[Option<State>]| -> State {
        if b == f.entry() {
            return empty();
        }
        let mut acc: Option<State> = None;
        for p in &preds[b.index()] {
            if !order.is_reachable(*p) {
                continue;
            }
            if let Some(out) = &outs[p.index()] {
                match &mut acc {
                    Some(a) => {
                        for (x, y) in a.iter_mut().zip(out) {
                            x.intersect_with(y);
                        }
                    }
                    None => acc = Some(out.clone()),
                }
            }
        }
        acc.unwrap_or_else(|| {
            let mut top = empty();
            for s in &mut top {
                s.fill();
            }
            top
        })
    };

    let mut outs: Vec<Option<State>> = vec![None; f.num_blocks()];
    loop {
        let mut changed = false;
        for &b in &order.rpo {
            let mut st = in_state(b, &outs);
            for ins in &f.block(b).insts {
                step(f, spec, &mut st, ins, None);
            }
            if outs[b.index()].as_ref() != Some(&st) {
                outs[b.index()] = Some(st);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &b in &order.rpo {
        let mut st = in_state(b, &outs);
        for (i, ins) in f.block(b).insts.iter().enumerate() {
            step(f, spec, &mut st, ins, Some((&mut *em, b, i)));
        }
    }
}

/// `Q105`: backward liveness over physical registers; if a block contains
/// spill code of class `c` but the class's live count never reaches
/// `num_regs(c)` anywhere in the block, a free register existed at every
/// point in it.
fn low_pressure_lint(f: &Function, spec: &MachineSpec, order: &Order, em: &mut Emitter<'_>) {
    let has_spill = f.block_ids().any(|b| f.block(b).insts.iter().any(|ins| ins.tag.is_spill()));
    if !has_spill {
        return;
    }
    let nlocs = spec.total_regs();
    let nb = f.num_blocks();
    let mut gen = vec![BitSet::new(nlocs); nb];
    let mut kill = vec![BitSet::new(nlocs); nb];
    for b in f.block_ids() {
        let bi = b.index();
        for ins in &f.block(b).insts {
            ins.inst.for_each_use(|r| {
                if let Reg::Phys(p) = r {
                    if !kill[bi].contains(loc(spec, p)) {
                        gen[bi].insert(loc(spec, p));
                    }
                }
            });
            ins.inst.for_each_def(|r| {
                if let Reg::Phys(p) = r {
                    kill[bi].insert(loc(spec, p));
                }
            });
            if ins.inst.is_call() {
                // Caller-saved registers are clobbered: a definition for
                // liveness purposes.
                for c in RegClass::ALL {
                    for r in spec.caller_saved(c) {
                        kill[bi].insert(loc(spec, r));
                    }
                }
            }
        }
    }
    let rev: Vec<_> = order.rpo.iter().rev().copied().collect();
    let sol = solve_backward(f, nlocs, &gen, &kill, &rev);

    for &b in &order.rpo {
        let insts = &f.block(b).insts;
        // First spill instruction per class, for the diagnostic's span.
        let mut spill_at: [Option<usize>; 2] = [None, None];
        let mut spill_count = [0usize; 2];
        for (i, ins) in insts.iter().enumerate() {
            if !ins.tag.is_spill() {
                continue;
            }
            let class = match &ins.inst {
                Inst::SpillLoad { temp, .. } | Inst::SpillStore { temp, .. } => f.temp_class(*temp),
                Inst::Mov { dst: Reg::Phys(d), .. } => d.class,
                _ => continue,
            };
            let ci = class.index();
            spill_at[ci].get_or_insert(i);
            spill_count[ci] += 1;
        }
        if spill_at.iter().all(Option::is_none) {
            continue;
        }
        // Max per-class live count over every program point in the block.
        let mut live = sol.live_out[b.index()].clone();
        let count = |live: &BitSet| {
            let mut n = [0u32; 2];
            for l in live.iter() {
                n[class_of_loc(spec, l).index()] += 1;
            }
            n
        };
        let mut maxp = count(&live);
        for ins in insts.iter().rev() {
            ins.inst.for_each_def(|r| {
                if let Reg::Phys(p) = r {
                    live.remove(loc(spec, p));
                }
            });
            if ins.inst.is_call() {
                for c in RegClass::ALL {
                    for r in spec.caller_saved(c) {
                        live.remove(loc(spec, r));
                    }
                }
            }
            ins.inst.for_each_use(|r| {
                if let Reg::Phys(p) = r {
                    live.insert(loc(spec, p));
                }
            });
            let n = count(&live);
            maxp = [maxp[0].max(n[0]), maxp[1].max(n[1])];
        }
        for c in RegClass::ALL {
            let ci = c.index();
            let k = u32::from(spec.num_regs(c));
            if let Some(i) = spill_at[ci] {
                if maxp[ci] < k {
                    em.emit(
                        LintCode::LowPressureSpill,
                        Some(b),
                        Some(i),
                        format!(
                            "{} {c} spill instruction(s) in a block whose {c} pressure \
                             peaks at {} < {k} (a register was free throughout)",
                            spill_count[ci], maxp[ci]
                        ),
                    );
                }
            }
        }
    }
}

//! **Simple linear scan** in the style of Poletto, Engler & Kaashoek's `tcc`
//! (§4 of the paper): the related-work comparator.
//!
//! The allocator walks a list of whole lifetime intervals sorted by start
//! point and keeps an *active* set; when too many lifetimes compete, the one
//! with the furthest end point is spilled to memory for its entire lifetime.
//! "No attempt is made to take advantage of lifetime holes or to allocate
//! partial lifetimes."
//!
//! Extensions needed for a real calling convention (absent from `tcc`'s
//! single-register-class setting) are handled conservatively: an interval
//! may only use a register none of whose precolored-blocked segments (call
//! clobbers included) overlap the interval — so values live across calls
//! compete for callee-saved registers only, with no second chance.
//!
//! # Examples
//!
//! ```
//! use lsra_core::RegisterAllocator;
//! use lsra_ir::{FunctionBuilder, MachineSpec, RegClass};
//! use lsra_poletto::PolettoAllocator;
//!
//! let spec = MachineSpec::alpha_like();
//! let mut b = FunctionBuilder::new(&spec, "f", &[RegClass::Int]);
//! let x = b.param(0);
//! let y = b.int_temp("y");
//! b.add(y, x, x);
//! b.ret(Some(y.into()));
//! let mut f = b.finish();
//!
//! let stats = PolettoAllocator::default().allocate_function(&mut f, &spec);
//! assert!(f.allocated);
//! assert_eq!(stats.inserted_total(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::Instant;

use lsra_analysis::{IntervalMap, Lifetimes, Point, Segment};
use lsra_core::{AllocStats, RegisterAllocator};
use lsra_ir::{Function, Ins, Inst, MachineSpec, PhysReg, Reg, RegClass, SpillTag, Temp};

/// Non-overlapping occupied intervals of one register, on the shared
/// sorted-vec map (the whole-interval model never splits, so entry counts
/// stay small and the flat layout beats a tree).
fn overlapping_owner(map: &IntervalMap, seg: Segment) -> Option<Option<Temp>> {
    map.overlapping_owner(seg.start.0, seg.end.0)
}

fn overlaps(map: &IntervalMap, seg: Segment) -> bool {
    map.overlaps(seg.start.0, seg.end.0)
}

/// The `tcc`-style linear-scan allocator.
#[derive(Clone, Debug, Default)]
pub struct PolettoAllocator;

impl PolettoAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        PolettoAllocator
    }
}

struct State<'a> {
    f: &'a Function,
    lt: &'a Lifetimes,
    ni: usize,
    regs: Vec<IntervalMap>,
    assigned: Vec<Option<PhysReg>>,
    spilled: Vec<bool>,
}

impl<'a> State<'a> {
    fn phys(&self, d: usize) -> PhysReg {
        if d < self.ni {
            PhysReg::int(d as u8)
        } else {
            PhysReg::float((d - self.ni) as u8)
        }
    }

    fn dense(&self, p: PhysReg) -> usize {
        match p.class {
            RegClass::Int => p.index as usize,
            RegClass::Float => self.ni + p.index as usize,
        }
    }

    fn class_range(&self, class: RegClass) -> std::ops::Range<usize> {
        match class {
            RegClass::Int => 0..self.ni,
            RegClass::Float => self.ni..self.regs.len(),
        }
    }

    /// Whole lifetime of `t` as one interval (no holes).
    fn interval(&self, t: Temp) -> Option<Segment> {
        self.lt.lifetime(t)
    }

    fn unassign(&mut self, t: Temp) {
        if let Some(p) = self.assigned[t.index()].take() {
            let d = self.dense(p);
            self.regs[d].remove_owner(t);
        }
        self.spilled[t.index()] = true;
    }

    fn insert(&mut self, d: usize, seg: Segment, owner: Option<Temp>) {
        self.regs[d].insert(seg.start.0, seg.end.0, owner);
    }

    /// The linear scan over sorted intervals.
    fn scan(&mut self) {
        let mut order: Vec<(Segment, Temp)> = (0..self.f.num_temps() as u32)
            .map(Temp)
            .filter_map(|t| self.interval(t).map(|s| (s, t)))
            .collect();
        order.sort_by_key(|(s, t)| (s.start, t.0));
        for (iv, t) in order {
            let class = self.f.temp_class(t);
            // First fit among registers with no conflicting occupancy over
            // the whole interval.
            if let Some(d) = self.class_range(class).find(|&d| !overlaps(&self.regs[d], iv)) {
                self.insert(d, iv, Some(t));
                self.assigned[t.index()] = Some(self.phys(d));
                continue;
            }
            // Spill the active interval with the furthest end whose register
            // would become usable for the current interval; if none ends
            // later than the current interval, spill the current one.
            let mut victim: Option<(Point, Temp, usize)> = None;
            for d in self.class_range(class) {
                let Some(Some(a)) =
                    overlapping_owner(&self.regs[d], Segment::new(iv.start, iv.start))
                else {
                    continue;
                };
                let a_iv = self.interval(a).expect("active interval exists");
                // After removing `a`, the register must be free over `iv`
                // (precolored blocks may still conflict).
                let conflicts = self.regs[d]
                    .entries()
                    .any(|(s, e, o)| o != Some(a) && s <= iv.end.0 && e >= iv.start.0);
                if conflicts {
                    continue;
                }
                if victim.is_none() || a_iv.end > victim.unwrap().0 {
                    victim = Some((a_iv.end, a, d));
                }
            }
            match victim {
                Some((end, a, d)) if end > iv.end => {
                    self.unassign(a);
                    self.insert(d, iv, Some(t));
                    self.assigned[t.index()] = Some(self.phys(d));
                }
                _ => self.spilled[t.index()] = true,
            }
        }
    }

    fn point_span(gi: u32) -> Segment {
        Segment::new(Point::before(gi), Point::before(gi + 1))
    }

    fn num_free_at(&self, class: RegClass, span: Segment) -> usize {
        self.class_range(class).filter(|&d| !overlaps(&self.regs[d], span)).count()
    }

    /// Make sure spilled references can always find scratch registers,
    /// spilling further victims if not (same approach as the two-pass
    /// binpacking comparator).
    fn ensure_point_feasibility(&mut self) {
        let mut srcs: lsra_analysis::SmallVec<Temp, 8> = lsra_analysis::SmallVec::new();
        loop {
            let mut changed = false;
            for b in self.f.block_ids() {
                let first = self.lt.first_inst(b);
                for (k, ins) in self.f.block(b).insts.iter().enumerate() {
                    let gi = first + k as u32;
                    let span = Self::point_span(gi);
                    for class in RegClass::ALL {
                        srcs.clear();
                        ins.inst.for_each_use(|r| {
                            if let Reg::Temp(t) = r {
                                if self.spilled[t.index()]
                                    && self.f.temp_class(t) == class
                                    && !srcs.contains(&t)
                                {
                                    srcs.push(t);
                                }
                            }
                        });
                        let mut need = srcs.len();
                        let mut dst_extra = false;
                        ins.inst.for_each_def(|r| {
                            if let Reg::Temp(t) = r {
                                if self.spilled[t.index()] && self.f.temp_class(t) == class {
                                    dst_extra = srcs.is_empty();
                                }
                            }
                        });
                        if dst_extra {
                            need += 1;
                        }
                        if need == 0 {
                            continue;
                        }
                        while self.num_free_at(class, span) < need {
                            let victim = self
                                .victim_at(class, span)
                                .unwrap_or_else(|| panic!("no scratch register at {gi}"));
                            self.unassign(victim);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    fn victim_at(&self, class: RegClass, span: Segment) -> Option<Temp> {
        let mut best: Option<(u32, Temp)> = None;
        for d in self.class_range(class) {
            if let Some(Some(t)) = overlapping_owner(&self.regs[d], span) {
                let iv = self.interval(t).unwrap();
                let len = iv.end.0 - iv.start.0;
                if best.is_none_or(|(l, _)| len > l) {
                    best = Some((len, t));
                }
            }
        }
        best.map(|(_, t)| t)
    }
}

impl RegisterAllocator for PolettoAllocator {
    fn name(&self) -> &str {
        "simple linear scan (Poletto)"
    }

    fn allocate_function(&self, f: &mut Function, spec: &MachineSpec) -> AllocStats {
        let start = Instant::now();
        let mut stats = AllocStats { candidates: f.num_temps(), ..Default::default() };
        let lt = Lifetimes::of(f, spec);
        let ni = spec.num_regs(RegClass::Int) as usize;
        let nregs = spec.total_regs();
        let mut st = State {
            f,
            lt: &lt,
            ni,
            regs: (0..nregs).map(|_| IntervalMap::new()).collect(),
            assigned: vec![None; f.num_temps()],
            spilled: vec![false; f.num_temps()],
        };
        // Precolored blocked segments occupy their registers.
        for d in 0..nregs {
            let p = st.phys(d);
            for &s in lt.blocked(p) {
                st.insert(d, s, None);
            }
        }
        st.scan();
        st.ensure_point_feasibility();
        let assigned = st.assigned;
        let spilled = st.spilled;
        let regs = st.regs;
        stats.spilled_temps = spilled.iter().filter(|&&s| s).count();

        // Rewrite pass. The working buffers live outside the instruction
        // loop: one warm allocation each instead of five fresh ones per
        // instruction.
        let mut free: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        let mut pre: Vec<Ins> = Vec::new();
        let mut post: Vec<Ins> = Vec::new();
        let mut scratch_of: Vec<(Temp, PhysReg)> = Vec::new();
        let mut src_temps: Vec<Temp> = Vec::new();
        for b in f.block_ids().collect::<Vec<_>>() {
            let first = lt.first_inst(b);
            let insts = std::mem::take(&mut f.block_mut(b).insts);
            let mut out: Vec<Ins> = Vec::with_capacity(insts.len());
            for (k, mut ins) in insts.into_iter().enumerate() {
                let gi = first + k as u32;
                let span = State::point_span(gi);
                for class in RegClass::ALL {
                    let range = match class {
                        RegClass::Int => 0..ni,
                        RegClass::Float => ni..nregs,
                    };
                    free[class.index()].clear();
                    free[class.index()].extend(range.filter(|&d| !overlaps(&regs[d], span)));
                }
                let phys = |d: usize| -> PhysReg {
                    if d < ni {
                        PhysReg::int(d as u8)
                    } else {
                        PhysReg::float((d - ni) as u8)
                    }
                };
                scratch_of.clear();
                src_temps.clear();
                ins.inst.for_each_use(|r| {
                    if let Reg::Temp(t) = r {
                        if !src_temps.contains(&t) {
                            src_temps.push(t);
                        }
                    }
                });
                for &t in &src_temps {
                    if spilled[t.index()] {
                        let class = f.temp_class(t);
                        let d = free[class.index()]
                            .pop()
                            .unwrap_or_else(|| panic!("no scratch at {gi} for {t}"));
                        let r = phys(d);
                        f.slot_for(t);
                        pre.push(Ins::tagged(
                            Inst::SpillLoad { dst: Reg::Phys(r), temp: t },
                            SpillTag::EvictLoad,
                        ));
                        stats.record_insert(SpillTag::EvictLoad);
                        scratch_of.push((t, r));
                    }
                }
                ins.inst.for_each_use_mut(|r| {
                    if let Reg::Temp(t) = *r {
                        *r = if spilled[t.index()] {
                            Reg::Phys(scratch_of.iter().find(|(u, _)| *u == t).unwrap().1)
                        } else {
                            Reg::Phys(assigned[t.index()].expect("assigned"))
                        };
                    }
                });
                let mut def_temp = None;
                ins.inst.for_each_def(|r| {
                    if let Reg::Temp(t) = r {
                        def_temp = Some(t);
                    }
                });
                if let Some(t) = def_temp {
                    let r = if spilled[t.index()] {
                        let class = f.temp_class(t);
                        let r = scratch_of
                            .iter()
                            .find(|(_, p)| p.class == class)
                            .map(|(_, p)| *p)
                            .unwrap_or_else(|| {
                                let d = free[class.index()]
                                    .pop()
                                    .unwrap_or_else(|| panic!("no def scratch at {gi}"));
                                phys(d)
                            });
                        f.slot_for(t);
                        post.push(Ins::tagged(
                            Inst::SpillStore { src: Reg::Phys(r), temp: t },
                            SpillTag::EvictStore,
                        ));
                        stats.record_insert(SpillTag::EvictStore);
                        r
                    } else {
                        assigned[t.index()].expect("assigned")
                    };
                    ins.inst.for_each_def_mut(|d| {
                        if matches!(*d, Reg::Temp(_)) {
                            *d = Reg::Phys(r);
                        }
                    });
                }
                out.append(&mut pre);
                out.push(ins);
                out.append(&mut post);
            }
            f.block_mut(b).insts = out;
        }
        f.allocated = true;
        stats.alloc_seconds = start.elapsed().as_secs_f64();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, ExtFn, FunctionBuilder, Module, ModuleBuilder};
    use lsra_vm::{run_module, verify_allocation, VmOptions};

    fn verify(module: &Module, spec: &MachineSpec, input: &[u8]) -> AllocStats {
        let mut allocated = module.clone();
        let stats = PolettoAllocator.allocate_module(&mut allocated, spec);
        for id in allocated.func_ids().collect::<Vec<_>>() {
            allocated.func(id).validate().unwrap_or_else(|e| panic!("invalid output: {e}"));
        }
        verify_allocation(module, &allocated, spec, input, VmOptions::default())
            .unwrap_or_else(|m| panic!("poletto broke {}: {m}\n{allocated}", module.name));
        stats
    }

    fn single(f: lsra_ir::Function) -> Module {
        let mut mb = ModuleBuilder::new("t", 0);
        let id = mb.add(f);
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn simple_function() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        b.movi(x, 20);
        b.addi(y, x, 22);
        b.ret(Some(y.into()));
        let m = single(b.finish());
        verify(&m, &spec, &[]);
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(42));
    }

    #[test]
    fn spills_longest_interval_under_pressure() {
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let long = b.int_temp("long");
        b.movi(long, 100);
        let temps: Vec<_> = (0..6).map(|i| b.int_temp(&format!("v{i}"))).collect();
        for (i, &t) in temps.iter().enumerate() {
            b.movi(t, i as i64);
        }
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        for &t in &temps {
            b.add(acc, acc, t);
        }
        b.add(acc, acc, long); // long lives through everything
        b.ret(Some(acc.into()));
        let m = single(b.finish());
        let stats = verify(&m, &spec, &[]);
        assert!(stats.spilled_temps > 0);
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(115));
    }

    #[test]
    fn call_crossing_values_avoid_caller_saved() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let keep = b.int_temp("keep");
        b.movi(keep, 5);
        b.call_ext(ExtFn::GetChar, &[], Some(RegClass::Int));
        let out = b.int_temp("out");
        b.add(out, keep, keep);
        b.ret(Some(out.into()));
        let m = single(b.finish());
        verify(&m, &spec, &[]);
        let mut allocated = m.clone();
        PolettoAllocator.allocate_module(&mut allocated, &spec);
        assert_eq!(run_module(&allocated, &spec, &[]).unwrap().ret, Some(10));
    }

    #[test]
    fn no_lifetime_holes_are_exploited() {
        // Two values with perfectly interleaving holes: second-chance
        // binpacking fits both in one register; Poletto's whole intervals
        // overlap and need two (or spill). With exactly 2 registers plus
        // pressure, Poletto spills where binpacking wouldn't — the defining
        // difference called out in §4.
        let spec = MachineSpec::small(2, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let a = b.int_temp("a");
        let c = b.int_temp("c");
        let d = b.int_temp("d");
        b.movi(a, 1);
        let u1 = b.int_temp("u1");
        b.add(u1, a, a); // a's first segment ends
        b.movi(c, 2); // c lives inside a's hole
        let u2 = b.int_temp("u2");
        b.add(u2, c, c);
        b.movi(a, 3); // a returns
        b.add(d, a, u1);
        b.add(d, d, u2);
        b.ret(Some(d.into()));
        let m = single(b.finish());
        let stats = verify(&m, &spec, &[]);
        // Poletto treats a's lifetime as one interval covering c entirely;
        // combined with u1/u2 pressure it must spill on 2 registers.
        assert!(stats.spilled_temps > 0, "whole-interval model must spill here");
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(3 + 2 + 4));
    }

    #[test]
    fn furthest_end_heuristic_spills_long_intervals() {
        let spec = MachineSpec::small(3, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        // One long value and a stream of short pairs.
        let long = b.int_temp("long");
        b.movi(long, 50);
        let acc = b.int_temp("acc0");
        b.movi(acc, 0);
        for i in 0..5 {
            let s = b.int_temp(&format!("s{i}"));
            b.movi(s, i);
            let t = b.int_temp(&format!("t{i}"));
            b.movi(t, i + 1);
            let n = b.int_temp(&format!("n{i}"));
            b.add(n, s, t);
            b.add(acc, acc, n);
        }
        b.add(acc, acc, long);
        b.ret(Some(acc.into()));
        let m = single(b.finish());
        let stats = verify(&m, &spec, &[]);
        // The long interval is the canonical victim; the short ones fit.
        assert!(stats.spilled_temps >= 1);
        let expected: i64 = (0..5).map(|i| 2 * i + 1).sum::<i64>() + 50;
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(expected));
    }

    #[test]
    fn loop_works() {
        let spec = MachineSpec::small(4, 2);
        let mut b = FunctionBuilder::new(&spec, "main", &[]);
        let n = b.int_temp("n");
        let acc = b.int_temp("acc");
        b.movi(n, 10);
        b.movi(acc, 0);
        let head = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        b.add(acc, acc, n);
        b.addi(n, n, -1);
        b.branch(Cond::Gt, n, head, exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let m = single(b.finish());
        verify(&m, &spec, &[]);
        assert_eq!(run_module(&m, &spec, &[]).unwrap().ret, Some(55));
    }
}

//! Content-addressed allocation-result cache with LRU eviction under a
//! byte budget.
//!
//! The key is the *canonical* program text (the display form of the parsed
//! module, so textually different but structurally identical requests
//! share an entry) concatenated with the allocator name, the machine name,
//! and the result-shaping options; the map is addressed by the FNV-1a hash
//! of that string. The full key string is stored alongside each entry and
//! compared on lookup, so an FNV collision degrades to a miss (and the
//! colliding entry is replaced on insert) — it can never serve the wrong
//! result. The differential-fuzz service stage hammers exactly this
//! property with adversarial programs.

use std::collections::HashMap;

use lsra_core::AllocStats;
use lsra_vm::DynCounts;

/// The cached, deterministic result of one allocation request: everything
/// needed to render a response except the request id.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Allocation statistics with wall-clock fields zeroed (responses must
    /// be byte-reproducible).
    pub stats: AllocStats,
    /// Dynamic execution counts, when the request asked for a VM run.
    pub dyn_counts: Option<DynCounts>,
    /// The allocated module's display form.
    pub module_text: String,
}

/// FNV-1a, 64-bit: the cache's content address.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fixed per-entry overhead charged on top of the key and module text, so a
/// cache full of tiny entries still respects the budget roughly.
const ENTRY_OVERHEAD: usize = 256;

struct Slot {
    key: String,
    value: Outcome,
    bytes: usize,
    /// More-recently-used neighbour (`None` for the MRU head).
    prev: Option<usize>,
    /// Less-recently-used neighbour (`None` for the LRU tail).
    next: Option<usize>,
}

/// An LRU map from full key strings (addressed by their FNV-1a hash) to
/// [`Outcome`]s, evicting least-recently-used entries once the stored
/// bytes exceed the budget.
#[derive(Default)]
pub struct Cache {
    budget: usize,
    bytes: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    head: Option<usize>,
    tail: Option<usize>,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("budget", &self.budget)
            .field("bytes", &self.bytes)
            .field("entries", &self.map.len())
            .finish()
    }
}

impl Cache {
    /// An empty cache holding at most `budget` bytes of results.
    pub fn new(budget: usize) -> Self {
        Cache { budget, ..Cache::default() }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Lookups answered from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that computed instead of hitting: one per [`Cache::insert`]
    /// or [`Cache::note_miss`] (the service calls exactly one of the two
    /// after every failed [`Cache::get`]).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slots[idx].as_ref().expect("unlink of a free slot");
            (s.prev, s.next)
        };
        match prev {
            Some(p) => self.slots[p].as_mut().unwrap().next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n].as_mut().unwrap().prev = prev,
            None => self.tail = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let s = self.slots[idx].as_mut().unwrap();
            s.prev = None;
            s.next = old_head;
        }
        if let Some(h) = old_head {
            self.slots[h].as_mut().unwrap().prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    fn remove_hash(&mut self, hash: u64) {
        if let Some(idx) = self.map.remove(&hash) {
            self.unlink(idx);
            let slot = self.slots[idx].take().expect("mapped slot must be live");
            self.bytes -= slot.bytes;
            self.free.push(idx);
        }
    }

    /// Looks `key` up, promoting a hit to most-recently-used. Returns a
    /// clone of the stored outcome; an FNV collision with a different key
    /// string is a miss, never a wrong answer.
    pub fn get(&mut self, key: &str) -> Option<Outcome> {
        let hash = fnv64(key.as_bytes());
        let idx = *self.map.get(&hash)?;
        if self.slots[idx].as_ref().expect("mapped slot must be live").key != key {
            // FNV collision: a miss (counted by the insert or note_miss
            // that follows), never a wrong answer.
            return None;
        }
        self.hits += 1;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slots[idx].as_ref().unwrap().value.clone())
    }

    /// Records a miss that never produced a cacheable outcome (a request
    /// that failed before allocation), keeping hit-rate accounting honest.
    pub fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Inserts `key → value`, replacing any same-hash entry, then evicts
    /// from the LRU tail until the budget holds. An entry bigger than the
    /// whole budget is not stored.
    pub fn insert(&mut self, key: String, value: Outcome) {
        self.misses += 1;
        let entry_bytes = key.len() + value.module_text.len() + ENTRY_OVERHEAD;
        if entry_bytes > self.budget {
            return;
        }
        let hash = fnv64(key.as_bytes());
        self.remove_hash(hash);
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[idx] = Some(Slot { key, value, bytes: entry_bytes, prev: None, next: None });
        self.map.insert(hash, idx);
        self.push_front(idx);
        self.bytes += entry_bytes;
        while self.bytes > self.budget {
            let tail = self.tail.expect("over budget implies a tail");
            let tail_hash = {
                let s = self.slots[tail].as_ref().unwrap();
                fnv64(s.key.as_bytes())
            };
            self.remove_hash(tail_hash);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(tag: &str) -> Outcome {
        Outcome { stats: AllocStats::default(), dyn_counts: None, module_text: tag.to_string() }
    }

    #[test]
    fn hit_returns_the_stored_outcome_and_counts() {
        let mut c = Cache::new(1 << 20);
        assert!(c.get("k1").is_none());
        c.insert("k1".to_string(), outcome("m1"));
        let got = c.get("k1").expect("hit");
        assert_eq!(got.module_text, "m1");
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_under_byte_budget() {
        // Budget fits exactly two entries of this size.
        let per = "k0".len() + "m0".len() + ENTRY_OVERHEAD;
        let mut c = Cache::new(2 * per);
        c.insert("k0".to_string(), outcome("m0"));
        c.insert("k1".to_string(), outcome("m1"));
        // Touch k0 so k1 becomes the LRU victim.
        assert!(c.get("k0").is_some());
        c.insert("k2".to_string(), outcome("m2"));
        assert_eq!(c.len(), 2);
        assert!(c.get("k0").is_some(), "recently used survives");
        assert!(c.get("k1").is_none(), "LRU entry evicted");
        assert!(c.get("k2").is_some());
        assert!(c.bytes() <= 2 * per);
    }

    #[test]
    fn oversized_entries_are_not_stored() {
        let mut c = Cache::new(64);
        c.insert("key".to_string(), outcome("module text"));
        assert!(c.is_empty());
        assert!(c.get("key").is_none());
    }

    #[test]
    fn fnv_collisions_degrade_to_misses_not_wrong_answers() {
        // Simulate a collision by inserting under one key and probing with
        // a key that we *force* to share the slot: since real FNV-64
        // collisions are impractical to construct here, exercise the
        // key-comparison path by checking that equal hashes with unequal
        // keys are impossible to confuse — a same-hash replacement keeps
        // only the newest key.
        let mut c = Cache::new(1 << 20);
        c.insert("a".to_string(), outcome("va"));
        c.insert("a".to_string(), outcome("va2"));
        assert_eq!(c.len(), 1, "same key replaces, never duplicates");
        assert_eq!(c.get("a").unwrap().module_text, "va2");
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}

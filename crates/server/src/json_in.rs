//! The service's *input* side of JSON: a small recursive-descent parser for
//! one request line.
//!
//! The workspace deliberately has no serde dependency; output goes through
//! the shared escaping-safe [`lsra_trace::json::JsonWriter`], and this
//! module is its read-side counterpart. It accepts exactly the grammar the
//! sibling validator ([`lsra_trace::json::validate`]) accepts — objects,
//! arrays, strings with the standard escapes, numbers, `true`/`false`/
//! `null` — and nothing more (no trailing data, no raw control characters
//! inside strings).

use std::fmt;

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the protocol only uses non-negative integers, but
    /// the parser accepts the full grammar).
    Num(f64),
    /// A string, with escapes already decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (the protocol rejects duplicate keys at a
    /// higher level, not here).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The object's field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if this is a number that is
    /// one (finite, integral, in `u64` range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// A parse error: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

/// Parses `s` as exactly one JSON value (trailing whitespace allowed).
///
/// # Errors
///
/// Returns the first syntax error with its byte offset.
pub fn parse(s: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { at: self.i, msg: msg.to_string() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let v = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired;
                            // the writer never emits them.
                            out.push(char::from_u32(v).ok_or_else(|| self.err("bad \\u scalar"))?);
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged; the
                    // input is a &str so they are already valid.
                    let start = self.i;
                    self.i += 1;
                    while self.b.get(self.i).is_some_and(|&c| c & 0xc0 == 0x80) {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while p.b.get(p.i).is_some_and(u8::is_ascii_digit) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return Err(self.err("bad number"));
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(self.err("bad fraction"));
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(self.err("bad exponent"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| self.err("unrepresentable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shape() {
        let v =
            parse(r#"{"id": "r1", "workload": "wc", "options": {"run": true}, "n": 3}"#).unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("r1"));
        assert_eq!(v.get("options").unwrap().get("run").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(3));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn round_trips_writer_escapes() {
        // Whatever the shared writer emits, this parser must read back.
        for s in [r#"fn "quoted""#, r"path\to\fn", "tab\there", "line\nbreak", "é—☃"] {
            let quoted = lsra_trace::json::quote(s);
            assert_eq!(parse(&quoted).unwrap(), JsonValue::Str(s.to_string()), "{quoted}");
        }
    }

    #[test]
    fn rejects_what_the_validator_rejects() {
        for bad in ["{", "[1,", "{\"a\" 1}", "\"\\x\"", "{} extra", "nul", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
            assert!(lsra_trace::json::validate(bad).is_err(), "validator accepted {bad:?}");
        }
        for good in ["{}", "[]", "3.5e-2", "-0", "\"a\\u00e9b\"", "  [null, true]  "] {
            parse(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }

    #[test]
    fn numbers_parse_to_f64() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
    }
}

//! The allocation service: a batched, cached, backpressured server over
//! the register allocators, plus the load generator that verifies it.
//!
//! The subsystem turns the allocator library into a long-lived process
//! speaking a line-delimited JSON protocol (one request line in, one
//! response line out — see [`protocol`]):
//!
//! - [`protocol`] — request parsing (a small dependency-free JSON reader,
//!   [`json_in`]) and byte-deterministic response rendering through the
//!   shared `lsra_trace::json::JsonWriter`.
//! - [`cache`] — a content-addressed result cache keyed by the canonical
//!   program text plus allocator/machine/options, FNV-addressed,
//!   LRU-evicted under a byte budget, collision-safe by full-key compare.
//! - [`service`] — the bounded work queue and worker pool (one reused
//!   `AllocScratch` per worker), per-request deadlines, immediate
//!   `overloaded` backpressure, and `catch_unwind` panic isolation.
//! - [`net`] — the stdio and TCP transports behind `lsra serve`.
//! - [`telemetry`] — the metric registry behind the `metrics` op (sharded
//!   counters, gauges, log-linear latency histograms) and the
//!   `--telemetry-log` span stream with slow-request trace capture.
//! - [`loadgen`] — the deterministic load generator behind `lsra loadgen`,
//!   which verifies every response byte-for-byte against a direct,
//!   cache-free `allocate_module` run, cross-checks its own latency
//!   measurements against the server's histograms, and emits
//!   `BENCH_serve.json`.
//!
//! Responses never include wall-clock or cache-state fields, so the same
//! request always yields the same bytes — hit or miss, served or direct —
//! which is what makes both the load generator's comparison and the fuzz
//! harness's service stage exact.

#![warn(missing_docs)]

pub mod cache;
pub mod json_in;
pub mod loadgen;
pub mod net;
pub mod protocol;
pub mod service;
pub mod telemetry;

pub use cache::{fnv64, Cache, Outcome};
pub use loadgen::{run_loadgen, LatencySummary, LoadgenConfig, LoadgenReport};
pub use net::{serve_lines, serve_stdio, serve_tcp};
pub use protocol::{
    expected_response_line, parse_request, render_lint, run_lint, ParsedLine, Request, STATS_FIELDS,
};
pub use service::{CountersSnapshot, PendingSpan, ServeConfig, Service};
pub use telemetry::{ServerTelemetry, SpanLog};

//! The verifying load generator behind `lsra loadgen`.
//!
//! Builds a deterministic request mix over the named workloads — each
//! non-duplicate request is a *unique* program (the workload module plus a
//! uniquely-named tag function), and `dup_percent` of requests repeat an
//! earlier request verbatim to exercise the result cache — then drives a
//! server from `concurrency` client threads. Every `ok`/`error` response is
//! compared **byte-for-byte** against [`protocol::expected_response_line`],
//! a direct cache-free `allocate_module` execution of the same request, so
//! a cache-key collision, a stale entry, a protocol escaping bug, or any
//! allocator nondeterminism shows up as a mismatch. Results (throughput,
//! latency percentiles, hit rate, rejection counts, mismatches) are
//! serialized to `BENCH_serve.json` through the shared JSON writer and
//! checked with the shared validator before being written.
//!
//! The driver works against an in-process [`Service`] (the default: the
//! benchmark includes no network stack) or over TCP against a running
//! `lsra serve --addr` instance (`--addr`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lsra_ir::{FunctionBuilder, MachineSpec};
use lsra_trace::json::JsonWriter;
use lsra_workloads::{Lcg, Workload};

use crate::json_in::{self, JsonValue};
use crate::protocol::{self, ParsedLine};
use crate::service::{ServeConfig, Service};

/// Load-generator configuration; every knob has an `lsra loadgen` flag.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Workload names the request mix draws from (at least one).
    pub workloads: Vec<String>,
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Percentage of requests (after the first) that repeat an earlier
    /// request verbatim.
    pub dup_percent: u64,
    /// Mix seed (the run is deterministic in it, modulo scheduling).
    pub seed: u64,
    /// Allocator every request names.
    pub allocator: String,
    /// Machine selector every request names (`alpha` | `small:I,F`).
    pub machine: String,
    /// Drive a remote `lsra serve --addr` instance instead of an
    /// in-process service.
    pub addr: Option<String>,
    /// In-process service configuration (ignored with `addr`).
    pub serve: ServeConfig,
    /// Where to write the benchmark document (`None` = don't write).
    pub out_path: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            workloads: Vec::new(),
            requests: 200,
            concurrency: 8,
            dup_percent: 50,
            seed: 0x5eed_1998,
            allocator: "binpack".to_string(),
            machine: "alpha".to_string(),
            addr: None,
            serve: ServeConfig::default(),
            out_path: Some("BENCH_serve.json".to_string()),
        }
    }
}

/// Latency summary in milliseconds.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Slowest request.
    pub max: f64,
}

/// What a load-generation run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests issued.
    pub requests: usize,
    /// `ok` responses.
    pub ok: u64,
    /// Structured `error` responses.
    pub errors: u64,
    /// Backpressure responses (`timeout` / `overloaded` / `too_large`) —
    /// not verified byte-for-byte (they depend on load, not the program),
    /// but counted.
    pub rejected: u64,
    /// Responses that differed from the direct execution, byte-for-byte.
    pub mismatches: u64,
    /// The first mismatch, abbreviated, for diagnostics.
    pub first_mismatch: Option<String>,
    /// Wall-clock for the whole run.
    pub elapsed_seconds: f64,
    /// Requests per second over the run.
    pub throughput_rps: f64,
    /// Client-observed latency percentiles.
    pub latency_ms: LatencySummary,
    /// Cache hits over the run (delta of server counters).
    pub cache_hits: u64,
    /// Cache misses over the run (delta of server counters).
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when no lookups.
    pub hit_rate: f64,
    /// The `BENCH_serve.json` document for this run.
    pub json: String,
}

/// One client endpoint: the in-process service or a TCP connection.
enum Client {
    Local(Arc<Service>),
    Tcp(BufReader<TcpStream>),
}

impl Client {
    fn connect(service: &Option<Arc<Service>>, addr: &Option<String>) -> Result<Client, String> {
        match (service, addr) {
            (Some(s), _) => Ok(Client::Local(Arc::clone(s))),
            (None, Some(a)) => {
                let stream =
                    TcpStream::connect(a).map_err(|e| format!("connecting to {a}: {e}"))?;
                Ok(Client::Tcp(BufReader::new(stream)))
            }
            (None, None) => Err("loadgen needs an in-process service or an address".to_string()),
        }
    }

    fn call(&mut self, line: &str) -> Result<String, String> {
        match self {
            Client::Local(s) => Ok(s.call(line)),
            Client::Tcp(reader) => {
                let stream = reader.get_mut();
                stream
                    .write_all(line.as_bytes())
                    .and_then(|()| stream.write_all(b"\n"))
                    .map_err(|e| format!("send: {e}"))?;
                let mut resp = String::new();
                let n = reader.read_line(&mut resp).map_err(|e| format!("recv: {e}"))?;
                if n == 0 {
                    return Err("server closed the connection".to_string());
                }
                while resp.ends_with('\n') || resp.ends_with('\r') {
                    resp.pop();
                }
                Ok(resp)
            }
        }
    }
}

/// The workload module plus a uniquely-named tag function, as program
/// text: structurally the same allocation problem, but a distinct cache
/// key per `tag` — which is what lets `dup_percent` control the hit rate.
fn unique_program(w: &Workload, spec: &MachineSpec, tag: usize) -> String {
    let mut m = (w.build)();
    let mut b = FunctionBuilder::new(spec, format!("uniq_{tag}"), &[]);
    let t = b.int_temp("t");
    b.movi(t, tag as i64);
    b.ret(Some(t.into()));
    m.add_func(b.finish());
    format!("{m}")
}

fn request_line(id: &str, program: &str, cfg: &LoadgenConfig) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("id", id);
    w.field_str("program", program);
    w.field_str("allocator", &cfg.allocator);
    w.field_str("machine", &cfg.machine);
    w.key("emit_module");
    w.bool(true);
    w.end_object();
    w.finish()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn cache_counters(client: &mut Client) -> Result<(u64, u64), String> {
    let resp = client.call(r#"{"id": "loadgen-stats", "op": "stats"}"#)?;
    let v = json_in::parse(&resp).map_err(|e| format!("stats response: {e}"))?;
    let get = |k: &str| {
        v.get(k)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("stats response missing `{k}`: {resp}"))
    };
    Ok((get("cache_hits")?, get("cache_misses")?))
}

fn render_bench_json(cfg: &LoadgenConfig, r: &LoadgenReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("workloads");
    w.begin_array();
    for name in &cfg.workloads {
        w.string(name);
    }
    w.end_array();
    w.field_uint("requests", r.requests as u64);
    w.field_uint("concurrency", cfg.concurrency as u64);
    w.field_uint("dup_percent", cfg.dup_percent);
    w.field_str("allocator", &cfg.allocator);
    w.field_str("machine", &cfg.machine);
    w.field_str("mode", if cfg.addr.is_some() { "tcp" } else { "in-process" });
    w.field_float("elapsed_seconds", r.elapsed_seconds);
    w.field_float("throughput_rps", r.throughput_rps);
    w.key("latency_ms");
    w.begin_object();
    w.field_float("p50", r.latency_ms.p50);
    w.field_float("p95", r.latency_ms.p95);
    w.field_float("p99", r.latency_ms.p99);
    w.field_float("mean", r.latency_ms.mean);
    w.field_float("max", r.latency_ms.max);
    w.end_object();
    w.key("responses");
    w.begin_object();
    w.field_uint("ok", r.ok);
    w.field_uint("error", r.errors);
    w.field_uint("rejected", r.rejected);
    w.end_object();
    w.key("cache");
    w.begin_object();
    w.field_uint("hits", r.cache_hits);
    w.field_uint("misses", r.cache_misses);
    w.field_float("hit_rate", r.hit_rate);
    w.end_object();
    w.field_uint("mismatches", r.mismatches);
    w.end_object();
    w.finish()
}

/// Runs the load generator: build the mix, precompute the expected
/// responses, drive the server, verify, summarize.
///
/// # Errors
///
/// Returns a message for configuration problems (unknown workload, bad
/// machine), transport failures, or a failure to write the benchmark
/// document. Response *mismatches* are reported in the returned
/// [`LoadgenReport`], not as an `Err` — the caller decides how loud to be.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.workloads.is_empty() {
        return Err("loadgen needs at least one workload name".to_string());
    }
    if cfg.requests == 0 {
        return Err("loadgen needs --requests >= 1".to_string());
    }
    let spec = MachineSpec::parse(&cfg.machine)?;
    let workloads: Vec<Workload> = cfg
        .workloads
        .iter()
        .map(|n| lsra_workloads::by_name(n).ok_or_else(|| format!("unknown workload `{n}`")))
        .collect::<Result<_, _>>()?;

    // Deterministic request mix: uniques get their own program + id; dups
    // repeat an earlier line verbatim (same id, same bytes) so their
    // expected response is shared too.
    let mut rng = Lcg::new(cfg.seed);
    let mut lines: Vec<Arc<String>> = Vec::with_capacity(cfg.requests);
    let mut expected: Vec<Arc<String>> = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        if i > 0 && rng.below(100) < cfg.dup_percent {
            let j = rng.below(i as u64) as usize;
            lines.push(Arc::clone(&lines[j]));
            expected.push(Arc::clone(&expected[j]));
            continue;
        }
        let w = &workloads[rng.below(workloads.len() as u64) as usize];
        let program = unique_program(w, &spec, i);
        let line = request_line(&format!("r{i}"), &program, cfg);
        let req = match protocol::parse_request(&line) {
            Ok(ParsedLine::Alloc(r)) => *r,
            Ok(_) => unreachable!("loadgen builds alloc requests"),
            Err((_, msg)) => return Err(format!("loadgen built an invalid request: {msg}")),
        };
        expected.push(Arc::new(protocol::expected_response_line(&req)));
        lines.push(Arc::new(line));
    }

    let service =
        if cfg.addr.is_none() { Some(Arc::new(Service::start(cfg.serve.clone()))) } else { None };
    let (hits0, misses0) = cache_counters(&mut Client::connect(&service, &cfg.addr)?)?;

    // Drive: `concurrency` clients pull request indices off a shared
    // cursor, so issue order matches mix order (dups mostly land after
    // their originals) while completion interleaves freely.
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    let results: Vec<(usize, f64, String)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..cfg.concurrency.max(1) {
            let cursor = &cursor;
            let lines = &lines;
            let service = &service;
            let addr = &cfg.addr;
            handles.push(s.spawn(move || -> Result<Vec<(usize, f64, String)>, String> {
                let mut client = Client::connect(service, addr)?;
                let mut out = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= lines.len() {
                        return Ok(out);
                    }
                    let t0 = Instant::now();
                    let resp = client.call(&lines[i])?;
                    out.push((i, t0.elapsed().as_secs_f64(), resp));
                }
            }));
        }
        handles.into_iter().map(|h| h.join().expect("loadgen client panicked")).collect::<Vec<_>>()
    })
    .into_iter()
    .collect::<Result<Vec<_>, String>>()?
    .into_iter()
    .flatten()
    .collect();
    let elapsed = start.elapsed().as_secs_f64();

    let (hits1, misses1) = cache_counters(&mut Client::connect(&service, &cfg.addr)?)?;

    let mut report =
        LoadgenReport { requests: cfg.requests, elapsed_seconds: elapsed, ..Default::default() };
    let mut latencies: Vec<f64> = Vec::with_capacity(results.len());
    for (i, secs, resp) in &results {
        latencies.push(secs * 1e3);
        let status = json_in::parse(resp)
            .ok()
            .and_then(|v| v.get("status").and_then(JsonValue::as_str).map(str::to_string))
            .unwrap_or_else(|| "unparseable".to_string());
        match status.as_str() {
            "timeout" | "overloaded" | "too_large" => {
                report.rejected += 1;
                continue;
            }
            "ok" => report.ok += 1,
            _ => report.errors += 1,
        }
        if resp != expected[*i].as_str() {
            report.mismatches += 1;
            if report.first_mismatch.is_none() {
                let truncate = |s: &str| -> String { s.chars().take(400).collect() };
                report.first_mismatch = Some(format!(
                    "request {i} ({}): got {} …, want {} …",
                    truncate(&lines[*i]),
                    truncate(resp),
                    truncate(&expected[*i])
                ));
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    report.latency_ms = LatencySummary {
        p50: percentile(&latencies, 50.0),
        p95: percentile(&latencies, 95.0),
        p99: percentile(&latencies, 99.0),
        mean: latencies.iter().sum::<f64>() / latencies.len().max(1) as f64,
        max: latencies.last().copied().unwrap_or(0.0),
    };
    report.throughput_rps = if elapsed > 0.0 { cfg.requests as f64 / elapsed } else { 0.0 };
    report.cache_hits = hits1.saturating_sub(hits0);
    report.cache_misses = misses1.saturating_sub(misses0);
    let lookups = report.cache_hits + report.cache_misses;
    report.hit_rate = if lookups == 0 { 0.0 } else { report.cache_hits as f64 / lookups as f64 };

    report.json = render_bench_json(cfg, &report);
    lsra_trace::json::validate(&report.json)
        .map_err(|e| format!("BENCH_serve.json failed validation: {e}"))?;
    if let Some(path) = &cfg.out_path {
        std::fs::write(path, format!("{}\n", report.json))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_in_process_run_verifies_and_hits_cache() {
        let cfg = LoadgenConfig {
            workloads: vec!["wc".to_string()],
            requests: 12,
            concurrency: 3,
            dup_percent: 60,
            serve: ServeConfig { workers: 2, ..ServeConfig::default() },
            out_path: None,
            ..LoadgenConfig::default()
        };
        let r = run_loadgen(&cfg).unwrap();
        assert_eq!(r.requests, 12);
        assert_eq!(r.mismatches, 0, "{:?}", r.first_mismatch);
        assert_eq!(r.ok, 12);
        assert!(r.cache_hits > 0, "dup-heavy mix must hit: {r:?}");
        lsra_trace::json::validate(&r.json).unwrap();
    }

    #[test]
    fn unique_programs_differ_and_parse() {
        let w = lsra_workloads::by_name("wc").unwrap();
        let spec = MachineSpec::alpha_like();
        let a = unique_program(&w, &spec, 1);
        let b = unique_program(&w, &spec, 2);
        assert_ne!(a, b);
        lsra_ir::parse_module(&a).unwrap();
    }

    #[test]
    fn percentiles_pick_sane_indices() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 50.0), 6.0);
        assert_eq!(percentile(&xs, 99.0), 10.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}

//! The verifying load generator behind `lsra loadgen`.
//!
//! Builds a deterministic request mix over the named workloads — each
//! non-duplicate request is a *unique* program (the workload module plus a
//! uniquely-named tag function), and `dup_percent` of requests repeat an
//! earlier request verbatim to exercise the result cache — then drives a
//! server from `concurrency` client threads. Every `ok`/`error` response is
//! compared **byte-for-byte** against [`protocol::expected_response_line`],
//! a direct cache-free `allocate_module` execution of the same request, so
//! a cache-key collision, a stale entry, a protocol escaping bug, or any
//! allocator nondeterminism shows up as a mismatch. Results (throughput,
//! latency percentiles, hit rate, rejection counts, mismatches) are
//! serialized to `BENCH_serve.json` through the shared JSON writer and
//! checked with the shared validator before being written.
//!
//! The driver works against an in-process [`Service`] (the default: the
//! benchmark includes no network stack) or over TCP against a running
//! `lsra serve --addr` instance (`--addr`).
//!
//! Beyond the byte-for-byte check, the run cross-checks its own clock
//! against the server's: it pulls the `lsra_request` latency histogram
//! (via the `metrics` op) before and after the run, diffs the two
//! snapshots — exact, because the histograms merge bucket-wise — and
//! compares the server-side percentiles with the client-side ones. All
//! server snapshots flow through one *control connection* and are taken
//! only after a drain barrier has observed `in_flight == 0` and
//! `queue_depth == 0`, so counter deltas never race in-flight work; at
//! that quiescent point the run also asserts the counter conservation
//! invariant (see [`crate::telemetry`]) and fails loudly if the books
//! don't balance.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsra_ir::{FunctionBuilder, MachineSpec};
use lsra_telemetry::HistogramSnapshot;
use lsra_trace::json::JsonWriter;
use lsra_workloads::{Lcg, Workload};

use crate::json_in::{self, JsonValue};
use crate::protocol::{self, ParsedLine};
use crate::service::{ServeConfig, Service};

/// Load-generator configuration; every knob has an `lsra loadgen` flag.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Workload names the request mix draws from (at least one).
    pub workloads: Vec<String>,
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Percentage of requests (after the first) that repeat an earlier
    /// request verbatim.
    pub dup_percent: u64,
    /// Mix seed (the run is deterministic in it, modulo scheduling).
    pub seed: u64,
    /// Allocator every request names.
    pub allocator: String,
    /// Machine selector every request names (`alpha` | `small:I,F`).
    pub machine: String,
    /// Drive a remote `lsra serve --addr` instance instead of an
    /// in-process service.
    pub addr: Option<String>,
    /// In-process service configuration (ignored with `addr`).
    pub serve: ServeConfig,
    /// Where to write the benchmark document (`None` = don't write).
    pub out_path: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            workloads: Vec::new(),
            requests: 200,
            concurrency: 8,
            dup_percent: 50,
            seed: 0x5eed_1998,
            allocator: "binpack".to_string(),
            machine: "alpha".to_string(),
            addr: None,
            serve: ServeConfig::default(),
            out_path: Some("BENCH_serve.json".to_string()),
        }
    }
}

/// Latency summary in milliseconds.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Slowest request.
    pub max: f64,
}

/// What a load-generation run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests issued.
    pub requests: usize,
    /// `ok` responses.
    pub ok: u64,
    /// Structured `error` responses.
    pub errors: u64,
    /// Backpressure responses (`timeout` / `overloaded` / `too_large`) —
    /// not verified byte-for-byte (they depend on load, not the program),
    /// but counted.
    pub rejected: u64,
    /// Responses that differed from the direct execution, byte-for-byte.
    pub mismatches: u64,
    /// The first mismatch, abbreviated, for diagnostics.
    pub first_mismatch: Option<String>,
    /// Wall-clock for the whole run.
    pub elapsed_seconds: f64,
    /// Requests per second over the run.
    pub throughput_rps: f64,
    /// Client-observed latency percentiles.
    pub latency_ms: LatencySummary,
    /// Cache hits over the run (delta of server counters).
    pub cache_hits: u64,
    /// Cache misses over the run (delta of server counters).
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when no lookups.
    pub hit_rate: f64,
    /// The server-side cross-check: latency percentiles recomputed from
    /// the server's own histograms, and whether they agree with the
    /// client's measurements.
    pub server: ServerCheck,
    /// The `BENCH_serve.json` document for this run.
    pub json: String,
}

/// Server-side numbers pulled through the control connection after the
/// drain barrier, and their agreement with the client's clock.
#[derive(Clone, Debug, Default)]
pub struct ServerCheck {
    /// Percentiles of the server's `lsra_request` histogram delta over the
    /// run, in milliseconds (bucket resolution, ≤ 3.1 % relative).
    pub latency_ms: LatencySummary,
    /// Samples in the delta; equals the requests issued (asserted).
    pub samples: u64,
    /// Per-percentile agreement with the client measurement, within
    /// `max(25 % of the client value, 5 ms)`.
    pub agreement_p50: bool,
    /// See `agreement_p50`.
    pub agreement_p95: bool,
    /// See `agreement_p50`.
    pub agreement_p99: bool,
    /// All three percentiles agree.
    pub agreement_ok: bool,
    /// `requests` from the quiesced final stats snapshot.
    pub requests: u64,
    /// Sum of the terminal response counters from the same snapshot;
    /// conservation demands it equal `requests` (asserted).
    pub accounted: u64,
}

/// One client endpoint: the in-process service or a TCP connection.
enum Client {
    Local(Arc<Service>),
    Tcp(BufReader<TcpStream>),
}

impl Client {
    fn connect(service: &Option<Arc<Service>>, addr: &Option<String>) -> Result<Client, String> {
        match (service, addr) {
            (Some(s), _) => Ok(Client::Local(Arc::clone(s))),
            (None, Some(a)) => {
                let stream =
                    TcpStream::connect(a).map_err(|e| format!("connecting to {a}: {e}"))?;
                Ok(Client::Tcp(BufReader::new(stream)))
            }
            (None, None) => Err("loadgen needs an in-process service or an address".to_string()),
        }
    }

    fn call(&mut self, line: &str) -> Result<String, String> {
        match self {
            Client::Local(s) => Ok(s.call(line)),
            Client::Tcp(reader) => {
                let stream = reader.get_mut();
                stream
                    .write_all(line.as_bytes())
                    .and_then(|()| stream.write_all(b"\n"))
                    .map_err(|e| format!("send: {e}"))?;
                let mut resp = String::new();
                let n = reader.read_line(&mut resp).map_err(|e| format!("recv: {e}"))?;
                if n == 0 {
                    return Err("server closed the connection".to_string());
                }
                while resp.ends_with('\n') || resp.ends_with('\r') {
                    resp.pop();
                }
                Ok(resp)
            }
        }
    }
}

/// The workload module plus a uniquely-named tag function, as program
/// text: structurally the same allocation problem, but a distinct cache
/// key per `tag` — which is what lets `dup_percent` control the hit rate.
fn unique_program(w: &Workload, spec: &MachineSpec, tag: usize) -> String {
    let mut m = (w.build)();
    let mut b = FunctionBuilder::new(spec, format!("uniq_{tag}"), &[]);
    let t = b.int_temp("t");
    b.movi(t, tag as i64);
    b.ret(Some(t.into()));
    m.add_func(b.finish());
    format!("{m}")
}

fn request_line(id: &str, program: &str, cfg: &LoadgenConfig) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("id", id);
    w.field_str("program", program);
    w.field_str("allocator", &cfg.allocator);
    w.field_str("machine", &cfg.machine);
    w.key("emit_module");
    w.bool(true);
    w.end_object();
    w.finish()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stats_snapshot(client: &mut Client) -> Result<JsonValue, String> {
    let resp = client.call(r#"{"id": "loadgen-stats", "op": "stats"}"#)?;
    json_in::parse(&resp).map_err(|e| format!("stats response: {e}"))
}

fn stat(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("stats response missing `{key}`"))
}

/// Polls `stats` until the server is quiescent (`in_flight == 0` and
/// `queue_depth == 0`), returning that final quiesced snapshot. Counter
/// deltas taken across a barrier cannot race in-flight work: every
/// accepted request has reached a terminal counter by the time the
/// snapshot is taken, and the snapshot travels over the same (serial)
/// control connection that observed the drain.
fn drain_barrier(client: &mut Client) -> Result<JsonValue, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let v = stats_snapshot(client)?;
        let in_flight = stat(&v, "in_flight")?;
        let queue_depth = stat(&v, "queue_depth")?;
        if in_flight == 0 && queue_depth == 0 {
            return Ok(v);
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "drain barrier: server still busy after 10s \
                 (in_flight={in_flight}, queue_depth={queue_depth})"
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Pulls the server's `lsra_request` histogram through the `metrics` op
/// and rebuilds it from the sparse JSON bucket list.
fn request_histogram(client: &mut Client) -> Result<HistogramSnapshot, String> {
    let resp = client.call(r#"{"id": "loadgen-metrics", "op": "metrics"}"#)?;
    let v = json_in::parse(&resp).map_err(|e| format!("metrics response: {e}"))?;
    let h = v
        .get("json")
        .and_then(|j| j.get("histograms"))
        .and_then(|hs| hs.get("lsra_request"))
        .ok_or("metrics response missing the lsra_request histogram")?;
    let field = |k: &str| {
        h.get(k)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("lsra_request histogram missing `{k}`"))
    };
    let (count, sum) = (field("count")?, field("sum")?);
    let buckets = h
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or("lsra_request histogram missing `buckets`")?;
    let mut pairs = Vec::with_capacity(buckets.len());
    for b in buckets {
        let pair = b.as_array().filter(|p| p.len() == 2);
        let i = pair.and_then(|p| p[0].as_u64());
        let c = pair.and_then(|p| p[1].as_u64());
        match (i, c) {
            (Some(i), Some(c)) => pairs.push((i as usize, c)),
            _ => return Err(format!("malformed histogram bucket entry: {b:?}")),
        }
    }
    Ok(HistogramSnapshot::from_sparse(&pairs, count, sum))
}

/// Whether a server-side percentile agrees with the client-side one:
/// within 25 % of the client value or 5 ms, whichever is looser (bucket
/// resolution plus transport overhead live inside that band).
fn within_tolerance(server_ms: f64, client_ms: f64) -> bool {
    (server_ms - client_ms).abs() <= (0.25 * client_ms).max(5.0)
}

fn render_bench_json(cfg: &LoadgenConfig, r: &LoadgenReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("workloads");
    w.begin_array();
    for name in &cfg.workloads {
        w.string(name);
    }
    w.end_array();
    w.field_uint("requests", r.requests as u64);
    w.field_uint("concurrency", cfg.concurrency as u64);
    w.field_uint("dup_percent", cfg.dup_percent);
    w.field_str("allocator", &cfg.allocator);
    w.field_str("machine", &cfg.machine);
    w.field_str("mode", if cfg.addr.is_some() { "tcp" } else { "in-process" });
    w.field_float("elapsed_seconds", r.elapsed_seconds);
    w.field_float("throughput_rps", r.throughput_rps);
    w.key("latency_ms");
    w.begin_object();
    w.field_float("p50", r.latency_ms.p50);
    w.field_float("p95", r.latency_ms.p95);
    w.field_float("p99", r.latency_ms.p99);
    w.field_float("mean", r.latency_ms.mean);
    w.field_float("max", r.latency_ms.max);
    w.end_object();
    w.key("server_latency_ms");
    w.begin_object();
    w.field_float("p50", r.server.latency_ms.p50);
    w.field_float("p95", r.server.latency_ms.p95);
    w.field_float("p99", r.server.latency_ms.p99);
    w.field_float("mean", r.server.latency_ms.mean);
    w.field_float("max", r.server.latency_ms.max);
    w.field_uint("samples", r.server.samples);
    w.end_object();
    w.key("agreement");
    w.begin_object();
    w.field_str("tolerance", "max(25% of client, 5ms)");
    w.key("p50");
    w.bool(r.server.agreement_p50);
    w.key("p95");
    w.bool(r.server.agreement_p95);
    w.key("p99");
    w.bool(r.server.agreement_p99);
    w.key("ok");
    w.bool(r.server.agreement_ok);
    w.end_object();
    w.key("conservation");
    w.begin_object();
    w.field_uint("requests", r.server.requests);
    w.field_uint("accounted", r.server.accounted);
    w.key("ok");
    w.bool(r.server.requests == r.server.accounted);
    w.end_object();
    w.key("responses");
    w.begin_object();
    w.field_uint("ok", r.ok);
    w.field_uint("error", r.errors);
    w.field_uint("rejected", r.rejected);
    w.end_object();
    w.key("cache");
    w.begin_object();
    w.field_uint("hits", r.cache_hits);
    w.field_uint("misses", r.cache_misses);
    w.field_float("hit_rate", r.hit_rate);
    w.end_object();
    w.field_uint("mismatches", r.mismatches);
    w.end_object();
    w.finish()
}

/// Runs the load generator: build the mix, precompute the expected
/// responses, drive the server, verify, summarize.
///
/// # Errors
///
/// Returns a message for configuration problems (unknown workload, bad
/// machine), transport failures, or a failure to write the benchmark
/// document. Response *mismatches* are reported in the returned
/// [`LoadgenReport`], not as an `Err` — the caller decides how loud to be.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.workloads.is_empty() {
        return Err("loadgen needs at least one workload name".to_string());
    }
    if cfg.requests == 0 {
        return Err("loadgen needs --requests >= 1".to_string());
    }
    let spec = MachineSpec::parse(&cfg.machine)?;
    let workloads: Vec<Workload> = cfg
        .workloads
        .iter()
        .map(|n| lsra_workloads::by_name(n).ok_or_else(|| format!("unknown workload `{n}`")))
        .collect::<Result<_, _>>()?;

    // Deterministic request mix: uniques get their own program + id; dups
    // repeat an earlier line verbatim (same id, same bytes) so their
    // expected response is shared too.
    let mut rng = Lcg::new(cfg.seed);
    let mut lines: Vec<Arc<String>> = Vec::with_capacity(cfg.requests);
    let mut expected: Vec<Arc<String>> = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        if i > 0 && rng.below(100) < cfg.dup_percent {
            let j = rng.below(i as u64) as usize;
            lines.push(Arc::clone(&lines[j]));
            expected.push(Arc::clone(&expected[j]));
            continue;
        }
        let w = &workloads[rng.below(workloads.len() as u64) as usize];
        let program = unique_program(w, &spec, i);
        let line = request_line(&format!("r{i}"), &program, cfg);
        let req = match protocol::parse_request(&line) {
            Ok(ParsedLine::Alloc(r)) => *r,
            Ok(_) => unreachable!("loadgen builds alloc requests"),
            Err((_, msg)) => return Err(format!("loadgen built an invalid request: {msg}")),
        };
        expected.push(Arc::new(protocol::expected_response_line(&req)));
        lines.push(Arc::new(line));
    }

    let service =
        if cfg.addr.is_none() { Some(Arc::new(Service::start(cfg.serve.clone()))) } else { None };
    // One control connection carries every server snapshot: the "before"
    // numbers, the drain barrier, the "after" numbers, and the histogram
    // pulls. Quiescing through the same serial connection is what makes
    // the counter deltas race-free.
    let mut control = Client::connect(&service, &cfg.addr)?;
    let before_stats = drain_barrier(&mut control)?;
    let before_hist = request_histogram(&mut control)?;
    let (hits0, misses0) =
        (stat(&before_stats, "cache_hits")?, stat(&before_stats, "cache_misses")?);

    // Drive: `concurrency` clients pull request indices off a shared
    // cursor, so issue order matches mix order (dups mostly land after
    // their originals) while completion interleaves freely.
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    let results: Vec<(usize, f64, String)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..cfg.concurrency.max(1) {
            let cursor = &cursor;
            let lines = &lines;
            let service = &service;
            let addr = &cfg.addr;
            handles.push(s.spawn(move || -> Result<Vec<(usize, f64, String)>, String> {
                let mut client = Client::connect(service, addr)?;
                let mut out = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= lines.len() {
                        return Ok(out);
                    }
                    let t0 = Instant::now();
                    let resp = client.call(&lines[i])?;
                    out.push((i, t0.elapsed().as_secs_f64(), resp));
                }
            }));
        }
        handles.into_iter().map(|h| h.join().expect("loadgen client panicked")).collect::<Vec<_>>()
    })
    .into_iter()
    .collect::<Result<Vec<_>, String>>()?
    .into_iter()
    .flatten()
    .collect();
    let elapsed = start.elapsed().as_secs_f64();

    let after_stats = drain_barrier(&mut control)?;
    let after_hist = request_histogram(&mut control)?;
    let (hits1, misses1) = (stat(&after_stats, "cache_hits")?, stat(&after_stats, "cache_misses")?);

    let mut report =
        LoadgenReport { requests: cfg.requests, elapsed_seconds: elapsed, ..Default::default() };
    let mut latencies: Vec<f64> = Vec::with_capacity(results.len());
    for (i, secs, resp) in &results {
        latencies.push(secs * 1e3);
        let status = json_in::parse(resp)
            .ok()
            .and_then(|v| v.get("status").and_then(JsonValue::as_str).map(str::to_string))
            .unwrap_or_else(|| "unparseable".to_string());
        match status.as_str() {
            "timeout" | "overloaded" | "too_large" => {
                report.rejected += 1;
                continue;
            }
            "ok" => report.ok += 1,
            _ => report.errors += 1,
        }
        if resp != expected[*i].as_str() {
            report.mismatches += 1;
            if report.first_mismatch.is_none() {
                let truncate = |s: &str| -> String { s.chars().take(400).collect() };
                report.first_mismatch = Some(format!(
                    "request {i} ({}): got {} …, want {} …",
                    truncate(&lines[*i]),
                    truncate(resp),
                    truncate(&expected[*i])
                ));
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    report.latency_ms = LatencySummary {
        p50: percentile(&latencies, 50.0),
        p95: percentile(&latencies, 95.0),
        p99: percentile(&latencies, 99.0),
        mean: latencies.iter().sum::<f64>() / latencies.len().max(1) as f64,
        max: latencies.last().copied().unwrap_or(0.0),
    };
    report.throughput_rps = if elapsed > 0.0 { cfg.requests as f64 / elapsed } else { 0.0 };
    report.cache_hits = hits1.saturating_sub(hits0);
    report.cache_misses = misses1.saturating_sub(misses0);
    let lookups = report.cache_hits + report.cache_misses;
    report.hit_rate = if lookups == 0 { 0.0 } else { report.cache_hits as f64 / lookups as f64 };

    // Conservation, checked on the quiesced final snapshot: every request
    // the server ever accepted must sit in exactly one terminal counter.
    report.server.requests = stat(&after_stats, "requests")?;
    report.server.accounted = ["ok", "errors", "timeouts", "overloaded", "too_large", "inline"]
        .iter()
        .map(|k| stat(&after_stats, k))
        .sum::<Result<u64, _>>()?;
    if report.server.requests != report.server.accounted {
        return Err(format!(
            "conservation violated at quiescence: requests={} but \
             ok+errors+timeouts+overloaded+too_large+inline={}",
            report.server.requests, report.server.accounted
        ));
    }

    // Server-side percentiles over exactly this run's interval: the diff
    // of two histogram snapshots, which is exact bucket-wise.
    let delta = after_hist.diff(&before_hist);
    report.server.samples = delta.count;
    if delta.count != cfg.requests as u64 {
        return Err(format!(
            "server recorded {} alloc latencies for {} issued requests",
            delta.count, cfg.requests
        ));
    }
    report.server.latency_ms = LatencySummary {
        p50: delta.quantile(0.50) as f64 / 1e6,
        p95: delta.quantile(0.95) as f64 / 1e6,
        p99: delta.quantile(0.99) as f64 / 1e6,
        mean: delta.mean() / 1e6,
        max: if delta.is_empty() { 0.0 } else { delta.max as f64 / 1e6 },
    };
    report.server.agreement_p50 =
        within_tolerance(report.server.latency_ms.p50, report.latency_ms.p50);
    report.server.agreement_p95 =
        within_tolerance(report.server.latency_ms.p95, report.latency_ms.p95);
    report.server.agreement_p99 =
        within_tolerance(report.server.latency_ms.p99, report.latency_ms.p99);
    report.server.agreement_ok =
        report.server.agreement_p50 && report.server.agreement_p95 && report.server.agreement_p99;

    report.json = render_bench_json(cfg, &report);
    lsra_trace::json::validate(&report.json)
        .map_err(|e| format!("BENCH_serve.json failed validation: {e}"))?;
    if let Some(path) = &cfg.out_path {
        std::fs::write(path, format!("{}\n", report.json))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_in_process_run_verifies_and_hits_cache() {
        let cfg = LoadgenConfig {
            workloads: vec!["wc".to_string()],
            requests: 12,
            concurrency: 3,
            dup_percent: 60,
            serve: ServeConfig { workers: 2, ..ServeConfig::default() },
            out_path: None,
            ..LoadgenConfig::default()
        };
        let r = run_loadgen(&cfg).unwrap();
        assert_eq!(r.requests, 12);
        assert_eq!(r.mismatches, 0, "{:?}", r.first_mismatch);
        assert_eq!(r.ok, 12);
        assert!(r.cache_hits > 0, "dup-heavy mix must hit: {r:?}");
        // run_loadgen errors out on conservation violations, so a
        // returned report implies the books balanced; the cross-check
        // numbers must be populated and self-consistent.
        assert_eq!(r.server.requests, r.server.accounted);
        assert_eq!(r.server.samples, 12, "one lsra_request sample per issued request");
        assert!(r.server.agreement_ok, "server/client latency disagree: {:?}", r.server);
        assert!(r.json.contains("\"server_latency_ms\""), "{}", r.json);
        assert!(r.json.contains("\"conservation\""), "{}", r.json);
        lsra_trace::json::validate(&r.json).unwrap();
    }

    #[test]
    fn unique_programs_differ_and_parse() {
        let w = lsra_workloads::by_name("wc").unwrap();
        let spec = MachineSpec::alpha_like();
        let a = unique_program(&w, &spec, 1);
        let b = unique_program(&w, &spec, 2);
        assert_ne!(a, b);
        lsra_ir::parse_module(&a).unwrap();
    }

    #[test]
    fn percentiles_pick_sane_indices() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 50.0), 6.0);
        assert_eq!(percentile(&xs, 99.0), 10.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}

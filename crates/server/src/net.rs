//! Transport: the service over stdio or TCP.
//!
//! Both transports speak the same line protocol and share one
//! [`Service`], so TCP clients on different connections share the worker
//! pool, the bounded queue, and the result cache. Responses on a single
//! connection are written in request order (the handler calls
//! [`Service::call`] synchronously); cross-connection parallelism comes
//! from the worker pool.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use crate::service::Service;

/// Serves one line-oriented connection: every request line gets exactly one
/// response line, malformed input included. Returns at EOF or once the
/// service enters shutdown (graceful drain: the response to the request
/// that triggered shutdown is still written).
///
/// # Errors
///
/// Propagates I/O errors from the transport (not protocol errors, which
/// become structured responses).
pub fn serve_lines<R: BufRead, W: Write>(
    service: &Service,
    reader: R,
    writer: &mut W,
) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, span) = service.call_span(&line);
        let write_start = Instant::now();
        let written = writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        // The span is completed (and logged) even when the write failed —
        // a span stream that silently drops broken-pipe requests would
        // undercount exactly the requests worth investigating.
        let write_ns = write_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        service.finish_span(span, write_ns);
        written?;
        if service.is_shutting_down() {
            break;
        }
    }
    Ok(())
}

/// Serves stdin→stdout until EOF (the stdio transport of `lsra serve
/// --stdio`). EOF is the graceful-drain signal: queued requests were all
/// answered synchronously, so returning is the drain.
///
/// # Errors
///
/// Propagates stdout write failures.
pub fn serve_stdio(service: &Service) -> io::Result<()> {
    let stdin = io::stdin();
    let mut stdout = io::stdout().lock();
    serve_lines(service, stdin.lock(), &mut stdout)
}

/// Accepts connections on `listener` until a `{"op": "shutdown"}` request
/// arrives on any of them, handling each connection on its own thread.
///
/// # Errors
///
/// Propagates accept failures; per-connection I/O errors only end that
/// connection.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    for stream in listener.incoming() {
        if service.is_shutting_down() {
            break;
        }
        let stream = stream?;
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let mut writer = stream;
            let _ = serve_lines(&service, reader, &mut writer);
            if service.is_shutting_down() {
                // Unblock the accept loop so it observes the shutdown.
                let _ = TcpStream::connect(addr);
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    #[test]
    fn stdio_style_stream_answers_every_line() {
        let service = Service::start(ServeConfig { workers: 1, ..ServeConfig::default() });
        let input = concat!(
            "{\"id\": \"1\", \"workload\": \"wc\"}\n",
            "this is not json\n",
            "\n", // blank lines are skipped, not answered
            "{\"id\": \"2\", \"workload\": \"wc\"}\n",
        );
        let mut out = Vec::new();
        serve_lines(&service, input.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        for l in &lines {
            lsra_trace::json::validate(l).unwrap_or_else(|e| panic!("{l}: {e}"));
        }
        assert!(lines[1].contains("\"status\": \"error\""), "{}", lines[1]);
        assert!(lines[2].contains("\"status\": \"ok\""), "malformed line must not end serving");
    }
}

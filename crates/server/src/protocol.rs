//! The allocation service's line protocol: request parsing, request
//! execution, and byte-deterministic response rendering.
//!
//! One request per line, one response per line, both JSON objects. A
//! request names a program (inline `.lsra` text via `"program"`, or a
//! built-in workload via `"workload"`), an allocator, a machine, and
//! options; the response carries a `"status"` plus the allocation
//! statistics, optional dynamic counts, and optionally the allocated
//! module text. Responses contain no wall-clock or cache-state fields, so
//! the same request always yields the same bytes — whether computed or
//! served from cache — which is what lets the load generator and the fuzz
//! service stage compare them byte-for-byte against a direct
//! `allocate_module` run.
//!
//! ## Request
//!
//! ```json
//! {"id": "r1", "workload": "wc", "allocator": "binpack", "machine": "small:4,2",
//!  "cleanup": false, "run": true, "emit_module": true, "timeout_ms": 5000}
//! ```
//!
//! * `id` — echoed back verbatim (default `""`);
//! * `op` — `"alloc"` (default), `"lint"` (static diagnostics for the
//!   program), `"stats"` (server counters), `"metrics"` (full telemetry
//!   exposition), or `"shutdown"` (graceful drain);
//! * exactly one of `program` (inline `.lsra` text) or `workload` (a
//!   built-in benchmark name) for `alloc` and `lint`;
//! * `allocator` — `binpack` (default), `two-pass`, `coloring`, `poletto`,
//!   `ion`;
//! * `machine` — `alpha` (default) or `small:I,F`;
//! * `cleanup` — run identity-move removal and the spill-code post-pass on
//!   the result (default `false`: the response reflects the raw
//!   `allocate_module` output);
//! * `run` — execute the allocated module in the VM and report dynamic
//!   counts (workload requests use the workload's input, inline programs
//!   run with empty input);
//! * `emit_module` — include the allocated module text in the response;
//! * `timeout_ms` — per-request deadline override;
//! * `inject_panic` / `inject_sleep_ms` — fault-injection knobs for
//!   testing panic isolation and deadline/backpressure behaviour.
//!
//! Unknown fields are rejected, so typos fail loudly instead of silently
//! selecting defaults.
//!
//! ## Response
//!
//! ```json
//! {"id": "r1", "status": "ok", "stats": {"candidates": 12, "...": 0}, "module": "..."}
//! {"id": "r2", "status": "error", "error": "program:3: expected opcode"}
//! {"id": "r3", "status": "timeout"}
//! {"id": "r4", "status": "overloaded"}
//! {"id": "r5", "status": "too_large"}
//! ```
//!
//! A `lint` response carries per-severity counts and every diagnostic (the
//! Family A input lints, plus — when the input has no errors — the Family B
//! quality lints over the requested allocator's output before identity-move
//! removal). Like every other response it has no wall-clock fields: the
//! same request always yields the same bytes.
//!
//! ```json
//! {"id": "r6", "status": "ok", "op": "lint", "errors": 1, "warnings": 0, "notes": 0,
//!  "diagnostics": [{"code": "L001", "line": 4, "...": "..."}]}
//! ```
//!
//! ## The `stats` response
//!
//! A `stats` response carries exactly the fields of [`STATS_FIELDS`], in
//! that order (the field set is pinned by a test in
//! `tests/serve_subsystem.rs`, so it cannot drift silently):
//!
//! * `id`, `status`, `op` — the response envelope (`status` is always
//!   `ok`, `op` is `stats`);
//! * `requests` — request lines received, including rejected ones;
//! * `ok` — successful `alloc` and `lint` responses;
//! * `errors` — structured error responses: parse/validation failures,
//!   run faults, confined panics, and requests refused during shutdown;
//! * `timeouts` — requests answered `timeout` (deadline passed);
//! * `overloaded` — requests answered `overloaded` (queue full);
//! * `too_large` — requests answered `too_large` (over
//!   `--max-request-bytes`, rejected before parsing);
//! * `inline` — `stats`/`metrics`/`shutdown` responses: requests that
//!   terminate inline without being allocations (the request being
//!   answered counts itself, so the books balance at quiescence);
//! * `panics` — worker panics confined by `catch_unwind`; supplementary
//!   (each panic also produced one `errors` response);
//! * `in_flight` — gauge: jobs a worker has dequeued and not yet answered;
//! * `queue_depth` — gauge: jobs waiting in the bounded queue right now;
//! * `cache_hits` / `cache_misses` — cache lookups answered from the
//!   cache / that computed instead;
//! * `cache_entries` / `cache_bytes` — gauge: current cache occupancy.
//!
//! The six terminal counters conserve: at quiescence (`in_flight == 0`
//! and `queue_depth == 0`), `requests == ok + errors + timeouts +
//! overloaded + too_large + inline`.
//!
//! ## The `metrics` response
//!
//! `{"op": "metrics"}` returns the full telemetry registry twice over: a
//! `prometheus` field holding the text exposition format, and a `json`
//! field holding the structured form — exact integer-nanosecond histogram
//! stats plus each histogram's sparse `[bucket, count]` list, which a
//! client can rebuild, diff against an earlier poll, and reduce to
//! percentiles over exactly its own interval (see `lsra_telemetry`).

use lsra_core::{AllocScratch, AllocTimings, BinpackAllocator, BinpackConfig, RegisterAllocator};
use lsra_ir::{MachineSpec, Module};
use lsra_trace::json::JsonWriter;
use lsra_vm::{Vm, VmOptions};

use crate::cache::Outcome;
use crate::json_in::{self, JsonValue};

/// Allocator names the service accepts, in CLI order.
pub const ALLOCATOR_NAMES: [&str; 5] = ["binpack", "two-pass", "coloring", "poletto", "ion"];

/// Every field of a `stats` response, in render order. Documented
/// field-by-field in the module docs ("The `stats` response"); the exact
/// set is asserted by `tests/serve_subsystem.rs`, so adding a counter
/// without documenting it here fails the build's test tier.
pub const STATS_FIELDS: [&str; 17] = [
    "id",
    "status",
    "op",
    "requests",
    "ok",
    "errors",
    "timeouts",
    "overloaded",
    "too_large",
    "inline",
    "panics",
    "in_flight",
    "queue_depth",
    "cache_hits",
    "cache_misses",
    "cache_entries",
    "cache_bytes",
];

/// Where a request's program comes from.
#[derive(Clone, Debug)]
pub enum Source {
    /// Inline `.lsra` module text.
    Program(String),
    /// A built-in workload name (see `lsra workloads`).
    Workload(String),
}

/// One parsed allocation request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client correlation id, echoed into the response.
    pub id: String,
    /// The program to allocate.
    pub source: Source,
    /// Allocator name (one of [`ALLOCATOR_NAMES`]).
    pub allocator: String,
    /// Target machine.
    pub machine: MachineSpec,
    /// Run identity-move removal plus the spill post-pass on the result.
    pub cleanup: bool,
    /// Execute the allocated module and report [`lsra_vm::DynCounts`].
    pub run: bool,
    /// Include the allocated module text in the response.
    pub emit_module: bool,
    /// Per-request deadline override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Fault injection: panic inside the worker (tests panic isolation).
    pub inject_panic: bool,
    /// Fault injection: sleep this long before allocating (tests deadlines
    /// and backpressure).
    pub inject_sleep_ms: u64,
}

/// One parsed protocol line.
#[derive(Clone, Debug)]
pub enum ParsedLine {
    /// An allocation request.
    Alloc(Box<Request>),
    /// A static-diagnostics request (same shape as `alloc`; the
    /// result-shaping flags are ignored).
    Lint(Box<Request>),
    /// A server-counters query.
    Stats {
        /// Echoed correlation id.
        id: String,
    },
    /// A full telemetry-exposition query (Prometheus text + structured
    /// JSON in one response).
    Metrics {
        /// Echoed correlation id.
        id: String,
    },
    /// A graceful-drain request.
    Shutdown {
        /// Echoed correlation id.
        id: String,
    },
}

/// Parses one request line.
///
/// # Errors
///
/// Returns `(id, message)` — the id is whatever could be recovered from the
/// malformed request (possibly empty), so the error response still
/// correlates when the envelope itself was readable.
pub fn parse_request(line: &str) -> Result<ParsedLine, (String, String)> {
    let v = json_in::parse(line).map_err(|e| (String::new(), format!("parse: {e}")))?;
    let JsonValue::Object(fields) = &v else {
        return Err((
            String::new(),
            format!("request must be a JSON object, got {}", v.type_name()),
        ));
    };
    let id = v.get("id").and_then(JsonValue::as_str).unwrap_or("").to_string();
    let fail = |msg: String| (id.clone(), msg);

    let mut op = "alloc";
    let mut program: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut allocator = "binpack".to_string();
    let mut machine = "alpha".to_string();
    let mut cleanup = false;
    let mut run = false;
    let mut emit_module = false;
    let mut timeout_ms = None;
    let mut inject_panic = false;
    let mut inject_sleep_ms = 0;

    let str_field = |key: &str, val: &JsonValue| -> Result<String, (String, String)> {
        val.as_str()
            .map(str::to_string)
            .ok_or_else(|| fail(format!("field `{key}` must be a string, got {}", val.type_name())))
    };
    let bool_field = |key: &str, val: &JsonValue| -> Result<bool, (String, String)> {
        val.as_bool().ok_or_else(|| {
            fail(format!("field `{key}` must be a boolean, got {}", val.type_name()))
        })
    };
    let uint_field = |key: &str, val: &JsonValue| -> Result<u64, (String, String)> {
        val.as_u64().ok_or_else(|| {
            fail(format!("field `{key}` must be a non-negative integer, got {}", val.type_name()))
        })
    };

    let mut seen: Vec<&str> = Vec::new();
    for (key, val) in fields {
        if seen.contains(&key.as_str()) {
            return Err(fail(format!("duplicate field `{key}`")));
        }
        match key.as_str() {
            "id" => {
                str_field("id", val)?;
            }
            "op" => {
                let o = str_field("op", val)?;
                op = match o.as_str() {
                    "alloc" => "alloc",
                    "lint" => "lint",
                    "stats" => "stats",
                    "metrics" => "metrics",
                    "shutdown" => "shutdown",
                    other => {
                        return Err(fail(format!(
                            "unknown op `{other}` (alloc | lint | stats | metrics | shutdown)"
                        )))
                    }
                };
            }
            "program" => program = Some(str_field("program", val)?),
            "workload" => workload = Some(str_field("workload", val)?),
            "allocator" => allocator = str_field("allocator", val)?,
            "machine" => machine = str_field("machine", val)?,
            "cleanup" => cleanup = bool_field("cleanup", val)?,
            "run" => run = bool_field("run", val)?,
            "emit_module" => emit_module = bool_field("emit_module", val)?,
            "timeout_ms" => timeout_ms = Some(uint_field("timeout_ms", val)?),
            "inject_panic" => inject_panic = bool_field("inject_panic", val)?,
            "inject_sleep_ms" => inject_sleep_ms = uint_field("inject_sleep_ms", val)?,
            other => return Err(fail(format!("unknown field `{other}`"))),
        }
        seen.push(key.as_str());
    }

    match op {
        "stats" => return Ok(ParsedLine::Stats { id }),
        "metrics" => return Ok(ParsedLine::Metrics { id }),
        "shutdown" => return Ok(ParsedLine::Shutdown { id }),
        _ => {}
    }

    let source = match (program, workload) {
        (Some(p), None) => Source::Program(p),
        (None, Some(w)) => {
            if lsra_workloads::by_name(&w).is_none() {
                return Err(fail(format!("unknown workload `{w}` (see `lsra workloads`)")));
            }
            Source::Workload(w)
        }
        (Some(_), Some(_)) => {
            return Err(fail("`program` and `workload` are mutually exclusive".to_string()))
        }
        (None, None) => {
            return Err(fail("request needs `program` or `workload`".to_string()));
        }
    };
    if !ALLOCATOR_NAMES.contains(&allocator.as_str()) {
        return Err(fail(format!(
            "unknown allocator `{allocator}` ({})",
            ALLOCATOR_NAMES.join(" | ")
        )));
    }
    let machine = MachineSpec::parse(&machine).map_err(|e| fail(format!("machine: {e}")))?;
    let req = Box::new(Request {
        id,
        source,
        allocator,
        machine,
        cleanup,
        run,
        emit_module,
        timeout_ms,
        inject_panic,
        inject_sleep_ms,
    });
    Ok(if op == "lint" { ParsedLine::Lint(req) } else { ParsedLine::Alloc(req) })
}

/// Builds the request's module, its VM input, and the canonical program
/// text (the display form of the parsed module — the cache key's program
/// component, so formatting differences never split cache entries).
///
/// # Errors
///
/// Returns a message for unparseable or invalid inline programs and
/// unknown workloads.
pub fn materialize(req: &Request) -> Result<(Module, Vec<u8>, String), String> {
    match &req.source {
        Source::Program(text) => {
            let m = lsra_ir::parse_module(text).map_err(|e| format!("program:{e}"))?;
            m.validate().map_err(|e| format!("program: {e}"))?;
            let canonical = format!("{m}");
            Ok((m, Vec::new(), canonical))
        }
        Source::Workload(name) => {
            let w = lsra_workloads::by_name(name)
                .ok_or_else(|| format!("unknown workload `{name}`"))?;
            let m = (w.build)();
            let canonical = format!("{m}");
            Ok((m, (w.input)(), canonical))
        }
    }
}

/// The full cache-key string for `req` given its canonical program text:
/// every input that shapes the cached [`Outcome`] — program, allocator,
/// machine, and the result-shaping options (`emit_module` is *not* part of
/// the key; the module text is always cached and dropped at render time).
pub fn cache_key(req: &Request, canonical: &str) -> String {
    format!(
        "{canonical}\u{0}{}\u{0}{}\u{0}cleanup={},run={}",
        req.allocator,
        req.machine.name(),
        req.cleanup as u8,
        req.run as u8
    )
}

/// Allocates `m` as `req` asks, reusing `scratch` for the binpack family.
///
/// The binpack family runs with per-phase timing enabled; the measured
/// [`AllocTimings`] are returned *alongside* the outcome, never inside it —
/// `without_wall_clock` strips them from the cached [`Outcome`] so response
/// bytes stay deterministic whether or not telemetry consumes the timings.
///
/// # Errors
///
/// Returns a message when the requested VM run faults.
pub fn run_allocation(
    mut m: Module,
    input: &[u8],
    req: &Request,
    scratch: &mut AllocScratch,
) -> Result<(Outcome, Option<AllocTimings>), String> {
    let spec = &req.machine;
    let stats = match req.allocator.as_str() {
        "binpack" => BinpackAllocator::new(BinpackConfig {
            workers: 1,
            time_phases: true,
            ..Default::default()
        })
        .allocate_module_reusing(&mut m, spec, scratch),
        "two-pass" => BinpackAllocator::new(BinpackConfig {
            workers: 1,
            time_phases: true,
            ..BinpackConfig::two_pass()
        })
        .allocate_module_reusing(&mut m, spec, scratch),
        "coloring" => lsra_coloring::ColoringAllocator.allocate_module(&mut m, spec),
        "poletto" => lsra_poletto::PolettoAllocator.allocate_module(&mut m, spec),
        "ion" => lsra_ion::IonAllocator.allocate_module(&mut m, spec),
        other => return Err(format!("unknown allocator `{other}`")),
    };
    if req.cleanup {
        for id in m.func_ids().collect::<Vec<_>>() {
            lsra_analysis::remove_identity_moves(m.func_mut(id));
            lsra_core::optimize_spill_code(m.func_mut(id), spec);
            lsra_analysis::remove_identity_moves(m.func_mut(id));
        }
    }
    let dyn_counts = if req.run {
        let r = Vm::new(&m, spec, input, VmOptions::default())
            .run()
            .map_err(|e| format!("run faulted: {e}"))?;
        Some(r.counts)
    } else {
        None
    };
    let timings = stats.timings;
    let outcome =
        Outcome { stats: stats.without_wall_clock(), dyn_counts, module_text: format!("{m}") };
    Ok((outcome, timings))
}

/// Renders a successful response. Deterministic: two renders of the same
/// outcome and id are byte-identical, and carry no wall-clock or
/// cache-state fields.
pub fn render_ok(id: &str, outcome: &Outcome, emit_module: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("id", id);
    w.field_str("status", "ok");
    w.key("stats");
    w.begin_object();
    w.field_uint("candidates", outcome.stats.candidates as u64);
    w.field_uint("spilled_temps", outcome.stats.spilled_temps as u64);
    w.field_uint("inserted", outcome.stats.inserted_total());
    w.field_uint("evictions", outcome.stats.evictions);
    w.field_uint("moves_coalesced", outcome.stats.moves_coalesced);
    w.field_uint("lifetime_splits", outcome.stats.lifetime_splits);
    w.field_uint("stores_suppressed", outcome.stats.stores_suppressed);
    w.field_uint("iterations", outcome.stats.iterations as u64);
    w.end_object();
    if let Some(d) = &outcome.dyn_counts {
        w.key("dyn");
        w.begin_object();
        w.field_uint("total", d.total);
        w.field_uint("spill", d.spill_total());
        w.field_uint("calls", d.calls);
        w.field_uint("memory_ops", d.memory_ops);
        w.field_uint("moves", d.moves);
        w.end_object();
    }
    if emit_module {
        w.field_str("module", &outcome.module_text);
    }
    w.end_object();
    w.finish()
}

/// Runs the `lint` op: the Family A input lints, then — when the input has
/// no errors and validates — the Family B quality lints over the requested
/// allocator's output *before* identity-move removal. Inline programs are
/// parsed with a source-line map so diagnostics carry the offending line.
///
/// # Errors
///
/// Returns a message for unparseable inline programs and unknown workloads
/// (diagnostics are not errors — a program that parses always lints).
pub fn run_lint(req: &Request) -> Result<String, String> {
    let (m, lines) = match &req.source {
        Source::Program(text) => {
            let (m, lines) =
                lsra_ir::parse_module_with_lines(text).map_err(|e| format!("program:{e}"))?;
            (m, Some(lines))
        }
        Source::Workload(name) => {
            let w = lsra_workloads::by_name(name)
                .ok_or_else(|| format!("unknown workload `{name}`"))?;
            ((w.build)(), None)
        }
    };
    let mut report = lsra_lint::lint_input(&m, lines.as_ref());
    // Quality lints need a sound allocation; `validate` additionally rules
    // out the module-level breakage (bad call targets, bad entry) that the
    // per-function lints don't model.
    if report.count_severity(lsra_lint::Severity::Error) == 0 && m.validate().is_ok() {
        let mut allocated = m;
        let spec = &req.machine;
        match req.allocator.as_str() {
            "binpack" => {
                BinpackAllocator::new(BinpackConfig { workers: 1, ..Default::default() })
                    .allocate_module(&mut allocated, spec);
            }
            "two-pass" => {
                BinpackAllocator::new(BinpackConfig { workers: 1, ..BinpackConfig::two_pass() })
                    .allocate_module(&mut allocated, spec);
            }
            "coloring" => {
                lsra_coloring::ColoringAllocator.allocate_module(&mut allocated, spec);
            }
            "poletto" => {
                lsra_poletto::PolettoAllocator.allocate_module(&mut allocated, spec);
            }
            "ion" => {
                lsra_ion::IonAllocator.allocate_module(&mut allocated, spec);
            }
            other => return Err(format!("unknown allocator `{other}`")),
        }
        report.merge(lsra_lint::lint_quality(&allocated, spec));
    }
    Ok(render_lint(&req.id, &report))
}

/// Renders a `lint` response: per-severity counts plus every diagnostic in
/// canonical order. Deterministic — no wall-clock fields.
pub fn render_lint(id: &str, report: &lsra_lint::LintReport) -> String {
    use lsra_lint::Severity;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("id", id);
    w.field_str("status", "ok");
    w.field_str("op", "lint");
    w.field_uint("errors", report.count_severity(Severity::Error) as u64);
    w.field_uint("warnings", report.count_severity(Severity::Warning) as u64);
    w.field_uint("notes", report.count_severity(Severity::Note) as u64);
    w.key("diagnostics");
    w.begin_array();
    for d in &report.diags {
        d.write_json(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Renders an error response.
pub fn render_error(id: &str, msg: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("id", id);
    w.field_str("status", "error");
    w.field_str("error", msg);
    w.end_object();
    w.finish()
}

/// Renders a bare status response (`timeout`, `overloaded`, `too_large`).
pub fn render_status(id: &str, status: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("id", id);
    w.field_str("status", status);
    w.end_object();
    w.finish()
}

/// The response the service *must* produce for `req`: a direct, cache-free,
/// queue-free execution with a fresh scratch arena. The load generator and
/// the fuzz service stage compare live responses byte-for-byte against
/// this.
pub fn expected_response_line(req: &Request) -> String {
    let direct = materialize(req)
        .and_then(|(m, input, _)| run_allocation(m, &input, req, &mut AllocScratch::default()));
    match direct {
        Ok((outcome, _)) => render_ok(&req.id, &outcome, req.emit_module),
        Err(msg) => render_error(&req.id, &msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let line = r#"{"id": "r1", "workload": "wc", "allocator": "poletto",
                       "machine": "small:4,2", "run": true, "emit_module": true}"#;
        let ParsedLine::Alloc(req) = parse_request(line).unwrap() else { panic!("not alloc") };
        assert_eq!(req.id, "r1");
        assert!(matches!(req.source, Source::Workload(ref w) if w == "wc"));
        assert_eq!(req.allocator, "poletto");
        assert_eq!(req.machine.name(), "small-4i2f");
        assert!(req.run && req.emit_module && !req.cleanup);
    }

    #[test]
    fn rejects_bad_requests_with_recovered_id() {
        for (line, what) in [
            (r#"{"id": "x", "workload": "nope"}"#, "unknown workload"),
            (r#"{"id": "x", "program": "m", "workload": "wc"}"#, "mutually exclusive"),
            (r#"{"id": "x"}"#, "needs `program` or `workload`"),
            (r#"{"id": "x", "workload": "wc", "allocator": "llvm"}"#, "unknown allocator"),
            (r#"{"id": "x", "workload": "wc", "machine": "small:1,0"}"#, "machine:"),
            (r#"{"id": "x", "workload": "wc", "frobnicate": 1}"#, "unknown field"),
            (r#"{"id": "x", "workload": "wc", "run": "yes"}"#, "must be a boolean"),
            (r#"{"id": "x", "id": "y", "workload": "wc"}"#, "duplicate field"),
        ] {
            let (id, msg) = parse_request(line).expect_err(line);
            assert_eq!(id, "x", "{line}");
            assert!(msg.contains(what), "{line}: {msg}");
        }
        let (id, msg) = parse_request("not json").expect_err("garbage");
        assert!(id.is_empty());
        assert!(msg.starts_with("parse:"), "{msg}");
    }

    #[test]
    fn cache_key_separates_what_it_must() {
        let base = match parse_request(r#"{"workload": "wc"}"#).unwrap() {
            ParsedLine::Alloc(r) => *r,
            _ => unreachable!(),
        };
        let canonical = "module m (0 words data)\n";
        let k0 = cache_key(&base, canonical);
        let mut other = base.clone();
        other.allocator = "poletto".to_string();
        assert_ne!(k0, cache_key(&other, canonical));
        let mut other = base.clone();
        other.machine = MachineSpec::small(4, 2);
        assert_ne!(k0, cache_key(&other, canonical));
        let mut other = base.clone();
        other.cleanup = true;
        assert_ne!(k0, cache_key(&other, canonical));
        let mut other = base.clone();
        other.run = true;
        assert_ne!(k0, cache_key(&other, canonical));
        // emit_module and id shape the response, not the outcome.
        let mut other = base.clone();
        other.emit_module = true;
        other.id = "different".to_string();
        assert_eq!(k0, cache_key(&other, canonical));
    }

    #[test]
    fn responses_are_valid_json_and_deterministic() {
        let ParsedLine::Alloc(req) =
            parse_request(r#"{"id": "d", "workload": "wc", "run": true, "emit_module": true}"#)
                .unwrap()
        else {
            panic!()
        };
        let a = expected_response_line(&req);
        let b = expected_response_line(&req);
        assert_eq!(a, b, "direct execution must be byte-deterministic");
        lsra_trace::json::validate(&a).unwrap();
        let v = json_in::parse(&a).unwrap();
        assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"));
        assert!(v.get("stats").is_some());
        assert!(v.get("dyn").unwrap().get("total").and_then(JsonValue::as_u64).unwrap() > 0);
        let module = v.get("module").and_then(JsonValue::as_str).unwrap();
        lsra_ir::parse_module(module).expect("emitted module text parses back");
    }

    #[test]
    fn lint_op_reports_the_offending_line() {
        // `t0` is read before any definition on file line 6.
        let program = "module m (0 words data)\nentry @0\nfunc @f() {\n  temps t0:i t1:i\nb0:\n  t1 = add t0, t0\n  ret\n}\n";
        let mut line = JsonWriter::new();
        line.begin_object();
        line.field_str("id", "l");
        line.field_str("op", "lint");
        line.field_str("program", program);
        line.end_object();
        let ParsedLine::Lint(req) = parse_request(&line.finish()).unwrap() else {
            panic!("not lint")
        };
        let a = run_lint(&req).unwrap();
        let b = run_lint(&req).unwrap();
        assert_eq!(a, b, "lint responses must be byte-deterministic");
        lsra_trace::json::validate(&a).unwrap();
        let v = json_in::parse(&a).unwrap();
        assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("lint"));
        assert_eq!(v.get("errors").and_then(JsonValue::as_u64), Some(1));
        assert!(a.contains(r#""code": "L001""#), "{a}");
        assert!(a.contains(r#""line": 6"#), "{a}");
    }

    #[test]
    fn lint_op_runs_quality_lints_on_clean_input() {
        let line = r#"{"id": "q", "op": "lint", "workload": "wc", "machine": "small:2,1"}"#;
        let ParsedLine::Lint(req) = parse_request(line).unwrap() else { panic!("not lint") };
        let resp = run_lint(&req).unwrap();
        let v = json_in::parse(&resp).unwrap();
        assert_eq!(v.get("errors").and_then(JsonValue::as_u64), Some(0), "{resp}");
        // Under this much register pressure the pre-postopt allocation
        // always carries at least an identity-move or spill note.
        assert!(v.get("notes").and_then(JsonValue::as_u64).unwrap() > 0, "{resp}");
    }

    #[test]
    fn lint_op_parse_errors_carry_the_line() {
        let program =
            "module m (0 words data)\nentry @0\nfunc @f() {\nb0:\n  t0 = frobnicate t1\n  ret\n}\n";
        let mut line = JsonWriter::new();
        line.begin_object();
        line.field_str("op", "lint");
        line.field_str("program", program);
        line.end_object();
        let ParsedLine::Lint(req) = parse_request(&line.finish()).unwrap() else {
            panic!("not lint")
        };
        let msg = run_lint(&req).unwrap_err();
        assert!(msg.starts_with("program:line 5:"), "{msg}");
    }

    #[test]
    fn inline_program_round_trips() {
        // An inline program: take a workload's display text and submit it.
        let w = lsra_workloads::by_name("wc").unwrap();
        let text = format!("{}", (w.build)());
        let mut line = JsonWriter::new();
        line.begin_object();
        line.field_str("id", "p");
        line.field_str("program", &text);
        line.field_str("machine", "small:6,4");
        line.end_object();
        let ParsedLine::Alloc(req) = parse_request(&line.finish()).unwrap() else { panic!() };
        let resp = expected_response_line(&req);
        let v = json_in::parse(&resp).unwrap();
        assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"), "{resp}");
    }
}

//! The allocation service: a bounded work queue feeding a worker pool,
//! fronted by the content-addressed result cache.
//!
//! One [`Service`] owns `workers` OS threads. [`Service::call`] is the
//! whole client API: hand it one request line, get one response line back.
//! It never blocks on a full queue (queue-full requests are answered
//! `"status":"overloaded"` immediately) and never waits past the request's
//! deadline (the caller gets `"status":"timeout"` and the queued job is
//! cancelled; a worker that already started it finishes and discards the
//! result, but still populates the cache so a retry hits). Worker panics
//! are confined to the failing request by `catch_unwind` — the worker
//! thread, its scratch arena, and every other request survive.
//!
//! Each worker owns one [`AllocScratch`] arena for its whole lifetime, so
//! steady-state serving does no per-request growth of the allocator's
//! working vectors (the server-shaped version of PR 1's per-module reuse).
//!
//! Every request is observed end to end: [`Service::call_span`] returns the
//! response *plus* a [`PendingSpan`] carrying the request's
//! accept → parse → queue → allocate → serialize timeline, which the
//! connection loop completes with the transport write time via
//! [`Service::finish_span`]. The same instrumentation feeds the
//! [`ServerTelemetry`] registry exposed by the `metrics` op; see
//! [`crate::telemetry`] for the metric inventory and the conservation
//! invariant relating the counters.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lsra_core::{AllocScratch, AllocTimings, PHASE_NAMES};
use lsra_telemetry::SpanRecord;
use lsra_trace::json::JsonWriter;

use crate::cache::Cache;
use crate::protocol::{self, ParsedLine, Request};
use crate::telemetry::{secs_to_ns, ServerTelemetry, SpanLog};

/// Service configuration; every knob has a `lsra serve` flag.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Bounded queue depth; requests beyond it are answered `overloaded`.
    pub max_queue: usize,
    /// Default per-request deadline, milliseconds (requests may override).
    pub default_timeout_ms: u64,
    /// Requests longer than this many bytes are answered `too_large`
    /// without being parsed.
    pub max_request_bytes: usize,
    /// Stream completed request spans as JSONL to this file.
    pub telemetry_log: Option<String>,
    /// Spans over this many milliseconds additionally capture an annotated
    /// decision trace (requires `telemetry_log`).
    pub slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            cache_bytes: 64 << 20,
            max_queue: 256,
            default_timeout_ms: 30_000,
            max_request_bytes: 4 << 20,
            telemetry_log: None,
            slow_ms: None,
        }
    }
}

impl ServeConfig {
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// A point-in-time copy of the service counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Request lines received (including rejected ones).
    pub requests: u64,
    /// Successful allocation responses.
    pub ok: u64,
    /// Structured error responses (parse, validation, run faults, panics).
    pub errors: u64,
    /// Requests answered `timeout`.
    pub timeouts: u64,
    /// Requests answered `overloaded`.
    pub overloaded: u64,
    /// Requests answered `too_large`.
    pub too_large: u64,
    /// `stats`/`metrics`/`shutdown` responses answered inline.
    pub inline: u64,
    /// Worker panics confined by `catch_unwind` (each also counts as one
    /// error response).
    pub panics: u64,
    /// Gauge: jobs a worker has dequeued and not yet answered. A job is
    /// in flight from the moment it leaves the queue, so `in_flight > 0`
    /// implies the queue had drained by that amount.
    pub in_flight: u64,
    /// Gauge: jobs waiting in the bounded queue right now.
    pub queue_depth: u64,
    /// Cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Cache lookups that computed.
    pub cache_misses: u64,
    /// Entries resident in the cache.
    pub cache_entries: u64,
    /// Bytes charged against the cache budget.
    pub cache_bytes: u64,
}

impl CountersSnapshot {
    /// Cache hit rate over all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Sum of the terminal response counters. Equals `requests` whenever
    /// the service is quiescent (`in_flight == 0 && queue_depth == 0`) —
    /// the conservation invariant [`crate::telemetry`] documents.
    pub fn accounted(&self) -> u64 {
        self.ok + self.errors + self.timeouts + self.overloaded + self.too_large + self.inline
    }
}

/// Worker-side timings for one executed job, delivered back to the caller
/// alongside the response so the span can carry them.
#[derive(Copy, Clone, Debug, Default)]
struct WorkerTiming {
    queue_ns: u64,
    alloc_ns: u64,
    serialize_ns: u64,
    cache: Option<bool>,
    phases: Option<AllocTimings>,
    ok: bool,
}

/// What `compute` measured alongside the response it produced.
struct ComputeOut {
    resp: String,
    cache_hit: bool,
    phases: Option<AllocTimings>,
    serialize_ns: u64,
}

/// A span awaiting its transport write time. Returned by
/// [`Service::call_span`]; hand it back via [`Service::finish_span`] once
/// the response is on the wire (or with `write_ns = 0` for in-process
/// callers). The request is retained only when the span log may need it
/// for slow-request trace capture.
pub struct PendingSpan {
    record: SpanRecord,
    req: Option<Box<Request>>,
}

impl PendingSpan {
    /// Read-only view of the span record accumulated so far.
    pub fn record(&self) -> &SpanRecord {
        &self.record
    }
}

enum JobState {
    Pending,
    Cancelled,
    Done((String, WorkerTiming)),
}

struct Job {
    req: Request,
    enqueued: Instant,
    state: Mutex<JobState>,
    done: Condvar,
}

struct Inner {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    cache: Mutex<Cache>,
    tel: ServerTelemetry,
    span_log: Option<SpanLog>,
    seq: AtomicU64,
    shutdown: AtomicBool,
}

/// Locks `m`, recovering from poisoning: the service's locks are never held
/// across request computation, so inner state behind a poisoned lock is
/// still consistent and one panicked worker must not wedge the server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whole nanoseconds of a duration (saturating far beyond any real span).
fn ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// A running allocation service. Dropping it drains the queue and joins
/// the workers.
pub struct Service {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service").field("cfg", &self.inner.cfg).finish()
    }
}

impl Service {
    /// Starts the worker pool. A telemetry log that cannot be created is
    /// reported on stderr and disabled — observability must not stop the
    /// server from serving.
    pub fn start(cfg: ServeConfig) -> Self {
        let workers = cfg.effective_workers().max(1);
        let span_log =
            cfg.telemetry_log.as_ref().and_then(|path| match SpanLog::create(path, cfg.slow_ms) {
                Ok(log) => Some(log),
                Err(e) => {
                    eprintln!("lsra serve: {e}; span logging disabled");
                    None
                }
            });
        let inner = Arc::new(Inner {
            cache: Mutex::new(Cache::new(cfg.cache_bytes)),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            tel: ServerTelemetry::new(),
            span_log,
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lsra-serve-{i}"))
                    .spawn(move || worker(&inner))
                    .expect("spawning service worker")
            })
            .collect();
        Service { inner, handles: Mutex::new(handles) }
    }

    /// True once a shutdown request was received (or [`Service::shutdown`]
    /// called); queued work still drains, new work is refused.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful drain: lets queued jobs finish, then joins every worker.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        let handles = std::mem::take(&mut *lock(&self.handles));
        for h in handles {
            let _ = h.join();
        }
    }

    /// The live telemetry registry (counters, gauges, histograms).
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.inner.tel
    }

    /// A snapshot of the service counters and cache occupancy.
    pub fn counters(&self) -> CountersSnapshot {
        let t = &self.inner.tel;
        let (entries, bytes) = {
            let cache = lock(&self.inner.cache);
            (cache.len() as u64, cache.bytes() as u64)
        };
        let queue_depth = lock(&self.inner.queue).len() as u64;
        CountersSnapshot {
            requests: t.requests.get(),
            ok: t.ok.get(),
            errors: t.errors.get(),
            timeouts: t.timeouts.get(),
            overloaded: t.overloaded.get(),
            too_large: t.too_large.get(),
            inline: t.inline.get(),
            panics: t.panics.get(),
            in_flight: t.in_flight.get().max(0) as u64,
            queue_depth,
            cache_hits: t.cache_hits.get(),
            cache_misses: t.cache_misses.get(),
            cache_entries: entries,
            cache_bytes: bytes,
        }
    }

    /// Handles one request line, returning one response line.
    ///
    /// Every outcome is a structured JSON response — malformed requests,
    /// oversized requests, full queues, deadlines, and worker panics
    /// included — so a client never kills the conversation by sending one
    /// bad line. Blocks until the response is ready or the request's
    /// deadline passes, never on a full queue.
    pub fn call(&self, line: &str) -> String {
        let (resp, span) = self.call_span(line);
        self.finish_span(span, 0);
        resp
    }

    /// [`Service::call`] with the request's span exposed: returns the
    /// response line plus a [`PendingSpan`] the connection loop completes
    /// (with the measured transport write time) via
    /// [`Service::finish_span`].
    pub fn call_span(&self, line: &str) -> (String, PendingSpan) {
        let start = Instant::now();
        let tel = &self.inner.tel;
        tel.requests.inc();
        let mut record = SpanRecord {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            ..Default::default()
        };
        if line.len() > self.inner.cfg.max_request_bytes {
            tel.too_large.inc();
            record.op = "invalid".to_string();
            let resp = protocol::render_status("", "too_large");
            return self.finish_call(resp, record, "too_large", start, None);
        }
        let parse_start = Instant::now();
        let parsed = protocol::parse_request(line);
        record.parse_ns = ns(parse_start.elapsed());
        tel.parse_ns.record(record.parse_ns);
        let req = match parsed {
            Ok(ParsedLine::Stats { id }) => {
                tel.inline.inc();
                record.id = id.clone();
                record.op = "stats".to_string();
                let resp = self.stats_response(&id);
                return self.finish_call(resp, record, "ok", start, None);
            }
            Ok(ParsedLine::Metrics { id }) => {
                tel.inline.inc();
                record.id = id.clone();
                record.op = "metrics".to_string();
                let resp = self.metrics_response(&id);
                return self.finish_call(resp, record, "ok", start, None);
            }
            Ok(ParsedLine::Shutdown { id }) => {
                tel.inline.inc();
                record.id = id.clone();
                record.op = "shutdown".to_string();
                self.inner.shutdown.store(true, Ordering::SeqCst);
                self.inner.queue_cv.notify_all();
                let mut w = JsonWriter::new();
                w.begin_object();
                w.field_str("id", &id);
                w.field_str("status", "ok");
                w.field_str("op", "shutdown");
                w.end_object();
                return self.finish_call(w.finish(), record, "ok", start, None);
            }
            Ok(ParsedLine::Alloc(req)) => req,
            Ok(ParsedLine::Lint(req)) => {
                // Lint is cheap and cacheless; answer inline (like stats)
                // with the same panic isolation the workers give alloc.
                record.id = req.id.clone();
                record.op = "lint".to_string();
                if self.is_shutting_down() {
                    tel.errors.inc();
                    let resp = protocol::render_error(&req.id, "server is shutting down");
                    return self.finish_call(resp, record, "error", start, None);
                }
                let result = catch_unwind(AssertUnwindSafe(|| protocol::run_lint(&req)));
                let (resp, is_ok) = match result {
                    Ok(Ok(resp)) => (resp, true),
                    Ok(Err(msg)) => (protocol::render_error(&req.id, &msg), false),
                    Err(p) => {
                        tel.panics.inc();
                        let msg = format!("panic: {}", panic_message(p));
                        (protocol::render_error(&req.id, &msg), false)
                    }
                };
                if is_ok {
                    tel.ok.inc();
                } else {
                    tel.errors.inc();
                }
                let status = if is_ok { "ok" } else { "error" };
                return self.finish_call(resp, record, status, start, None);
            }
            Err((id, msg)) => {
                tel.errors.inc();
                record.id = id.clone();
                record.op = "invalid".to_string();
                let resp = protocol::render_error(&id, &msg);
                return self.finish_call(resp, record, "error", start, None);
            }
        };
        record.id = req.id.clone();
        record.op = "alloc".to_string();
        if self.is_shutting_down() {
            tel.errors.inc();
            let resp = protocol::render_error(&req.id, "server is shutting down");
            return self.finish_call(resp, record, "error", start, None);
        }
        // The request is cloned only when a slow-span trace might need to
        // re-run it; the common path moves it into the job.
        let captured = if self.inner.span_log.as_ref().is_some_and(SpanLog::captures_slow) {
            Some(req.clone())
        } else {
            None
        };
        let timeout = req.timeout_ms.unwrap_or(self.inner.cfg.default_timeout_ms);
        let deadline = Instant::now() + Duration::from_millis(timeout);
        let job = Arc::new(Job {
            req: *req,
            enqueued: Instant::now(),
            state: Mutex::new(JobState::Pending),
            done: Condvar::new(),
        });
        {
            let mut q = lock(&self.inner.queue);
            if q.len() >= self.inner.cfg.max_queue {
                tel.overloaded.inc();
                let resp = protocol::render_status(&job.req.id, "overloaded");
                return self.finish_call(resp, record, "overloaded", start, captured);
            }
            q.push_back(Arc::clone(&job));
        }
        self.inner.queue_cv.notify_one();
        let mut st = lock(&job.state);
        loop {
            if let JobState::Done((resp, wt)) = &*st {
                let resp = resp.clone();
                record.queue_ns = wt.queue_ns;
                record.alloc_ns = wt.alloc_ns;
                record.serialize_ns = wt.serialize_ns;
                record.cache = wt.cache;
                if let Some(t) = wt.phases {
                    record.phases = PHASE_NAMES
                        .iter()
                        .zip(t.seconds)
                        .map(|(name, secs)| (*name, secs_to_ns(secs)))
                        .collect();
                }
                let status = if wt.ok { "ok" } else { "error" };
                drop(st);
                return self.finish_call(resp, record, status, start, captured);
            }
            let now = Instant::now();
            if now >= deadline {
                *st = JobState::Cancelled;
                tel.timeouts.inc();
                let resp = protocol::render_status(&job.req.id, "timeout");
                drop(st);
                return self.finish_call(resp, record, "timeout", start, captured);
            }
            let (guard, _) =
                job.done.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Completes a span: records the transport write time and streams the
    /// span to the telemetry log, if one is configured.
    pub fn finish_span(&self, pending: PendingSpan, write_ns: u64) {
        let PendingSpan { mut record, req } = pending;
        record.write_ns = write_ns;
        if write_ns > 0 {
            self.inner.tel.write_ns.record(write_ns);
        }
        if let Some(log) = &self.inner.span_log {
            log.write(record, req.as_deref());
        }
    }

    /// Seals a span record (status, total, latency histogram) and pairs it
    /// with the response.
    fn finish_call(
        &self,
        resp: String,
        mut record: SpanRecord,
        status: &str,
        start: Instant,
        req: Option<Box<Request>>,
    ) -> (String, PendingSpan) {
        record.status = status.to_string();
        record.total_ns = ns(start.elapsed());
        // Alloc latency and everything else live in separate histograms so
        // monitoring polls (stats/metrics) never skew the serving numbers.
        if record.op == "alloc" {
            self.inner.tel.request_ns.record(record.total_ns);
        } else {
            self.inner.tel.inline_ns.record(record.total_ns);
        }
        (resp, PendingSpan { record, req })
    }

    fn stats_response(&self, id: &str) -> String {
        let s = self.counters();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("id", id);
        w.field_str("status", "ok");
        w.field_str("op", "stats");
        w.field_uint("requests", s.requests);
        w.field_uint("ok", s.ok);
        w.field_uint("errors", s.errors);
        w.field_uint("timeouts", s.timeouts);
        w.field_uint("overloaded", s.overloaded);
        w.field_uint("too_large", s.too_large);
        w.field_uint("inline", s.inline);
        w.field_uint("panics", s.panics);
        w.field_uint("in_flight", s.in_flight);
        w.field_uint("queue_depth", s.queue_depth);
        w.field_uint("cache_hits", s.cache_hits);
        w.field_uint("cache_misses", s.cache_misses);
        w.field_uint("cache_entries", s.cache_entries);
        w.field_uint("cache_bytes", s.cache_bytes);
        w.end_object();
        w.finish()
    }

    /// Renders the `metrics` response: the full registry in both exposition
    /// formats. The lazily-maintained gauges are synced first so the
    /// exposition matches what `stats` would report.
    fn metrics_response(&self, id: &str) -> String {
        self.sync_gauges();
        let text = self.inner.tel.render_prometheus();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("id", id);
        w.field_str("status", "ok");
        w.field_str("op", "metrics");
        w.field_str("prometheus", &text);
        w.key("json");
        self.inner.tel.write_json(&mut w);
        w.end_object();
        w.finish()
    }

    /// Copies the queue/cache occupancy into their registry gauges.
    /// `in_flight` is maintained live by the workers and needs no sync.
    fn sync_gauges(&self) {
        let t = &self.inner.tel;
        t.queue_depth.set(lock(&self.inner.queue).len() as i64);
        let (entries, bytes) = {
            let cache = lock(&self.inner.cache);
            (cache.len() as i64, cache.bytes() as i64)
        };
        t.cache_entries.set(entries);
        t.cache_bytes.set(bytes);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker: dequeue, compute (through the cache), publish. Lives until
/// shutdown *and* an empty queue, so accepted work drains on shutdown.
fn worker(inner: &Inner) {
    let mut scratch = AllocScratch::default();
    loop {
        let (job, queue_ns) = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    // Counted while the queue lock is still held, so an
                    // observer never sees the job in neither place.
                    inner.tel.in_flight.inc();
                    let wait = ns(j.enqueued.elapsed());
                    break (j, wait);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = inner.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = if matches!(*lock(&job.state), JobState::Cancelled) {
            None
        } else {
            Some(handle(inner, &job.req, &mut scratch))
        };
        // Decremented before the response is published: once a caller has
        // its answer, the gauge no longer counts that job.
        inner.tel.in_flight.dec();
        if let Some((response, mut wt)) = result {
            wt.queue_ns = queue_ns;
            // Stage histograms describe work the server actually did, so
            // they are recorded even when the caller has timed out.
            inner.tel.queue_ns.record(wt.queue_ns);
            inner.tel.alloc_ns.record(wt.alloc_ns);
            inner.tel.serialize_ns.record(wt.serialize_ns);
            if let Some(t) = &wt.phases {
                inner.tel.record_phases(t);
            }
            let mut st = lock(&job.state);
            if !matches!(*st, JobState::Cancelled) {
                if wt.ok {
                    inner.tel.ok.inc();
                } else {
                    inner.tel.errors.inc();
                }
                *st = JobState::Done((response, wt));
                job.done.notify_all();
            }
        }
    }
}

/// Computes one response, isolating panics to this request. Returns the
/// response line and the worker-side timing breakdown (`queue_ns` is
/// filled in by the worker loop).
fn handle(inner: &Inner, req: &Request, scratch: &mut AllocScratch) -> (String, WorkerTiming) {
    let start = Instant::now();
    if req.inject_sleep_ms > 0 {
        std::thread::sleep(Duration::from_millis(req.inject_sleep_ms));
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if req.inject_panic {
            panic!("injected panic (inject_panic)");
        }
        compute(inner, req, scratch)
    }));
    match result {
        Ok(Ok(out)) => {
            let alloc_ns = ns(start.elapsed()).saturating_sub(out.serialize_ns);
            let wt = WorkerTiming {
                queue_ns: 0,
                alloc_ns,
                serialize_ns: out.serialize_ns,
                cache: Some(out.cache_hit),
                phases: out.phases,
                ok: true,
            };
            (out.resp, wt)
        }
        Ok(Err(msg)) => error_response(req, start, &msg),
        Err(p) => {
            inner.tel.panics.inc();
            error_response(req, start, &format!("panic: {}", panic_message(p)))
        }
    }
}

/// Renders an error response with its timing breakdown.
fn error_response(req: &Request, start: Instant, msg: &str) -> (String, WorkerTiming) {
    let render = Instant::now();
    let resp = protocol::render_error(&req.id, msg);
    let serialize_ns = ns(render.elapsed());
    let wt = WorkerTiming {
        queue_ns: 0,
        alloc_ns: ns(start.elapsed()).saturating_sub(serialize_ns),
        serialize_ns,
        cache: None,
        phases: None,
        ok: false,
    };
    (resp, wt)
}

/// The cache-fronted execution path. Locks are held only around the cache
/// probe and insert, never across allocation.
fn compute(inner: &Inner, req: &Request, scratch: &mut AllocScratch) -> Result<ComputeOut, String> {
    let (module, input, canonical) = match protocol::materialize(req) {
        Ok(x) => x,
        Err(e) => {
            lock(&inner.cache).note_miss();
            inner.tel.cache_misses.inc();
            return Err(e);
        }
    };
    let key = protocol::cache_key(req, &canonical);
    if let Some(outcome) = lock(&inner.cache).get(&key) {
        inner.tel.cache_hits.inc();
        let render = Instant::now();
        let resp = protocol::render_ok(&req.id, &outcome, req.emit_module);
        return Ok(ComputeOut {
            resp,
            cache_hit: true,
            phases: None,
            serialize_ns: ns(render.elapsed()),
        });
    }
    match protocol::run_allocation(module, &input, req, scratch) {
        Ok((outcome, timings)) => {
            let render = Instant::now();
            let resp = protocol::render_ok(&req.id, &outcome, req.emit_module);
            let serialize_ns = ns(render.elapsed());
            lock(&inner.cache).insert(key, outcome);
            inner.tel.cache_misses.inc();
            Ok(ComputeOut { resp, cache_hit: false, phases: timings, serialize_ns })
        }
        Err(e) => {
            lock(&inner.cache).note_miss();
            inner.tel.cache_misses.inc();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_service(workers: usize) -> Service {
        Service::start(ServeConfig {
            workers,
            cache_bytes: 1 << 20,
            max_queue: 8,
            default_timeout_ms: 10_000,
            max_request_bytes: 1 << 16,
            telemetry_log: None,
            slow_ms: None,
        })
    }

    #[test]
    fn serves_and_caches_a_workload_request() {
        let s = small_service(2);
        let line = r#"{"id": "a", "workload": "wc", "emit_module": true}"#;
        let first = s.call(line);
        let second = s.call(line);
        assert_eq!(first, second, "cache hit must be byte-identical");
        let snap = s.counters();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.ok, 2);
    }

    #[test]
    fn lint_op_is_answered_inline() {
        let s = small_service(1);
        let resp = s.call(r#"{"id": "l", "op": "lint", "workload": "wc"}"#);
        assert!(resp.contains("\"op\": \"lint\""), "{resp}");
        assert!(resp.contains("\"status\": \"ok\""), "{resp}");
        let snap = s.counters();
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.cache_misses, 0, "lint responses are not cached");
        let err = s.call(r#"{"id": "e", "op": "lint", "program": "not a module"}"#);
        assert!(err.contains("\"status\": \"error\""), "{err}");
        assert!(err.contains("program:"), "{err}");
    }

    #[test]
    fn stats_and_shutdown_ops() {
        let s = small_service(1);
        let stats = s.call(r#"{"id": "s", "op": "stats"}"#);
        assert!(stats.contains("\"op\": \"stats\""), "{stats}");
        let bye = s.call(r#"{"id": "q", "op": "shutdown"}"#);
        assert!(bye.contains("\"op\": \"shutdown\""), "{bye}");
        assert!(s.is_shutting_down());
        let refused = s.call(r#"{"id": "late", "workload": "wc"}"#);
        assert!(refused.contains("shutting down"), "{refused}");
        s.shutdown();
    }

    #[test]
    fn spans_and_conservation_over_mixed_ops() {
        let s = small_service(2);
        let (resp, span) = s.call_span(r#"{"id": "a1", "workload": "wc"}"#);
        assert!(resp.contains("\"status\": \"ok\""), "{resp}");
        let r = span.record();
        assert_eq!(r.op, "alloc");
        assert_eq!(r.cache, Some(false));
        assert!(!r.phases.is_empty(), "binpack cache miss must carry phase timings");
        assert!(r.total_ns > 0);
        s.finish_span(span, 123);
        let (_, span) = s.call_span(r#"{"id": "a1", "workload": "wc"}"#);
        assert_eq!(span.record().cache, Some(true), "second call is a cache hit");
        assert!(span.record().phases.is_empty(), "cache hits do not re-time phases");
        s.finish_span(span, 0);
        s.call(r#"{"id": "s", "op": "stats"}"#);
        s.call(r#"{"id": "m", "op": "metrics"}"#);
        s.call("not json at all");
        let snap = s.counters();
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(
            snap.requests,
            snap.accounted(),
            "conservation must hold at quiescence: {snap:?}"
        );
        assert_eq!(snap.inline, 2);
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn metrics_op_exposes_both_formats() {
        let s = small_service(1);
        s.call(r#"{"id": "a", "workload": "wc"}"#);
        let resp = s.call(r#"{"id": "m", "op": "metrics"}"#);
        assert!(resp.contains("\"op\": \"metrics\""), "{resp}");
        assert!(resp.contains("lsra_requests_total"), "{resp}");
        assert!(resp.contains("\"json\": "), "{resp}");
        lsra_trace::json::validate(&resp).unwrap();
    }
}

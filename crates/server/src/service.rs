//! The allocation service: a bounded work queue feeding a worker pool,
//! fronted by the content-addressed result cache.
//!
//! One [`Service`] owns `workers` OS threads. [`Service::call`] is the
//! whole client API: hand it one request line, get one response line back.
//! It never blocks on a full queue (queue-full requests are answered
//! `"status":"overloaded"` immediately) and never waits past the request's
//! deadline (the caller gets `"status":"timeout"` and the queued job is
//! cancelled; a worker that already started it finishes and discards the
//! result, but still populates the cache so a retry hits). Worker panics
//! are confined to the failing request by `catch_unwind` — the worker
//! thread, its scratch arena, and every other request survive.
//!
//! Each worker owns one [`AllocScratch`] arena for its whole lifetime, so
//! steady-state serving does no per-request growth of the allocator's
//! working vectors (the server-shaped version of PR 1's per-module reuse).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lsra_core::AllocScratch;
use lsra_trace::json::JsonWriter;

use crate::cache::Cache;
use crate::protocol::{self, ParsedLine, Request};

/// Service configuration; every knob has a `lsra serve` flag.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Bounded queue depth; requests beyond it are answered `overloaded`.
    pub max_queue: usize,
    /// Default per-request deadline, milliseconds (requests may override).
    pub default_timeout_ms: u64,
    /// Requests longer than this many bytes are answered `too_large`
    /// without being parsed.
    pub max_request_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            cache_bytes: 64 << 20,
            max_queue: 256,
            default_timeout_ms: 30_000,
            max_request_bytes: 4 << 20,
        }
    }
}

impl ServeConfig {
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// Monotonic service counters (all responses ever produced, by status).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    overloaded: AtomicU64,
    too_large: AtomicU64,
    panics: AtomicU64,
    in_flight: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Request lines received (including rejected ones).
    pub requests: u64,
    /// Successful allocation responses.
    pub ok: u64,
    /// Structured error responses (parse, validation, run faults, panics).
    pub errors: u64,
    /// Requests answered `timeout`.
    pub timeouts: u64,
    /// Requests answered `overloaded`.
    pub overloaded: u64,
    /// Requests answered `too_large`.
    pub too_large: u64,
    /// Worker panics confined by `catch_unwind` (each also counts as one
    /// error response).
    pub panics: u64,
    /// Gauge: jobs a worker has dequeued and not yet answered. A job is
    /// in flight from the moment it leaves the queue, so `in_flight > 0`
    /// implies the queue had drained by that amount.
    pub in_flight: u64,
    /// Gauge: jobs waiting in the bounded queue right now.
    pub queue_depth: u64,
    /// Cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Cache lookups that computed.
    pub cache_misses: u64,
    /// Entries resident in the cache.
    pub cache_entries: u64,
    /// Bytes charged against the cache budget.
    pub cache_bytes: u64,
}

impl CountersSnapshot {
    /// Cache hit rate over all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

enum JobState {
    Pending,
    Cancelled,
    Done(String),
}

struct Job {
    req: Request,
    state: Mutex<JobState>,
    done: Condvar,
}

struct Inner {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    cache: Mutex<Cache>,
    counters: Counters,
    shutdown: AtomicBool,
}

/// Locks `m`, recovering from poisoning: the service's locks are never held
/// across request computation, so inner state behind a poisoned lock is
/// still consistent and one panicked worker must not wedge the server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running allocation service. Dropping it drains the queue and joins
/// the workers.
pub struct Service {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service").field("cfg", &self.inner.cfg).finish()
    }
}

impl Service {
    /// Starts the worker pool.
    pub fn start(cfg: ServeConfig) -> Self {
        let workers = cfg.effective_workers().max(1);
        let inner = Arc::new(Inner {
            cache: Mutex::new(Cache::new(cfg.cache_bytes)),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lsra-serve-{i}"))
                    .spawn(move || worker(&inner))
                    .expect("spawning service worker")
            })
            .collect();
        Service { inner, handles: Mutex::new(handles) }
    }

    /// True once a shutdown request was received (or [`Service::shutdown`]
    /// called); queued work still drains, new work is refused.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful drain: lets queued jobs finish, then joins every worker.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        let handles = std::mem::take(&mut *lock(&self.handles));
        for h in handles {
            let _ = h.join();
        }
    }

    /// A snapshot of the service counters and cache occupancy.
    pub fn counters(&self) -> CountersSnapshot {
        let c = &self.inner.counters;
        let (hits, misses, entries, bytes) = {
            let cache = lock(&self.inner.cache);
            (cache.hits(), cache.misses(), cache.len() as u64, cache.bytes() as u64)
        };
        let queue_depth = lock(&self.inner.queue).len() as u64;
        CountersSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            ok: c.ok.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            overloaded: c.overloaded.load(Ordering::Relaxed),
            too_large: c.too_large.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            queue_depth,
            cache_hits: hits,
            cache_misses: misses,
            cache_entries: entries,
            cache_bytes: bytes,
        }
    }

    /// Handles one request line, returning one response line.
    ///
    /// Every outcome is a structured JSON response — malformed requests,
    /// oversized requests, full queues, deadlines, and worker panics
    /// included — so a client never kills the conversation by sending one
    /// bad line. Blocks until the response is ready or the request's
    /// deadline passes, never on a full queue.
    pub fn call(&self, line: &str) -> String {
        let c = &self.inner.counters;
        c.requests.fetch_add(1, Ordering::Relaxed);
        if line.len() > self.inner.cfg.max_request_bytes {
            c.too_large.fetch_add(1, Ordering::Relaxed);
            return protocol::render_status("", "too_large");
        }
        let req = match protocol::parse_request(line) {
            Ok(ParsedLine::Stats { id }) => return self.stats_response(&id),
            Ok(ParsedLine::Shutdown { id }) => {
                self.inner.shutdown.store(true, Ordering::SeqCst);
                self.inner.queue_cv.notify_all();
                let mut w = JsonWriter::new();
                w.begin_object();
                w.field_str("id", &id);
                w.field_str("status", "ok");
                w.field_str("op", "shutdown");
                w.end_object();
                return w.finish();
            }
            Ok(ParsedLine::Alloc(req)) => req,
            Ok(ParsedLine::Lint(req)) => {
                // Lint is cheap and cacheless; answer inline (like stats)
                // with the same panic isolation the workers give alloc.
                if self.is_shutting_down() {
                    c.errors.fetch_add(1, Ordering::Relaxed);
                    return protocol::render_error(&req.id, "server is shutting down");
                }
                let result = catch_unwind(AssertUnwindSafe(|| protocol::run_lint(&req)));
                let (resp, is_ok) = match result {
                    Ok(Ok(resp)) => (resp, true),
                    Ok(Err(msg)) => (protocol::render_error(&req.id, &msg), false),
                    Err(p) => {
                        c.panics.fetch_add(1, Ordering::Relaxed);
                        let msg = format!("panic: {}", panic_message(p));
                        (protocol::render_error(&req.id, &msg), false)
                    }
                };
                let field = if is_ok { &c.ok } else { &c.errors };
                field.fetch_add(1, Ordering::Relaxed);
                return resp;
            }
            Err((id, msg)) => {
                c.errors.fetch_add(1, Ordering::Relaxed);
                return protocol::render_error(&id, &msg);
            }
        };
        if self.is_shutting_down() {
            c.errors.fetch_add(1, Ordering::Relaxed);
            return protocol::render_error(&req.id, "server is shutting down");
        }
        let timeout = req.timeout_ms.unwrap_or(self.inner.cfg.default_timeout_ms);
        let deadline = Instant::now() + Duration::from_millis(timeout);
        let job =
            Arc::new(Job { req: *req, state: Mutex::new(JobState::Pending), done: Condvar::new() });
        {
            let mut q = lock(&self.inner.queue);
            if q.len() >= self.inner.cfg.max_queue {
                c.overloaded.fetch_add(1, Ordering::Relaxed);
                return protocol::render_status(&job.req.id, "overloaded");
            }
            q.push_back(Arc::clone(&job));
        }
        self.inner.queue_cv.notify_one();
        let mut st = lock(&job.state);
        loop {
            if let JobState::Done(resp) = &*st {
                return resp.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                *st = JobState::Cancelled;
                c.timeouts.fetch_add(1, Ordering::Relaxed);
                return protocol::render_status(&job.req.id, "timeout");
            }
            let (guard, _) =
                job.done.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    fn stats_response(&self, id: &str) -> String {
        let s = self.counters();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("id", id);
        w.field_str("status", "ok");
        w.field_str("op", "stats");
        w.field_uint("requests", s.requests);
        w.field_uint("ok", s.ok);
        w.field_uint("errors", s.errors);
        w.field_uint("timeouts", s.timeouts);
        w.field_uint("overloaded", s.overloaded);
        w.field_uint("too_large", s.too_large);
        w.field_uint("panics", s.panics);
        w.field_uint("in_flight", s.in_flight);
        w.field_uint("queue_depth", s.queue_depth);
        w.field_uint("cache_hits", s.cache_hits);
        w.field_uint("cache_misses", s.cache_misses);
        w.field_uint("cache_entries", s.cache_entries);
        w.field_uint("cache_bytes", s.cache_bytes);
        w.end_object();
        w.finish()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker: dequeue, compute (through the cache), publish. Lives until
/// shutdown *and* an empty queue, so accepted work drains on shutdown.
fn worker(inner: &Inner) {
    let mut scratch = AllocScratch::default();
    loop {
        let job = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    // Counted while the queue lock is still held, so an
                    // observer never sees the job in neither place.
                    inner.counters.in_flight.fetch_add(1, Ordering::SeqCst);
                    break j;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = inner.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = if matches!(*lock(&job.state), JobState::Cancelled) {
            None
        } else {
            Some(handle(inner, &job.req, &mut scratch))
        };
        // Decremented before the response is published: once a caller has
        // its answer, the gauge no longer counts that job.
        inner.counters.in_flight.fetch_sub(1, Ordering::SeqCst);
        if let Some((response, is_ok)) = result {
            let mut st = lock(&job.state);
            if !matches!(*st, JobState::Cancelled) {
                let field = if is_ok { &inner.counters.ok } else { &inner.counters.errors };
                field.fetch_add(1, Ordering::Relaxed);
                *st = JobState::Done(response);
                job.done.notify_all();
            }
        }
    }
}

/// Computes one response, isolating panics to this request. Returns the
/// response line and whether it is a success.
fn handle(inner: &Inner, req: &Request, scratch: &mut AllocScratch) -> (String, bool) {
    if req.inject_sleep_ms > 0 {
        std::thread::sleep(Duration::from_millis(req.inject_sleep_ms));
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if req.inject_panic {
            panic!("injected panic (inject_panic)");
        }
        compute(inner, req, scratch)
    }));
    match result {
        Ok(Ok(resp)) => (resp, true),
        Ok(Err(msg)) => (protocol::render_error(&req.id, &msg), false),
        Err(p) => {
            inner.counters.panics.fetch_add(1, Ordering::Relaxed);
            (protocol::render_error(&req.id, &format!("panic: {}", panic_message(p))), false)
        }
    }
}

/// The cache-fronted execution path. Locks are held only around the cache
/// probe and insert, never across allocation.
fn compute(inner: &Inner, req: &Request, scratch: &mut AllocScratch) -> Result<String, String> {
    let (module, input, canonical) = match protocol::materialize(req) {
        Ok(x) => x,
        Err(e) => {
            lock(&inner.cache).note_miss();
            return Err(e);
        }
    };
    let key = protocol::cache_key(req, &canonical);
    if let Some(outcome) = lock(&inner.cache).get(&key) {
        return Ok(protocol::render_ok(&req.id, &outcome, req.emit_module));
    }
    match protocol::run_allocation(module, &input, req, scratch) {
        Ok(outcome) => {
            let resp = protocol::render_ok(&req.id, &outcome, req.emit_module);
            lock(&inner.cache).insert(key, outcome);
            Ok(resp)
        }
        Err(e) => {
            lock(&inner.cache).note_miss();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_service(workers: usize) -> Service {
        Service::start(ServeConfig {
            workers,
            cache_bytes: 1 << 20,
            max_queue: 8,
            default_timeout_ms: 10_000,
            max_request_bytes: 1 << 16,
        })
    }

    #[test]
    fn serves_and_caches_a_workload_request() {
        let s = small_service(2);
        let line = r#"{"id": "a", "workload": "wc", "emit_module": true}"#;
        let first = s.call(line);
        let second = s.call(line);
        assert_eq!(first, second, "cache hit must be byte-identical");
        let snap = s.counters();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.ok, 2);
    }

    #[test]
    fn lint_op_is_answered_inline() {
        let s = small_service(1);
        let resp = s.call(r#"{"id": "l", "op": "lint", "workload": "wc"}"#);
        assert!(resp.contains("\"op\": \"lint\""), "{resp}");
        assert!(resp.contains("\"status\": \"ok\""), "{resp}");
        let snap = s.counters();
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.cache_misses, 0, "lint responses are not cached");
        let err = s.call(r#"{"id": "e", "op": "lint", "program": "not a module"}"#);
        assert!(err.contains("\"status\": \"error\""), "{err}");
        assert!(err.contains("program:"), "{err}");
    }

    #[test]
    fn stats_and_shutdown_ops() {
        let s = small_service(1);
        let stats = s.call(r#"{"id": "s", "op": "stats"}"#);
        assert!(stats.contains("\"op\": \"stats\""), "{stats}");
        let bye = s.call(r#"{"id": "q", "op": "shutdown"}"#);
        assert!(bye.contains("\"op\": \"shutdown\""), "{bye}");
        assert!(s.is_shutting_down());
        let refused = s.call(r#"{"id": "late", "workload": "wc"}"#);
        assert!(refused.contains("shutting down"), "{refused}");
        s.shutdown();
    }
}

//! The service's telemetry surface: every counter, gauge, and histogram the
//! server maintains, plus the `--telemetry-log` span stream.
//!
//! [`ServerTelemetry`] owns one `lsra_telemetry::Registry` and a handle to
//! each registered metric. The hot paths in [`crate::service`] update the
//! handles directly (sharded counters, relaxed histogram records); the
//! `metrics` protocol op renders the registry in both exposition formats.
//!
//! The conservation invariant the whole layout is designed around:
//!
//! ```text
//! requests == ok + errors + timeouts + overloaded + too_large + inline
//! ```
//!
//! holds whenever the service is quiescent (`in_flight == 0` and
//! `queue_depth == 0`) — every accepted request line ends in exactly one of
//! the six terminal counters. `inline` covers `stats`/`metrics`/`shutdown`
//! responses, which consume a request without being allocations; `panics`
//! is supplementary (each confined panic also produces one `error`
//! response). Mid-flight the books are transiently open, which is why the
//! load generator quiesces through a drain barrier before asserting.
//!
//! [`SpanLog`] streams completed [`SpanRecord`]s as JSONL. When a slow
//! threshold is configured, any span over it additionally captures an
//! annotated decision trace by re-running the allocation through the traced
//! path — the production response already shipped; the re-run only feeds
//! the log.

use std::fs::File;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

use lsra_telemetry::{Counter, Gauge, Histogram, Registry, SpanRecord, Unit};
use lsra_trace::json::JsonWriter;
use lsra_trace::{annotate, RecordSink};

use crate::protocol::{self, Request};

/// Histogram metric names per allocation phase, index-aligned with
/// [`PHASE_NAMES`] (drift-guarded by a test below).
const PHASE_METRIC_NAMES: [&str; 6] = [
    "lsra_phase_order",
    "lsra_phase_liveness",
    "lsra_phase_lifetimes",
    "lsra_phase_scan",
    "lsra_phase_resolve",
    "lsra_phase_consistency",
];

/// Every metric the service maintains. See the module docs for the
/// conservation invariant over the counters.
pub struct ServerTelemetry {
    registry: Registry,
    /// Request lines received, including rejected ones.
    pub requests: Arc<Counter>,
    /// Successful `alloc`/`lint` responses.
    pub ok: Arc<Counter>,
    /// Structured error responses (parse, validation, run faults, panics).
    pub errors: Arc<Counter>,
    /// Requests answered `timeout`.
    pub timeouts: Arc<Counter>,
    /// Requests answered `overloaded`.
    pub overloaded: Arc<Counter>,
    /// Requests answered `too_large`.
    pub too_large: Arc<Counter>,
    /// `stats`/`metrics`/`shutdown` responses: requests that terminate
    /// inline without being allocations.
    pub inline: Arc<Counter>,
    /// Worker panics confined by `catch_unwind`.
    pub panics: Arc<Counter>,
    /// Cache lookups answered from the cache.
    pub cache_hits: Arc<Counter>,
    /// Cache lookups that computed (or failed before caching).
    pub cache_misses: Arc<Counter>,
    /// Jobs a worker has dequeued and not yet answered.
    pub in_flight: Arc<Gauge>,
    /// Jobs waiting in the bounded queue (synced at exposition time).
    pub queue_depth: Arc<Gauge>,
    /// Entries resident in the cache (synced at exposition time).
    pub cache_entries: Arc<Gauge>,
    /// Bytes charged against the cache budget (synced at exposition time).
    pub cache_bytes: Arc<Gauge>,
    /// Total `alloc`-op latency, accept → response handoff, every status.
    pub request_ns: Arc<Histogram>,
    /// Total latency of inline ops (`stats`, `metrics`, `lint`, …) — kept
    /// out of `request_ns` so monitoring polls don't skew alloc latency.
    pub inline_ns: Arc<Histogram>,
    /// Envelope JSON parse time.
    pub parse_ns: Arc<Histogram>,
    /// Queue wait, enqueue → worker dequeue (executed jobs only).
    pub queue_ns: Arc<Histogram>,
    /// Worker allocation time: materialize + cache probe + allocate.
    pub alloc_ns: Arc<Histogram>,
    /// Response rendering time in the worker.
    pub serialize_ns: Arc<Histogram>,
    /// Transport write time (TCP/stdio connections only).
    pub write_ns: Arc<Histogram>,
    /// Per-phase allocation breakdown, index-aligned with [`PHASE_NAMES`]
    /// (recorded only when the allocator timed its phases).
    pub phase_ns: Vec<Arc<Histogram>>,
}

impl Default for ServerTelemetry {
    fn default() -> Self {
        ServerTelemetry::new()
    }
}

impl ServerTelemetry {
    /// Builds the registry and registers every metric, in exposition order.
    pub fn new() -> Self {
        let mut r = Registry::new();
        let requests = r.counter("lsra_requests_total", "request lines received");
        let ok = r.counter("lsra_responses_ok_total", "successful alloc/lint responses");
        let errors = r.counter("lsra_responses_error_total", "structured error responses");
        let timeouts = r.counter("lsra_responses_timeout_total", "requests answered timeout");
        let overloaded =
            r.counter("lsra_responses_overloaded_total", "requests answered overloaded");
        let too_large = r.counter("lsra_responses_too_large_total", "requests answered too_large");
        let inline = r.counter(
            "lsra_responses_inline_total",
            "stats/metrics/shutdown responses answered inline",
        );
        let panics = r.counter("lsra_worker_panics_total", "worker panics confined per-request");
        let cache_hits = r.counter("lsra_cache_hits_total", "cache lookups answered from cache");
        let cache_misses = r.counter("lsra_cache_misses_total", "cache lookups that computed");
        let in_flight = r.gauge("lsra_in_flight", "jobs dequeued and not yet answered");
        let queue_depth = r.gauge("lsra_queue_depth", "jobs waiting in the bounded queue");
        let cache_entries = r.gauge("lsra_cache_entries", "entries resident in the cache");
        let cache_bytes = r.gauge("lsra_cache_bytes", "bytes charged against the cache budget");
        let ns = Unit::Nanoseconds;
        let request_ns =
            r.histogram("lsra_request", "alloc request latency, accept to response", ns);
        let inline_ns = r.histogram("lsra_inline", "inline op latency (stats/metrics/lint)", ns);
        let parse_ns = r.histogram("lsra_parse", "request envelope parse time", ns);
        let queue_ns = r.histogram("lsra_queue_wait", "queue wait before a worker dequeued", ns);
        let alloc_ns =
            r.histogram("lsra_alloc", "worker allocation time (materialize+probe+allocate)", ns);
        let serialize_ns = r.histogram("lsra_serialize", "response rendering time", ns);
        let write_ns = r.histogram("lsra_write", "transport write time", ns);
        let phase_ns = PHASE_METRIC_NAMES
            .iter()
            .map(|name| r.histogram(name, "allocation phase wall-clock", ns))
            .collect();
        ServerTelemetry {
            registry: r,
            requests,
            ok,
            errors,
            timeouts,
            overloaded,
            too_large,
            inline,
            panics,
            cache_hits,
            cache_misses,
            in_flight,
            queue_depth,
            cache_entries,
            cache_bytes,
            request_ns,
            inline_ns,
            parse_ns,
            queue_ns,
            alloc_ns,
            serialize_ns,
            write_ns,
            phase_ns,
        }
    }

    /// The Prometheus text exposition of every metric.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// The structured JSON exposition (exact nanoseconds, sparse buckets).
    pub fn write_json(&self, w: &mut JsonWriter) {
        self.registry.write_json(w);
    }

    /// Records a per-phase timing breakdown (seconds, as the allocator
    /// reports them) into the phase histograms.
    pub fn record_phases(&self, timings: &lsra_core::AllocTimings) {
        for (h, secs) in self.phase_ns.iter().zip(timings.seconds) {
            h.record(secs_to_ns(secs));
        }
    }
}

/// Seconds → whole nanoseconds, saturating (phase clocks are far below the
/// ~584-year overflow point; the clamp is for NaN/negative hygiene).
pub fn secs_to_ns(secs: f64) -> u64 {
    if secs.is_finite() && secs > 0.0 {
        (secs * 1e9) as u64
    } else {
        0
    }
}

/// The `--telemetry-log` JSONL stream of completed spans.
pub struct SpanLog {
    file: Mutex<File>,
    /// Spans with `total_ns` above this capture an annotated decision
    /// trace; `None` disables capture.
    slow_ns: Option<u64>,
}

impl SpanLog {
    /// Creates (truncating) the log file.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be created.
    pub fn create(path: &str, slow_ms: Option<u64>) -> Result<SpanLog, String> {
        let file = File::create(path).map_err(|e| format!("creating telemetry log {path}: {e}"))?;
        Ok(SpanLog {
            file: Mutex::new(file),
            slow_ns: slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
        })
    }

    /// True when slow-request trace capture is configured (the service only
    /// clones the request for spans that might need it).
    pub fn captures_slow(&self) -> bool {
        self.slow_ns.is_some()
    }

    /// Appends one span as a JSONL line, capturing a decision trace first
    /// when the span is over the slow threshold and its request is
    /// available.
    pub fn write(&self, mut record: SpanRecord, req: Option<&Request>) {
        if let (Some(slow), Some(req)) = (self.slow_ns, req) {
            if record.total_ns > slow {
                record.trace = Some(slow_trace(req));
            }
        }
        let line = record.render_jsonl();
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // A full disk must not take the serving path down; the span is
        // simply lost.
        let _ = f.write_all(line.as_bytes()).and_then(|()| f.write_all(b"\n"));
        let _ = f.flush();
    }
}

/// Re-runs `req`'s allocation through the traced path and renders the
/// annotated decision trace (the allocated IR with decisions interleaved,
/// before identity-move removal). Allocators without an instrumented path
/// get a note instead of a trace.
pub fn slow_trace(req: &Request) -> String {
    let (mut m, _input, _canonical) = match protocol::materialize(req) {
        Ok(x) => x,
        Err(e) => return format!("trace unavailable: {e}"),
    };
    let spec = &req.machine;
    let mut sink = RecordSink::default();
    match req.allocator.as_str() {
        "binpack" => {
            lsra_core::BinpackAllocator::new(lsra_core::BinpackConfig {
                workers: 1,
                ..Default::default()
            })
            .allocate_module_traced(&mut m, spec, &mut sink);
        }
        "two-pass" => {
            lsra_core::BinpackAllocator::new(lsra_core::BinpackConfig {
                workers: 1,
                ..lsra_core::BinpackConfig::two_pass()
            })
            .allocate_module_traced(&mut m, spec, &mut sink);
        }
        "ion" => {
            lsra_ion::IonAllocator.allocate_module_traced(&mut m, spec, &mut sink);
        }
        other => return format!("trace unavailable: `{other}` has no instrumented path"),
    }
    annotate(&m, &sink.events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_core::PHASE_NAMES;

    #[test]
    fn phase_metric_names_track_phase_names() {
        assert_eq!(PHASE_METRIC_NAMES.len(), PHASE_NAMES.len());
        for (metric, phase) in PHASE_METRIC_NAMES.iter().zip(PHASE_NAMES) {
            assert_eq!(metric.strip_prefix("lsra_phase_"), Some(phase), "{metric}");
        }
    }

    #[test]
    fn expositions_are_well_formed() {
        let tel = ServerTelemetry::new();
        tel.requests.inc();
        tel.request_ns.record(1_000_000);
        tel.record_phases(&lsra_core::AllocTimings { seconds: [1e-6; 6] });
        let text = tel.render_prometheus();
        assert!(text.contains("# TYPE lsra_requests_total counter"));
        assert!(text.contains("# TYPE lsra_request_seconds histogram"));
        assert!(text.contains("# TYPE lsra_phase_scan_seconds histogram"));
        let mut w = JsonWriter::new();
        tel.write_json(&mut w);
        lsra_trace::json::validate(&w.finish()).unwrap();
    }

    #[test]
    fn secs_to_ns_is_defensive() {
        assert_eq!(secs_to_ns(1.5e-3), 1_500_000);
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(f64::NAN), 0);
    }

    #[test]
    fn slow_trace_annotates_binpack_and_notes_uninstrumented() {
        let line = r#"{"id": "t", "workload": "wc"}"#;
        let crate::protocol::ParsedLine::Alloc(req) = protocol::parse_request(line).unwrap() else {
            panic!("not alloc")
        };
        let trace = slow_trace(&req);
        assert!(trace.contains("annotated decision trace"), "{trace}");
        let mut poletto = (*req).clone();
        poletto.allocator = "poletto".to_string();
        assert!(slow_trace(&poletto).contains("no instrumented path"));
    }
}

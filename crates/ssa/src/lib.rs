//! SSA construction and destruction for `lsra-ir`.
//!
//! The IR deliberately has no phi instruction (the paper's allocators never
//! need one), so SSA form lives in a *side table*: [`construct`] computes
//! dominance frontiers, inserts pruned phi nodes as [`PhiNode`] records,
//! and renames every definition in place to a fresh temporary. [`lower`]
//! goes back out of SSA by turning each block's phi column into one
//! *parallel copy* per predecessor edge and sequencing it with the same
//! resolver the allocators use for cross-edge repair
//! ([`lsra_core::sequentialize`]) — register swaps in a phi cycle and a
//! resolution-edge swap are the same problem, so they share the solution.
//!
//! The ion allocator runs [`to_ssa_and_back`] as its first phase: renaming
//! splits every multi-definition lifetime into single-definition pieces
//! (maximal live-range precision for bundle building), and the lowering's
//! copies are exactly the move-coalescing candidates its bundle merging
//! eats back up.
//!
//! All inserted copies carry [`SpillTag::ResolveMove`], so the symbolic
//! checker and the VM's dynamic counters keep treating the untagged
//! instruction stream as the original program.
//!
//! # Examples
//!
//! ```
//! use lsra_ir::{Cond, FunctionBuilder, MachineSpec, RegClass};
//!
//! let spec = MachineSpec::alpha_like();
//! let mut b = FunctionBuilder::new(&spec, "max", &[RegClass::Int, RegClass::Int]);
//! let (x, y) = (b.param(0), b.param(1));
//! let m = b.int_temp("m");
//! let (t, e, j) = (b.block(), b.block(), b.block());
//! let c = b.int_temp("c");
//! b.sub(c, x, y);
//! b.branch(Cond::Gt, c, t, e);
//! b.switch_to(t);
//! b.mov(m, x);
//! b.jump(j);
//! b.switch_to(e);
//! b.mov(m, y);
//! b.jump(j);
//! b.switch_to(j);
//! b.ret(Some(m.into()));
//! let mut f = b.finish();
//!
//! let stats = lsra_ssa::to_ssa_and_back(&mut f);
//! assert_eq!(stats.phis, 1); // `m` merges at the join block
//! assert!(f.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use lsra_analysis::{Dominators, Liveness, Order};
use lsra_core::{sequentialize_into, EdgeOp};
use lsra_ir::{BlockId, Function, Ins, Inst, PhysReg, Reg, SpillTag, Temp};

/// One phi node: at the top of `block`, the SSA name `dst` selects among
/// `srcs` by incoming edge. `orig` is the pre-SSA temporary the phi merges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhiNode {
    /// The join block the phi lives at.
    pub block: BlockId,
    /// The pre-SSA temporary being merged.
    pub orig: Temp,
    /// The SSA name the phi defines.
    pub dst: Temp,
    /// `(predecessor, SSA name at that predecessor's bottom)`, one entry per
    /// distinct predecessor that carries a defined value. A predecessor with
    /// no reaching definition contributes no entry (the value is undefined
    /// along that edge, so no copy may read it).
    pub srcs: Vec<(BlockId, Temp)>,
}

/// The SSA overlay produced by [`construct`]: phi side table plus the
/// renaming's provenance map.
#[derive(Clone, Debug, Default)]
pub struct SsaForm {
    /// Every phi node, grouped by block in block order.
    pub phis: Vec<PhiNode>,
    /// For each temporary index (including the fresh SSA names), the pre-SSA
    /// temporary it renames.
    pub orig_of: Vec<Temp>,
    /// Number of temporaries before renaming.
    pub num_orig: usize,
}

impl SsaForm {
    /// The pre-SSA temporary behind `t` (identity for original temps).
    pub fn orig(&self, t: Temp) -> Temp {
        self.orig_of[t.index()]
    }
}

/// Counters from a [`to_ssa_and_back`] round trip.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SsaStats {
    /// Phi nodes inserted.
    pub phis: usize,
    /// Fresh SSA names created by renaming (phi dsts included).
    pub renamed: usize,
    /// Copies emitted by the out-of-SSA lowering (cycle-break moves
    /// included).
    pub copies: usize,
    /// Critical edges split to place copies.
    pub split_edges: usize,
}

/// Dominance frontier of every block (Cooper–Harvey–Kennedy: for each block
/// with two or more predecessors, walk each predecessor up the idom chain).
/// Unreachable blocks get empty frontiers.
pub fn dominance_frontiers(
    f: &Function,
    preds: &[Vec<BlockId>],
    order: &Order,
    doms: &Dominators,
) -> Vec<Vec<BlockId>> {
    let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); f.num_blocks()];
    for b in f.block_ids() {
        if !order.is_reachable(b) || preds[b.index()].len() < 2 {
            continue;
        }
        let Some(idom) = doms.idom(b) else { continue };
        for &p in &preds[b.index()] {
            if !order.is_reachable(p) {
                continue;
            }
            let mut runner = p;
            while runner != idom {
                if !df[runner.index()].contains(&b) {
                    df[runner.index()].push(b);
                }
                match doms.idom(runner) {
                    Some(d) if d != runner => runner = d,
                    _ => break,
                }
            }
        }
    }
    df
}

/// Puts `f` into pruned SSA form: phi nodes (side table) wherever a liveness
/// merge requires one, and every definition renamed to a fresh temporary.
/// Instruction *count and order* are untouched — only operands change — so
/// positional pairing against the original program survives.
pub fn construct(f: &mut Function) -> SsaForm {
    let order = Order::compute(f);
    let doms = Dominators::compute(f, &order);
    let preds = f.compute_preds();
    let df = dominance_frontiers(f, &preds, &order, &doms);
    let live = Liveness::compute(f);
    let num_orig = f.num_temps();

    // Blocks containing a definition of each temp (reachable only).
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); num_orig];
    for b in f.block_ids() {
        if !order.is_reachable(b) {
            continue;
        }
        for ins in &f.block(b).insts {
            ins.inst.for_each_def(|r| {
                if let Reg::Temp(t) = r {
                    if def_blocks[t.index()].last() != Some(&b) {
                        def_blocks[t.index()].push(b);
                    }
                }
            });
        }
    }

    // Pruned phi insertion: iterated dominance frontier of the def blocks,
    // filtered by liveness (a phi is only needed where the merged value is
    // live into the join).
    let mut phis: Vec<PhiNode> = Vec::new();
    let mut phi_at: Vec<Vec<u32>> = vec![Vec::new(); f.num_blocks()];
    let mut placed = vec![u32::MAX; f.num_blocks()];
    let mut enqueued = vec![u32::MAX; f.num_blocks()];
    let mut work: Vec<BlockId> = Vec::new();
    #[allow(clippy::needless_range_loop)] // `ti` is the temp id, not just an index
    for ti in 0..num_orig {
        let t = Temp(ti as u32);
        // A def set whose every block has an empty frontier has an empty
        // iterated frontier: no phi anywhere (straight-line temps).
        if def_blocks[ti].iter().all(|&b| df[b.index()].is_empty()) {
            continue;
        }
        work.clear();
        for &b in &def_blocks[ti] {
            enqueued[b.index()] = ti as u32;
            work.push(b);
        }
        while let Some(b) = work.pop() {
            for &d in &df[b.index()] {
                if placed[d.index()] == ti as u32 || !live.is_live_in(d, t) {
                    continue;
                }
                placed[d.index()] = ti as u32;
                phi_at[d.index()].push(phis.len() as u32);
                phis.push(PhiNode { block: d, orig: t, dst: Temp(u32::MAX), srcs: Vec::new() });
                if enqueued[d.index()] != ti as u32 {
                    enqueued[d.index()] = ti as u32;
                    work.push(d);
                }
            }
        }
    }

    // Renaming: preorder walk of the dominator tree with one name stack per
    // original temp. Iterative — enter actions rewrite a block and push
    // names; leave actions pop what the block pushed.
    let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); f.num_blocks()];
    for b in f.block_ids() {
        if b == f.entry() {
            continue;
        }
        if let Some(d) = doms.idom(b) {
            if d != b {
                children[d.index()].push(b);
            }
        }
    }
    let mut orig_of: Vec<Temp> = (0..num_orig as u32).map(Temp).collect();
    let mut stack: Vec<Vec<Temp>> = vec![Vec::new(); num_orig];
    enum Step {
        Enter(BlockId),
        Leave(usize), // index into `pushed_frames`
    }
    let mut pushed_frames: Vec<Vec<Temp>> = Vec::new();
    let mut steps = vec![Step::Enter(f.entry())];
    while let Some(step) = steps.pop() {
        match step {
            Step::Leave(frame) => {
                for &o in pushed_frames[frame].iter().rev() {
                    stack[o.index()].pop();
                }
            }
            Step::Enter(b) => {
                let mut pushed: Vec<Temp> = Vec::new();
                // Phi definitions sit above the block's first instruction.
                for &pi in &phi_at[b.index()] {
                    let o = phis[pi as usize].orig;
                    let fresh = f.new_temp(f.temp_class(o), None);
                    orig_of.push(o);
                    phis[pi as usize].dst = fresh;
                    stack[o.index()].push(fresh);
                    pushed.push(o);
                }
                let n = f.block(b).insts.len();
                for k in 0..n {
                    f.block_mut(b).insts[k].inst.for_each_use_mut(|r| {
                        if let Reg::Temp(t) = *r {
                            // Operand temps are still pre-SSA names here: each
                            // block is rewritten exactly once.
                            if let Some(&cur) = stack[t.index()].last() {
                                *r = Reg::Temp(cur);
                            }
                        }
                    });
                    let mut def: Option<Temp> = None;
                    f.block(b).insts[k].inst.for_each_def(|r| {
                        if let Reg::Temp(t) = r {
                            def = Some(t);
                        }
                    });
                    if let Some(o) = def {
                        let fresh = f.new_temp(f.temp_class(o), None);
                        orig_of.push(o);
                        stack[o.index()].push(fresh);
                        pushed.push(o);
                        f.block_mut(b).insts[k].inst.for_each_def_mut(|r| {
                            if let Reg::Temp(_) = *r {
                                *r = Reg::Temp(fresh);
                            }
                        });
                    }
                }
                // Feed successor phis the names current at this bottom. A
                // Branch with both targets equal yields one successor (and
                // one edge), matching `compute_preds`.
                for s in f.succs(b) {
                    for &pi in &phi_at[s.index()] {
                        let phi = &mut phis[pi as usize];
                        if phi.srcs.iter().any(|&(p, _)| p == b) {
                            continue;
                        }
                        if let Some(&cur) = stack[phi.orig.index()].last() {
                            phi.srcs.push((b, cur));
                        }
                        // Empty stack: no definition dominates this edge, so
                        // the value is undefined along it — no source entry.
                    }
                }
                let frame = pushed_frames.len();
                pushed_frames.push(pushed);
                steps.push(Step::Leave(frame));
                for &c in children[b.index()].iter().rev() {
                    steps.push(Step::Enter(c));
                }
            }
        }
    }

    SsaForm { phis, orig_of, num_orig }
}

/// Sequences the parallel copy `moves` (`(dst, src)` temp pairs) into move
/// instructions, breaking register-style cycles through a fresh scratch
/// temporary. Reuses [`lsra_core::sequentialize_into`] by mapping the
/// (bounded) set of distinct temps onto synthetic physical indices.
fn sequence_copy(f: &mut Function, moves: &[(Temp, Temp)], stats: &mut SsaStats) -> Vec<Ins> {
    let mut out = Vec::new();
    let mut names: Vec<Temp> = Vec::new();
    for &(d, s) in moves {
        if d == s {
            continue;
        }
        for t in [d, s] {
            if !names.contains(&t) {
                names.push(t);
            }
        }
    }
    if names.is_empty() {
        return out;
    }
    if names.len() > 250 {
        // The synthetic-register trick caps at the u8 register index; huge
        // copy groups fall back to the always-correct two-step form.
        let mut staged: Vec<(Temp, Temp)> = Vec::new();
        for &(d, s) in moves {
            if d == s {
                continue;
            }
            let tmp = f.new_temp(f.temp_class(s), None);
            out.push(Ins::tagged(
                Inst::Mov { dst: Reg::Temp(tmp), src: Reg::Temp(s) },
                SpillTag::ResolveMove,
            ));
            staged.push((d, tmp));
        }
        for (d, tmp) in staged {
            out.push(Ins::tagged(
                Inst::Mov { dst: Reg::Temp(d), src: Reg::Temp(tmp) },
                SpillTag::ResolveMove,
            ));
        }
        stats.copies += out.len();
        return out;
    }
    let synth = |t: Temp| PhysReg::int(names.iter().position(|&x| x == t).unwrap() as u8);
    let ops: Vec<EdgeOp> = moves
        .iter()
        .filter(|&&(d, s)| d != s)
        // The op's `temp` is the copy's destination — unique per op, so the
        // cycle-break callback below can key scratch temps on it.
        .map(|&(d, s)| EdgeOp::Move { temp: d, src: synth(s), dst: synth(d) })
        .collect();
    let mut seq = Vec::new();
    let mut scratch_of: Vec<(Temp, Temp)> = Vec::new();
    sequentialize_into(&ops, &mut seq, |broken| {
        let tmp = f.new_temp(f.temp_class(broken), None);
        scratch_of.push((broken, tmp));
    });
    let real = |r: Reg| names[r.as_phys().expect("synthetic reg").index as usize];
    let scratch =
        |t: Temp| scratch_of.iter().find(|&&(k, _)| k == t).expect("scratch for cycle break").1;
    for (inst, _) in seq {
        let mov = match inst {
            Inst::Mov { dst, src } => {
                Inst::Mov { dst: Reg::Temp(real(dst)), src: Reg::Temp(real(src)) }
            }
            // Cycle breaks come back as spill traffic against the broken
            // op's `temp`; in temp-space they are plain moves through the
            // fresh scratch.
            Inst::SpillStore { src, temp } => {
                Inst::Mov { dst: Reg::Temp(scratch(temp)), src: Reg::Temp(real(src)) }
            }
            Inst::SpillLoad { dst, temp } => {
                Inst::Mov { dst: Reg::Temp(real(dst)), src: Reg::Temp(scratch(temp)) }
            }
            other => unreachable!("sequentialize emitted {other:?}"),
        };
        out.push(Ins::tagged(mov, SpillTag::ResolveMove));
    }
    stats.copies += out.len();
    out
}

/// Lowers the phi side table back to executable copies: one parallel copy
/// per (phi block, predecessor) edge, placed at the predecessor's bottom
/// when it has a single successor and on a freshly split edge otherwise.
pub fn lower(f: &mut Function, form: &SsaForm, stats: &mut SsaStats) {
    // Group phi sources by (join block, predecessor) edge, preserving block
    // order for determinism.
    type EdgeMoves = (BlockId, BlockId, Vec<(Temp, Temp)>);
    let mut groups: Vec<EdgeMoves> = Vec::new();
    for phi in &form.phis {
        for &(p, src) in &phi.srcs {
            match groups.iter_mut().find(|(blk, pred, _)| *blk == phi.block && *pred == p) {
                Some((_, _, moves)) => moves.push((phi.dst, src)),
                None => groups.push((phi.block, p, vec![(phi.dst, src)])),
            }
        }
    }
    for (succ, pred, moves) in groups {
        let seq = sequence_copy(f, &moves, stats);
        if seq.is_empty() {
            continue;
        }
        let at_block = if f.succs(pred).len() == 1 {
            pred
        } else {
            // Critical edge: the predecessor branches, so the copy needs its
            // own block. (Operands are still virtual, so clobbering is not a
            // concern — splitting keeps the copy off the other edge.)
            stats.split_edges += 1;
            lsra_analysis::split_edge(f, pred, succ)
        };
        let blk = f.block_mut(at_block);
        let at = blk.insts.len() - 1;
        blk.insts.splice(at..at, seq);
    }
}

/// Constructs SSA and immediately lowers it back out: the net effect is a
/// semantics-preserving rename that gives every value merge an explicit
/// parallel copy. This is ion's live-range pre-splitting phase; it is also
/// a complete round-trip test vehicle for the SSA machinery.
pub fn to_ssa_and_back(f: &mut Function) -> SsaStats {
    let form = construct(f);
    let mut stats = SsaStats {
        phis: form.phis.len(),
        renamed: f.num_temps() - form.num_orig,
        ..SsaStats::default()
    };
    lower(f, &form, &mut stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_ir::{Cond, FunctionBuilder, MachineSpec, RegClass};

    fn diamond() -> (MachineSpec, Function) {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "diamond", &[RegClass::Int]);
        let p = b.param(0);
        let x = b.int_temp("x");
        let (t, e, j) = (b.block(), b.block(), b.block());
        b.branch(Cond::Gt, p, t, e);
        b.switch_to(t);
        b.movi(x, 10);
        b.jump(j);
        b.switch_to(e);
        b.movi(x, 20);
        b.jump(j);
        b.switch_to(j);
        let y = b.int_temp("y");
        b.add(y, x, x);
        b.ret(Some(y.into()));
        let f = b.finish();
        (spec, f)
    }

    fn run(f: &Function, spec: &MachineSpec, arg: i64) -> i64 {
        let mut mb = lsra_ir::ModuleBuilder::new("m", 0);
        let callee = mb.add(f.clone());
        let mut wrapper = FunctionBuilder::new(spec, "main", &[]);
        let a = wrapper.int_temp("a");
        wrapper.movi(a, arg);
        let r = wrapper.call_func(callee, &[a.into()], Some(RegClass::Int)).unwrap();
        wrapper.ret(Some(r.into()));
        let main = mb.add(wrapper.finish());
        mb.entry(main);
        let m = mb.finish();
        let res = lsra_vm::run_module(&m, spec, &[]).expect("vm run");
        res.ret.expect("return value")
    }

    #[test]
    fn diamond_gets_one_phi_and_runs_identically() {
        let (spec, mut f) = diamond();
        let before_t = run(&f, &spec, 5);
        let before_e = run(&f, &spec, -5);
        let stats = to_ssa_and_back(&mut f);
        assert_eq!(stats.phis, 1, "x merges at the join");
        assert!(stats.copies >= 2, "each arm feeds the phi");
        f.validate().expect("lowered function validates");
        assert_eq!(run(&f, &spec, 5), before_t);
        assert_eq!(run(&f, &spec, -5), before_e);
    }

    #[test]
    fn renaming_leaves_instruction_count_in_place() {
        let (_, mut f) = diamond();
        let before: usize = f.num_insts();
        let form = construct(&mut f);
        assert_eq!(f.num_insts(), before, "construct only renames");
        // Every fresh temp maps back to an original.
        for (i, &o) in form.orig_of.iter().enumerate() {
            assert!(o.index() < form.num_orig, "temp {i} maps to fresh temp {o}");
        }
    }

    #[test]
    fn loop_carried_phi_round_trips() {
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "sum", &[RegClass::Int]);
        let n = b.param(0);
        let acc = b.int_temp("acc");
        b.movi(acc, 0);
        let (head, exit) = (b.block(), b.block());
        b.jump(head);
        b.switch_to(head);
        b.add(acc, acc, n);
        b.addi(n, n, -1);
        b.branch(Cond::Gt, n, head, exit);
        b.switch_to(exit);
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        let before = run(&f, &spec, 4);
        let stats = to_ssa_and_back(&mut f);
        assert!(stats.phis >= 2, "acc and n both merge at the loop head");
        assert!(stats.split_edges >= 1, "the back edge from the branch splits");
        f.validate().expect("valid");
        assert_eq!(run(&f, &spec, 4), before);
        assert_eq!(before, 10);
    }

    #[test]
    fn swap_cycle_breaks_through_scratch() {
        // Two values swapped each iteration force a phi cycle whose parallel
        // copy needs a cycle break.
        let spec = MachineSpec::alpha_like();
        let mut b = FunctionBuilder::new(&spec, "swap", &[RegClass::Int]);
        let n = b.param(0);
        let x = b.int_temp("x");
        let y = b.int_temp("y");
        b.movi(x, 1);
        b.movi(y, 100);
        let (head, body, exit) = (b.block(), b.block(), b.block());
        b.jump(head);
        b.switch_to(head);
        b.branch(Cond::Gt, n, body, exit);
        b.switch_to(body);
        let tx = b.int_temp("tx");
        b.mov(tx, x);
        b.mov(x, y);
        b.mov(y, tx);
        b.addi(n, n, -1);
        b.jump(head);
        b.switch_to(exit);
        let r = b.int_temp("r");
        b.sub(r, x, y);
        b.ret(Some(r.into()));
        let mut f = b.finish();
        let odd = run(&f, &spec, 3);
        let even = run(&f, &spec, 4);
        to_ssa_and_back(&mut f);
        f.validate().expect("valid");
        assert_eq!(run(&f, &spec, 3), odd);
        assert_eq!(run(&f, &spec, 4), even);
        assert_eq!(odd, -even);
    }

    #[test]
    fn all_inserted_copies_are_tagged() {
        let (_, mut f) = diamond();
        let untagged_before = f.count_insts(|_| true);
        to_ssa_and_back(&mut f);
        let untagged_after =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| i.tag == SpillTag::None).count();
        assert_eq!(untagged_before, untagged_after, "original stream unchanged");
        for blk in &f.blocks {
            for ins in &blk.insts {
                if ins.tag != SpillTag::None {
                    assert!(matches!(ins.inst, Inst::Mov { .. }), "phi lowering emits only moves");
                }
            }
        }
    }
}

//! Sharded monotonic counters and settable gauges.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Shard count; a power of two so the thread-slot modulo is a mask. Sixteen
/// covers the worker-pool sizes the service runs with while keeping a
/// counter at one cache line per shard (1 KiB each).
const SHARDS: usize = 16;

/// One shard, padded to its own cache line so concurrent increments from
/// different threads never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Round-robin assignment of threads to shards.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard slot, assigned on first use.
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
        }
        v
    })
}

/// A monotonic counter: increments land on the calling thread's shard,
/// reads sum every shard. Increments are wait-free and uncontended as long
/// as threads outnumber shards by less than the round-robin spread; reads
/// are O(shards) and may observe a value mid-update (monotonicity is still
/// guaranteed — shards only grow).
#[derive(Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A settable level (queue depth, in-flight jobs, cache occupancy). Signed
/// so a transiently unbalanced inc/dec pair is visible instead of wrapping.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds `n` (negative to decrement).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::SeqCst);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Sets the level outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::SeqCst);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_increments_sum_exactly() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_tracks_level() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(42);
        assert_eq!(g.get(), 42);
        g.add(-50);
        assert_eq!(g.get(), -8, "imbalance stays visible, no wrap");
    }
}

//! Log-linear latency histograms with exact mergeability.
//!
//! The bucket layout is HDR-style log-linear over `u64` values (by
//! convention nanoseconds): values below [`SUB`] (32) get one bucket each
//! (exact), and every power-of-two octave above that is split into 32
//! linear sub-buckets, so the relative bucket width never exceeds
//! 1/32 ≈ 3.1 %. With 64-bit values that is `32 + 59·32 = 1920` buckets
//! ([`BUCKETS`]) — 15 KiB of atomics per histogram, small enough to keep
//! one per latency stage.
//!
//! The crucial property is *exact mergeability*: two [`HistogramSnapshot`]s
//! over the same layout merge by bucket-wise addition, which is associative
//! and commutative (pinned by tests), and subtract the same way. A client
//! can therefore snapshot a live server before and after its run, diff the
//! two, and compute percentiles over exactly its own interval — no
//! streaming quantile sketch, no approximation beyond bucket width.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two octave; also the threshold below
/// which every value gets its own bucket.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`: 32 exact buckets, then 32
/// sub-buckets for each of the 59 octaves with most-significant bit 5..=63.
pub const BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * (SUB as usize);

/// The bucket index recording value `v`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = msb - SUB_BITS;
        let sub = (v >> octave) - SUB;
        SUB as usize + (octave as usize) * SUB as usize + sub as usize
    }
}

/// The smallest value landing in bucket `i`.
pub fn bucket_low(i: usize) -> u64 {
    if i < SUB as usize {
        i as u64
    } else {
        let rel = i - SUB as usize;
        let octave = (rel / SUB as usize) as u32;
        let sub = (rel % SUB as usize) as u64;
        (SUB + sub) << octave
    }
}

/// The largest value landing in bucket `i`.
pub fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(i + 1) - 1
    }
}

/// The number of distinct values bucket `i` covers.
pub fn bucket_width(i: usize) -> u64 {
    bucket_high(i).wrapping_sub(bucket_low(i)).wrapping_add(1)
}

/// A concurrent log-linear histogram. `record` is a single relaxed
/// fetch-add on the value's bucket plus count/sum/min/max updates; `snapshot`
/// reads every bucket without stopping writers (the snapshot is internally
/// consistent up to in-flight records, which land in the next snapshot).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the full state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a histogram's buckets, mergeable and subtractable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, [`BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Rebuilds a snapshot from a sparse `(bucket, count)` list, as carried
    /// by the JSON exposition. min/max are reconstructed at bucket
    /// resolution (the low edge of the lowest and the high edge of the
    /// highest non-empty bucket, clamped by nothing else).
    pub fn from_sparse(pairs: &[(usize, u64)], count: u64, sum: u64) -> Self {
        let mut s = HistogramSnapshot::empty();
        for &(i, c) in pairs {
            if i < BUCKETS && c > 0 {
                s.buckets[i] += c;
                s.min = s.min.min(bucket_low(i));
                s.max = s.max.max(bucket_high(i));
            }
        }
        s.count = count;
        s.sum = sum;
        s
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise addition. Associative and commutative: merging per-shard
    /// or per-interval snapshots in any order and grouping yields the same
    /// result (pinned by tests).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        for (a, b) in out.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        out.count += other.count;
        out.sum += other.sum;
        out.min = out.min.min(other.min);
        out.max = out.max.max(other.max);
        out
    }

    /// Bucket-wise subtraction: the interval delta between a later snapshot
    /// (`self`) and an earlier one of the same histogram. min/max cannot be
    /// un-merged exactly, so they are recomputed at bucket resolution from
    /// the surviving buckets.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for (i, ((a, b), o)) in
            self.buckets.iter().zip(&earlier.buckets).zip(out.buckets.iter_mut()).enumerate()
        {
            *o = a.saturating_sub(*b);
            if *o > 0 {
                out.min = out.min.min(bucket_low(i));
                out.max = out.max.max(bucket_high(i));
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) at bucket resolution: the high edge
    /// of the bucket holding the rank-`ceil(q·count)` value, clamped to the
    /// observed `[min, max]`. Exact for values below 32 (one value per
    /// bucket); within one bucket width (≤ 3.1 % relative) above. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs — the sparse form the
    /// JSON exposition carries.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_monotone() {
        // Every bucket's high edge is one below the next bucket's low edge,
        // and every value maps into the bucket whose range contains it.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_high(i) + 1, bucket_low(i + 1), "gap after bucket {i}");
        }
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
        for i in (0..BUCKETS).step_by(7) {
            assert_eq!(bucket_index(bucket_low(i)), i);
            assert_eq!(bucket_index(bucket_high(i)), i);
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_width(v as usize), 1);
        }
    }

    #[test]
    fn relative_width_bounded() {
        for i in SUB as usize..BUCKETS {
            let w = bucket_width(i) as f64;
            let lo = bucket_low(i) as f64;
            assert!(w / lo <= 1.0 / SUB as f64 + 1e-12, "bucket {i} too wide");
        }
    }
}

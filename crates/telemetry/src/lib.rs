//! Runtime telemetry primitives for the allocation service.
//!
//! PR 3's `lsra-trace` observes *allocation-time* decisions; this crate
//! observes the *serving* path at runtime: how many requests, how fast,
//! where the time went. It is deliberately small and dependency-free
//! (in-workspace it leans only on `lsra_trace::json::JsonWriter` for the
//! JSON exposition), and none of its state ever leaks into a response —
//! the service's byte-determinism suite pins that telemetry on and off
//! produce identical `alloc` response bytes.
//!
//! * [`counter`] — [`Counter`], a sharded monotonic counter (one padded
//!   atomic per thread-shard, summed on read, so hot-path increments never
//!   contend on one cache line), and [`Gauge`], a settable level.
//! * [`histogram`] — [`Histogram`], a log-linear HDR-style latency
//!   histogram over `u64` values (by convention nanoseconds): exact below
//!   32, then 32 linear sub-buckets per power of two (≤ 1/32 ≈ 3.1 %
//!   relative bucket width). Snapshots merge exactly — bucket-wise
//!   addition, associative and commutative, pinned by tests — and
//!   subtract, which is what lets a client take before/after snapshots of
//!   a live server and compute percentiles over just its own interval.
//! * [`registry`] — [`Registry`], an ordered name → metric table with
//!   Prometheus-style text exposition ([`Registry::render_prometheus`])
//!   and a structured JSON form ([`Registry::write_json`]) that carries
//!   the full sparse bucket array for client-side merging.
//! * [`span`] — [`SpanRecord`], one request's lifecycle (accept → parse →
//!   queue wait → allocate per-phase → serialize → write) with a
//!   deterministic sequence number, rendered as one JSONL object for the
//!   service's `--telemetry-log` stream.

#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{
    bucket_high, bucket_index, bucket_low, bucket_width, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::{Registry, Unit};
pub use span::SpanRecord;

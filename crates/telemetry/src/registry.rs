//! An ordered name → metric table with two exposition formats.
//!
//! The registry owns nothing exclusively: registering a metric returns an
//! [`Arc`] handle the instrumented code keeps for its hot-path updates,
//! while the registry holds a clone for rendering. Registration order is
//! render order, and duplicate names panic at registration time (a startup
//! bug, not a runtime condition).
//!
//! Two renderers:
//!
//! * [`Registry::render_prometheus`] — the text exposition format: `# HELP`
//!   / `# TYPE` comment lines, one sample line per counter/gauge, and the
//!   conventional `_bucket{le="…"}` / `_sum` / `_count` series per
//!   histogram. Nanosecond histograms render in **seconds** (suffix
//!   `_seconds`, values divided by 1e9) per Prometheus base-unit
//!   convention. The `le` bounds are a fixed ladder of powers of 4 from
//!   1024 ns to ~68.7 s; because those bounds align with bucket edges, each
//!   cumulative count is exact for values *strictly below* the bound
//!   (values exactly equal to a bound land one bucket up — a
//!   bucket-resolution approximation, always monotone).
//! * [`Registry::write_json`] — the in-house structured form, written with
//!   `lsra_trace::json::JsonWriter`. Values stay **exact integer
//!   nanoseconds**, and each histogram carries its sparse non-empty bucket
//!   list so a client can rebuild a [`HistogramSnapshot`] (via
//!   [`HistogramSnapshot::from_sparse`]), diff two polls, and compute
//!   percentiles over its own interval.

use std::sync::Arc;

use lsra_trace::json::JsonWriter;

use crate::counter::{Counter, Gauge};
use crate::histogram::{bucket_low, Histogram, HistogramSnapshot};

/// The unit of a histogram's recorded values; drives Prometheus rendering.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless values; rendered as-is.
    None,
    /// Nanoseconds; Prometheus output converts to seconds (base unit) and
    /// suffixes the metric name with `_seconds`. JSON keeps exact ns.
    Nanoseconds,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>, Unit),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    metric: Metric,
}

/// The ordered metric table. See the module docs.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

/// The `le` bounds (in ns) exported per histogram: powers of 4 from
/// 4^5 = 1.024 µs to 4^18 ≈ 68.7 s. All are powers of two, so each aligns
/// exactly with a log-linear bucket edge.
const EXPORT_BOUNDS_NS: [u64; 14] = [
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
    1 << 34,
    1 << 36,
];

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn push(&mut self, name: &'static str, help: &'static str, metric: Metric) {
        assert!(self.entries.iter().all(|e| e.name != name), "duplicate metric name {name:?}");
        self.entries.push(Entry { name, help, metric });
    }

    /// Registers a counter and returns the update handle.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Registers a gauge and returns the update handle.
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers a histogram and returns the update handle.
    pub fn histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        unit: Unit,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(name, help, Metric::Histogram(Arc::clone(&h), unit));
        h
    }

    /// The Prometheus text exposition of every registered metric, in
    /// registration order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.metric {
                Metric::Counter(c) => {
                    header(&mut out, e.name, e.help, "counter");
                    out.push_str(&format!("{} {}\n", e.name, c.get()));
                }
                Metric::Gauge(g) => {
                    header(&mut out, e.name, e.help, "gauge");
                    out.push_str(&format!("{} {}\n", e.name, g.get()));
                }
                Metric::Histogram(h, unit) => {
                    let snap = h.snapshot();
                    let (name, scale) = match unit {
                        Unit::Nanoseconds => (format!("{}_seconds", e.name), 1e-9),
                        Unit::None => (e.name.to_string(), 1.0),
                    };
                    header(&mut out, &name, e.help, "histogram");
                    let mut cum = 0u64;
                    let mut next = 0usize;
                    for (i, &c) in snap.buckets.iter().enumerate() {
                        while next < EXPORT_BOUNDS_NS.len()
                            && bucket_low(i) >= EXPORT_BOUNDS_NS[next]
                        {
                            emit_bucket(&mut out, &name, EXPORT_BOUNDS_NS[next], scale, cum);
                            next += 1;
                        }
                        cum += c;
                    }
                    while next < EXPORT_BOUNDS_NS.len() {
                        emit_bucket(&mut out, &name, EXPORT_BOUNDS_NS[next], scale, cum);
                        next += 1;
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
                    let sum = match unit {
                        Unit::Nanoseconds => format!("{:?}", snap.sum as f64 * scale),
                        Unit::None => format!("{}", snap.sum),
                    };
                    out.push_str(&format!("{name}_sum {sum}\n"));
                    out.push_str(&format!("{name}_count {}\n", snap.count));
                }
            }
        }
        out
    }

    /// Writes the structured JSON form into `w` as one object with
    /// `counters`, `gauges`, and `histograms` sub-objects. Histogram values
    /// are exact integer nanoseconds; `buckets` is the sparse
    /// `[index, count]` list (see the module docs).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for e in &self.entries {
            if let Metric::Counter(c) = &e.metric {
                w.field_uint(e.name, c.get());
            }
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for e in &self.entries {
            if let Metric::Gauge(g) = &e.metric {
                w.key(e.name);
                w.int(g.get());
            }
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for e in &self.entries {
            if let Metric::Histogram(h, _) = &e.metric {
                w.key(e.name);
                write_histogram_json(w, &h.snapshot());
            }
        }
        w.end_object();
        w.end_object();
    }
}

/// Writes one histogram snapshot as a JSON object (shared by the registry
/// exposition and tests).
pub fn write_histogram_json(w: &mut JsonWriter, snap: &HistogramSnapshot) {
    w.begin_object();
    w.field_uint("count", snap.count);
    w.field_uint("sum", snap.sum);
    w.field_uint("min", if snap.count == 0 { 0 } else { snap.min });
    w.field_uint("max", snap.max);
    w.field_float("mean", snap.mean());
    w.field_uint("p50", snap.quantile(0.50));
    w.field_uint("p90", snap.quantile(0.90));
    w.field_uint("p95", snap.quantile(0.95));
    w.field_uint("p99", snap.quantile(0.99));
    w.key("buckets");
    w.begin_array();
    for (i, c) in snap.nonzero() {
        w.begin_array();
        w.uint(i as u64);
        w.uint(c);
        w.end_array();
    }
    w.end_array();
    w.end_object();
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    // HELP text escaping per the exposition format: backslash and newline.
    let help = help.replace('\\', "\\\\").replace('\n', "\\n");
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

fn emit_bucket(out: &mut String, name: &str, bound_ns: u64, scale: f64, cum: u64) {
    if scale == 1.0 {
        out.push_str(&format!("{name}_bucket{{le=\"{bound_ns}\"}} {cum}\n"));
    } else {
        out.push_str(&format!("{name}_bucket{{le=\"{:?}\"}} {cum}\n", bound_ns as f64 * scale));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_trace::json::validate;

    #[test]
    fn prometheus_text_is_well_formed() {
        let mut r = Registry::new();
        let c = r.counter("t_requests", "total requests");
        let g = r.gauge("t_depth", "queue depth");
        let h = r.histogram("t_latency", "request latency", Unit::Nanoseconds);
        c.add(3);
        g.set(2);
        h.record(1_500);
        h.record(2_000_000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE t_requests counter\nt_requests 3\n"));
        assert!(text.contains("# TYPE t_depth gauge\nt_depth 2\n"));
        assert!(text.contains("# TYPE t_latency_seconds histogram\n"));
        assert!(text.contains("t_latency_seconds_count 2\n"));
        // 1500 ns is below the 4096 ns bound but above 1024.
        assert!(text.contains("t_latency_seconds_bucket{le=\"1.024e-6\"} 0\n"));
        assert!(text.contains("t_latency_seconds_bucket{le=\"+Inf\"} 2\n"));
        // Cumulative counts are monotone across the bound ladder.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone: {line}");
            last = v;
        }
    }

    #[test]
    fn json_form_validates_and_round_trips_buckets() {
        let mut r = Registry::new();
        let h = r.histogram("t_lat", "latency", Unit::Nanoseconds);
        for v in [5u64, 5, 700, 40_000, 1 << 33] {
            h.record(v);
        }
        let mut w = JsonWriter::new();
        r.write_json(&mut w);
        let doc = w.finish();
        validate(&doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        // The sparse list rebuilds the same distribution.
        let snap = h.snapshot();
        let rebuilt = HistogramSnapshot::from_sparse(&snap.nonzero(), snap.count, snap.sum);
        assert_eq!(rebuilt.buckets, snap.buckets);
        assert_eq!(rebuilt.quantile(0.5), snap.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        let mut r = Registry::new();
        let _ = r.counter("dup", "a");
        let _ = r.counter("dup", "b");
    }
}

//! Request-scoped span records.
//!
//! One [`SpanRecord`] describes a single request's full lifecycle through
//! the service: accept → parse → queue wait → allocate (per-phase) →
//! serialize → write. The service assigns each span a deterministic
//! sequence number (a process-wide atomic, so span streams from identical
//! request sequences line up run-to-run even though the durations differ)
//! and streams completed spans as JSONL via `--telemetry-log`.
//!
//! The per-phase breakdown reuses the allocator's own `AllocTimings`
//! clock; to keep this crate dependency-free below `lsra-trace` the record
//! stores the phases as `(name, ns)` pairs supplied by the caller rather
//! than importing the `Phase` enum.

use lsra_trace::json::JsonWriter;

/// One request's lifecycle. All durations are integer nanoseconds; stages
/// that did not happen for this request (e.g. no queue wait for an inline
/// `stats` call, no alloc phases on a cache hit) are simply zero or absent.
#[derive(Clone, Debug, Default)]
pub struct SpanRecord {
    /// Deterministic sequence number, assigned at accept in arrival order.
    pub seq: u64,
    /// The client-supplied request id (empty when the line didn't parse far
    /// enough to have one).
    pub id: String,
    /// The protocol op (`alloc`, `lint`, `stats`, `metrics`, `shutdown`),
    /// or `invalid` for lines that failed to parse.
    pub op: String,
    /// The response status (`ok`, `error`, `timeout`, `overloaded`, …).
    pub status: String,
    /// Envelope JSON parse time.
    pub parse_ns: u64,
    /// Time spent enqueued before a worker picked the job up.
    pub queue_ns: u64,
    /// Allocation time in the worker (cache probe time on a hit).
    pub alloc_ns: u64,
    /// Response rendering time.
    pub serialize_ns: u64,
    /// Transport write time (recorded by the connection loop after the
    /// response is on the wire).
    pub write_ns: u64,
    /// Wall time from accept to response handoff (excludes `write_ns`,
    /// which happens after).
    pub total_ns: u64,
    /// For `alloc` ops: whether the result came from the cache. Absent for
    /// other ops.
    pub cache: Option<bool>,
    /// Per-phase allocation breakdown as `(phase name, ns)`, present only
    /// when the allocator timed its phases (binpack/two-pass cache misses).
    pub phases: Vec<(&'static str, u64)>,
    /// For requests over the slow threshold: the annotated decision trace
    /// captured by re-running the allocation.
    pub trace: Option<String>,
}

impl SpanRecord {
    /// Renders the span as one JSONL line (no trailing newline).
    pub fn render_jsonl(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_uint("seq", self.seq);
        w.field_str("id", &self.id);
        w.field_str("op", &self.op);
        w.field_str("status", &self.status);
        w.field_uint("parse_ns", self.parse_ns);
        w.field_uint("queue_ns", self.queue_ns);
        w.field_uint("alloc_ns", self.alloc_ns);
        w.field_uint("serialize_ns", self.serialize_ns);
        w.field_uint("write_ns", self.write_ns);
        w.field_uint("total_ns", self.total_ns);
        if let Some(hit) = self.cache {
            w.key("cache");
            w.bool(hit);
        }
        if !self.phases.is_empty() {
            w.key("phases");
            w.begin_object();
            for (name, ns) in &self.phases {
                w.field_uint(name, *ns);
            }
            w.end_object();
        }
        if let Some(trace) = &self.trace {
            w.field_str("trace", trace);
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsra_trace::json::validate;

    #[test]
    fn renders_one_valid_jsonl_line() {
        let span = SpanRecord {
            seq: 7,
            id: "req \"42\"".to_string(),
            op: "alloc".to_string(),
            status: "ok".to_string(),
            parse_ns: 10,
            queue_ns: 20,
            alloc_ns: 30,
            serialize_ns: 5,
            write_ns: 3,
            total_ns: 65,
            cache: Some(false),
            phases: vec![("order", 4), ("scan", 26)],
            trace: Some("line1\nline2".to_string()),
        };
        let line = span.render_jsonl();
        assert!(!line.contains('\n'), "JSONL must be one line: {line}");
        validate(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(line.contains(r#""cache": false"#));
        assert!(line.contains(r#""scan": 26"#));
    }

    #[test]
    fn optional_fields_are_omitted() {
        let line = SpanRecord { op: "stats".to_string(), ..Default::default() }.render_jsonl();
        validate(&line).unwrap();
        assert!(!line.contains("cache"));
        assert!(!line.contains("phases"));
        assert!(!line.contains("trace"));
    }
}

//! Annotated IR dump: the allocated module's text with the decision trace
//! interleaved (regalloc2-style debug annotations).
//!
//! Each decision prints as a `;`-comment immediately above the instruction
//! it anchors to, so "why is there a reload here?" is answered in place:
//!
//! ```text
//! bb1:
//!       ; [5r] spill choice for t4 at 5r: r0:t1(prio 0.0312, ...) => evict r0
//!       ; [5r] evict t1 from r0 at 5r (pressure): stored
//!       ; [5r] second-chance reload t4 -> r0 at 5r
//!   r0 = reload t4 (slot 0)    ; EvictLoad
//!   r1 = add r1, r0
//! ```
//!
//! The mapping relies on two invariants: spill code inserted by the
//! allocator is tagged ([`SpillTag`]`!= None`) while original instructions
//! are untagged, and the scan emits a [`TraceEvent::BlockTop`] carrying
//! each block's first global instruction index. The module must therefore
//! be rendered *before* identity-move removal (which deletes untagged
//! moves), exactly like the symbolic checker.

use std::collections::BTreeMap;

use lsra_ir::{Function, Module, SpillTag};

use crate::event::TraceEvent;

/// Renders `m` (allocated, before identity-move removal) with the decision
/// trace `events` interleaved as comments.
pub fn annotate(m: &Module, events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!("module {} (annotated decision trace)\n", m.name));
    for chunk in split_functions(events) {
        let Some(f) = m.funcs.iter().find(|f| f.name == chunk.name) else { continue };
        annotate_function(&mut out, f, &chunk);
    }
    out
}

/// Events of one function, pre-sorted into anchor bins.
struct FuncChunk<'a> {
    name: String,
    /// Function-level header events (lifetimes, two-pass packing).
    header: Vec<&'a TraceEvent>,
    /// First global instruction index per block index.
    first_gi: BTreeMap<usize, u32>,
    /// Block-boundary events (restores, pessimizations) per block index.
    at_block: BTreeMap<usize, Vec<&'a TraceEvent>>,
    /// Decision events per global instruction index.
    at_gi: BTreeMap<u32, Vec<&'a TraceEvent>>,
    /// Resolution and dataflow events (no instruction anchor).
    trailer: Vec<&'a TraceEvent>,
}

fn split_functions(events: &[TraceEvent]) -> Vec<FuncChunk<'_>> {
    let mut chunks: Vec<FuncChunk<'_>> = Vec::new();
    let mut cur: Option<FuncChunk<'_>> = None;
    for ev in events {
        match ev {
            TraceEvent::FunctionBegin { name, .. } => {
                if let Some(c) = cur.take() {
                    chunks.push(c);
                }
                cur = Some(FuncChunk {
                    name: name.clone(),
                    header: Vec::new(),
                    first_gi: BTreeMap::new(),
                    at_block: BTreeMap::new(),
                    at_gi: BTreeMap::new(),
                    trailer: Vec::new(),
                });
            }
            TraceEvent::FunctionEnd { .. } => {
                if let Some(c) = cur.take() {
                    chunks.push(c);
                }
            }
            ev => {
                let Some(c) = cur.as_mut() else { continue };
                match ev {
                    TraceEvent::LifetimesBuilt { .. }
                    | TraceEvent::PackAssign { .. }
                    | TraceEvent::PackSpill { .. } => c.header.push(ev),
                    TraceEvent::BlockTop { block, first_gi } => {
                        c.first_gi.insert(block.index(), *first_gi);
                    }
                    TraceEvent::HoleRestore { block, .. } | TraceEvent::Pessimize { block, .. } => {
                        c.at_block.entry(block.index()).or_default().push(ev);
                    }
                    TraceEvent::EdgeOp { .. }
                    | TraceEvent::ConsistencyDone { .. }
                    | TraceEvent::Phase { .. } => c.trailer.push(ev),
                    // Pressure samples are too dense for an interleaved
                    // dump; the metrics report histograms them instead.
                    TraceEvent::Pressure { .. } => {}
                    ev => match ev.anchor_gi() {
                        Some(gi) => c.at_gi.entry(gi).or_default().push(ev),
                        None => c.trailer.push(ev),
                    },
                }
            }
        }
    }
    if let Some(c) = cur.take() {
        chunks.push(c);
    }
    chunks
}

fn annotate_function(out: &mut String, f: &Function, chunk: &FuncChunk<'_>) {
    out.push_str(&format!("\nfunc @{}:\n", f.name));
    for ev in &chunk.header {
        out.push_str(&format!("    ; {}\n", ev.describe()));
    }
    for b in f.block_ids() {
        out.push_str(&format!("{b}:\n"));
        for ev in chunk.at_block.get(&b.index()).into_iter().flatten() {
            out.push_str(&format!("      ; {}\n", ev.describe()));
        }
        let mut next_gi = chunk.first_gi.get(&b.index()).copied();
        for ins in &f.block(b).insts {
            // Untagged instructions are the original stream; their global
            // indices advance the annotation cursor. Tagged spill code was
            // inserted by the allocator (it *is* the decisions' output) and
            // prints without consuming an index.
            if ins.tag == SpillTag::None {
                if let Some(gi) = next_gi {
                    for ev in chunk.at_gi.get(&gi).into_iter().flatten() {
                        let pt = match ev.point() {
                            Some(p) => format!("[{p}] "),
                            None => String::new(),
                        };
                        out.push_str(&format!("      ; {pt}{}\n", ev.describe()));
                    }
                    next_gi = Some(gi + 1);
                }
            }
            out.push_str(&format!("  {}", f.display_inst(&ins.inst)));
            if ins.tag != SpillTag::None {
                out.push_str(&format!("    ; {:?}", ins.tag));
            }
            out.push('\n');
        }
    }
    if !chunk.trailer.is_empty() {
        out.push_str("    ; resolution:\n");
        for ev in &chunk.trailer {
            out.push_str(&format!("    ;   {}\n", ev.describe()));
        }
    }
}

//! Chrome `trace_event` export (loadable in Perfetto / `about://tracing`).
//!
//! The sink lays one allocation run out on a synthetic timeline: per-phase
//! wall-clock spans (from the allocator's `time_phases` instrumentation)
//! become complete events (`"ph": "X"`), each whole function becomes an
//! enclosing span, decision events become thread-scoped instants
//! (`"ph": "i"`) spread across the phase they occurred in, and register
//! pressure becomes a counter track (`"ph": "C"`). When timing is off, the
//! trace still loads: decisions are spaced one microsecond apart.

use crate::event::TraceEvent;
use crate::json::JsonWriter;
use crate::sink::TraceSink;
use crate::sinks::write_event_fields;

/// One finished entry on the timeline, microsecond timestamps.
#[derive(Clone, Debug)]
enum Entry {
    /// Complete event (`X`): a phase or whole-function span.
    Span { name: String, cat: &'static str, ts: f64, dur: f64 },
    /// Thread-scoped instant (`i`): one decision.
    Instant { ev: TraceEvent, ts: f64 },
    /// Counter sample (`C`): register pressure.
    Counter { ts: f64, int_regs: u32, float_regs: u32 },
}

/// Builds a Chrome `trace_event` JSON array from the event stream; call
/// [`ChromeSink::finish`] for the document.
#[derive(Clone, Debug, Default)]
pub struct ChromeSink {
    entries: Vec<Entry>,
    /// Decision events since the last phase boundary, waiting for the
    /// phase's duration to place them.
    pending: Vec<TraceEvent>,
    cursor_us: f64,
    func_start_us: f64,
    cur_fn: String,
}

impl ChromeSink {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeSink::default()
    }

    /// Places the pending decisions evenly across `[cursor, cursor + dur)`.
    fn flush_pending(&mut self, dur: f64) {
        let n = self.pending.len();
        for (i, ev) in self.pending.drain(..).enumerate() {
            let ts = self.cursor_us + dur * (i as f64 + 1.0) / (n as f64 + 1.0);
            match ev {
                TraceEvent::Pressure { int_regs, float_regs, .. } => {
                    self.entries.push(Entry::Counter { ts, int_regs, float_regs });
                }
                ev => self.entries.push(Entry::Instant { ev, ts }),
            }
        }
    }

    /// The finished `trace_event` document: a JSON array Perfetto accepts.
    pub fn finish(mut self) -> String {
        // Anything still pending (timing off, or events after the last
        // phase mark) gets microsecond spacing.
        if !self.pending.is_empty() {
            let dur = self.pending.len() as f64;
            self.flush_pending(dur);
            self.cursor_us += dur;
        }
        let mut w = JsonWriter::new();
        w.begin_array();
        for e in &self.entries {
            w.begin_object();
            match e {
                Entry::Span { name, cat, ts, dur } => {
                    w.field_str("name", name);
                    w.field_str("cat", cat);
                    w.field_str("ph", "X");
                    w.field_float("ts", *ts);
                    w.field_float("dur", *dur);
                }
                Entry::Instant { ev, ts } => {
                    w.field_str("name", ev.kind());
                    w.field_str("cat", "decision");
                    w.field_str("ph", "i");
                    w.field_str("s", "t");
                    w.field_float("ts", *ts);
                    w.key("args");
                    w.begin_object();
                    write_event_fields(&mut w, ev);
                    w.end_object();
                }
                Entry::Counter { ts, int_regs, float_regs } => {
                    w.field_str("name", "register pressure");
                    w.field_str("ph", "C");
                    w.field_float("ts", *ts);
                    w.key("args");
                    w.begin_object();
                    w.field_uint("int", *int_regs as u64);
                    w.field_uint("float", *float_regs as u64);
                    w.end_object();
                }
            }
            w.field_uint("pid", 1);
            w.field_uint("tid", 1);
            w.end_object();
        }
        w.end_array();
        w.finish()
    }
}

impl TraceSink for ChromeSink {
    fn event(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::FunctionBegin { name, .. } => {
                self.cur_fn = name.clone();
                self.func_start_us = self.cursor_us;
            }
            TraceEvent::Phase { name, seconds } => {
                // Spans shorter than the timestamp resolution still render.
                let dur = (seconds * 1e6).max(0.01);
                self.flush_pending(dur);
                self.entries.push(Entry::Span {
                    name: (*name).to_string(),
                    cat: "phase",
                    ts: self.cursor_us,
                    dur,
                });
                self.cursor_us += dur;
            }
            TraceEvent::FunctionEnd { name } => {
                if !self.pending.is_empty() {
                    let dur = self.pending.len() as f64;
                    self.flush_pending(dur);
                    self.cursor_us += dur;
                }
                self.entries.push(Entry::Span {
                    name: format!("@{name}"),
                    cat: "function",
                    ts: self.func_start_us,
                    dur: (self.cursor_us - self.func_start_us).max(0.01),
                });
            }
            ev => self.pending.push(ev.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FitTier;
    use crate::json::validate;
    use lsra_analysis::Point;
    use lsra_ir::{PhysReg, Temp};

    #[test]
    fn trace_is_a_valid_event_array() {
        let mut sink = ChromeSink::new();
        sink.event(&TraceEvent::FunctionBegin { name: "m".into(), temps: 2, blocks: 1, insts: 3 });
        sink.event(&TraceEvent::Assign {
            temp: Temp(0),
            reg: PhysReg::int(0),
            at: Point::read(0),
            tier: FitTier::Sufficient,
            free_until: Point(40),
            lifetime_end: Point(20),
        });
        sink.event(&TraceEvent::Pressure { gi: 0, int_regs: 1, float_regs: 0 });
        sink.event(&TraceEvent::Phase { name: "scan", seconds: 0.001 });
        sink.event(&TraceEvent::FunctionEnd { name: "m".into() });
        let doc = sink.finish();
        validate(&doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        assert!(doc.contains("\"ph\": \"X\""), "phase span missing: {doc}");
        assert!(doc.contains("\"ph\": \"i\""), "instant missing: {doc}");
        assert!(doc.contains("\"ph\": \"C\""), "pressure counter missing: {doc}");
        assert!(doc.contains("\"name\": \"@m\""), "function span missing: {doc}");
    }
}

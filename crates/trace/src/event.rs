//! The structured event vocabulary of the allocator's decision trace.
//!
//! Every variant of [`TraceEvent`] is one decision (or one structural
//! marker) of the second-chance binpacking pipeline, carrying *why* the
//! decision went the way it did: a spill records every candidate the
//! eviction heuristic considered and the priority that lost; an assignment
//! records which §2.2/§2.5 preference tier won; an eviction records what
//! happened to the value (stored, store-suppressed, dead in a hole, or
//! rescued by an early second chance). Events are plain owned data — a sink
//! may buffer them across the whole allocation without borrowing the
//! allocator.

use lsra_analysis::Point;
use lsra_ir::{BlockId, PhysReg, Temp};

/// Which preference tier of the allocation heuristic satisfied a request
/// (§2.2 smallest sufficient hole; §2.5 insufficiently large holes).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FitTier {
    /// A hole covering the temporary's whole remaining lifetime (tier 0,
    /// smallest such hole wins).
    Sufficient,
    /// A *register* hole cut short only by a convention (call clobber or
    /// precolored use); the temporary will be evicted when it expires
    /// (tier 1, largest wins).
    InsufficientRegHole,
    /// A *lifetime* hole of another temporary too small for the requester —
    /// the last resort that keeps high pressure satisfiable (tier 2).
    InsufficientTempHole,
}

impl FitTier {
    /// Short lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FitTier::Sufficient => "sufficient",
            FitTier::InsufficientRegHole => "insufficient-reg-hole",
            FitTier::InsufficientTempHole => "insufficient-temp-hole",
        }
    }
}

/// One register the eviction heuristic (§2.3) considered and scored.
#[derive(Clone, Debug, PartialEq)]
pub struct SpillCandidate {
    /// The register holding the candidate victim.
    pub reg: PhysReg,
    /// The temporary that would be evicted.
    pub occupant: Temp,
    /// The victim's next linear reference (`None`: the value only flows
    /// around a back edge).
    pub next_ref: Option<Point>,
    /// The loop-depth weight of that reference.
    pub weight: f64,
    /// `weight / (distance + 1)` — lowest priority is evicted.
    pub priority: f64,
}

/// What happened to an evicted value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EvictAction {
    /// A spill store was inserted.
    Stored,
    /// The store was suppressed: register and memory home were known
    /// consistent (§2.3).
    StoreSuppressed,
    /// The temporary was inside one of its lifetime holes — it held no
    /// value, so nothing was saved.
    HoleNoStore,
    /// Early second chance (§2.5): the value moved to another register
    /// instead of memory.
    EarlyMove(PhysReg),
}

/// Outcome of the §2.5 move-coalescing check at a move instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CoalesceOutcome {
    /// The destination was bound to the source register.
    Coalesced,
    /// The destination already lived in the source register.
    AlreadyThere,
    /// The destination already had a location (not a fresh temporary).
    NotFresh,
    /// Destination class differs from the source register's class.
    ClassMismatch,
    /// The source register's hole does not cover the destination's
    /// lifetime.
    HoleTooSmall,
}

impl CoalesceOutcome {
    /// Short lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CoalesceOutcome::Coalesced => "coalesced",
            CoalesceOutcome::AlreadyThere => "already-there",
            CoalesceOutcome::NotFresh => "not-fresh",
            CoalesceOutcome::ClassMismatch => "class-mismatch",
            CoalesceOutcome::HoleTooSmall => "hole-too-small",
        }
    }
}

/// Where the ion allocator cut a live-range bundle when it failed to place
/// it whole.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SplitKind {
    /// The bundle spanned several blocks and was cut into per-block pieces.
    BlockBoundary,
    /// A single-block bundle was cut at the largest gap between uses.
    UseGap,
}

impl SplitKind {
    /// Short lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SplitKind::BlockBoundary => "block-boundary",
            SplitKind::UseGap => "use-gap",
        }
    }
}

/// One repair operation on a CFG edge during resolution (§2.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResolveOp {
    /// Register-to-register move (sequenced as part of a parallel copy).
    Move {
        /// Temporary being moved.
        temp: Temp,
        /// Source register at the predecessor's bottom.
        src: PhysReg,
        /// Destination register at the successor's top.
        dst: PhysReg,
    },
    /// Reload from the memory home.
    Load {
        /// Temporary being loaded.
        temp: Temp,
        /// Destination register.
        dst: PhysReg,
    },
    /// Store to the memory home because the locations disagree.
    Store {
        /// Temporary being stored.
        temp: Temp,
        /// Source register.
        src: PhysReg,
    },
    /// Store inserted by the `USED_C` consistency patch: some path from the
    /// successor exploits register/memory consistency that does not hold at
    /// this predecessor (§2.4).
    ConsistencyStore {
        /// Temporary being stored.
        temp: Temp,
        /// Source register.
        src: PhysReg,
    },
    /// A swap cycle in the parallel copy was broken through memory.
    CycleBreak {
        /// Temporary spilled to break the cycle.
        temp: Temp,
    },
}

/// One structured event from the allocation pipeline.
///
/// Events arrive in deterministic order for a given module and
/// configuration: function by function (linear order), block by block,
/// instruction by instruction. No event carries wall-clock data except
/// [`TraceEvent::Phase`], which is only emitted when per-phase timing is
/// enabled — so a trace taken with timing off is byte-reproducible.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Allocation of one function begins.
    FunctionBegin {
        /// Function name.
        name: String,
        /// Register candidates (temporaries).
        temps: usize,
        /// Basic blocks before allocation.
        blocks: usize,
        /// Instructions before allocation.
        insts: usize,
    },
    /// Allocation of the named function finished.
    FunctionEnd {
        /// Function name.
        name: String,
    },
    /// Lifetime/hole construction finished (§2.1).
    LifetimesBuilt {
        /// Temporaries with at least one live segment.
        live_temps: usize,
        /// Total live segments across all temporaries.
        segments: usize,
        /// Total lifetime holes (gaps between segments).
        holes: usize,
    },
    /// One wall-clock phase of the allocator completed. Only emitted when
    /// `BinpackConfig::time_phases` is on; carries nondeterministic seconds.
    Phase {
        /// Phase name (one of `lsra_core::PHASE_NAMES`).
        name: &'static str,
        /// Wall-clock seconds attributed to the phase.
        seconds: f64,
    },
    /// The scan entered a block.
    BlockTop {
        /// The block.
        block: BlockId,
        /// Global linear index of its first instruction.
        first_gi: u32,
    },
    /// A hole-displaced live-in temporary got its old register back at a
    /// block boundary (the binpacking container reclaiming its bin).
    HoleRestore {
        /// The block whose top the restore happened at.
        block: BlockId,
        /// Restored temporary.
        temp: Temp,
        /// Its reclaimed register.
        reg: PhysReg,
    },
    /// A live-in temporary with no location was pessimistically assumed to
    /// be in its memory home (§2.4 will satisfy the assumption).
    Pessimize {
        /// The block whose top the assumption was made at.
        block: BlockId,
        /// The temporary assumed in memory.
        temp: Temp,
    },
    /// Register pressure sampled at one instruction (occupied registers
    /// holding a live value, per class).
    Pressure {
        /// Global linear instruction index.
        gi: u32,
        /// Occupied integer registers.
        int_regs: u32,
        /// Occupied float registers.
        float_regs: u32,
    },
    /// A temporary was packed into a register hole.
    Assign {
        /// The temporary.
        temp: Temp,
        /// The register it was bound to.
        reg: PhysReg,
        /// The point of the request.
        at: Point,
        /// Which preference tier the hole satisfied.
        tier: FitTier,
        /// How long the hole lasts.
        free_until: Point,
        /// The temporary's remaining lifetime end (what a sufficient hole
        /// must cover).
        lifetime_end: Point,
    },
    /// No hole fit: the eviction heuristic scored every occupied register
    /// of the class and spilled the lowest-priority victim (§2.3). The
    /// candidate list records the distances/weights that lost.
    SpillChoice {
        /// The temporary that needed a register.
        for_temp: Temp,
        /// The point of the request.
        at: Point,
        /// Every candidate considered, in register order.
        candidates: Vec<SpillCandidate>,
        /// The register chosen for eviction (`None`: no candidate was
        /// evictable and the allocator fell back to an insufficient hole).
        chosen: Option<PhysReg>,
    },
    /// A register's occupant was evicted.
    Evict {
        /// The register.
        reg: PhysReg,
        /// The evicted temporary.
        temp: Temp,
        /// The point of the eviction.
        at: Point,
        /// True when forced by a convention (register hole expiry: call
        /// clobber or precolored use, §2.5) rather than pressure.
        convention: bool,
        /// What happened to the value.
        action: EvictAction,
    },
    /// Second chance (§2.3): a spilled temporary was reloaded at its next
    /// use and stays in the register until evicted again.
    Reload {
        /// The reloaded temporary.
        temp: Temp,
        /// The register it was reloaded into.
        reg: PhysReg,
        /// The use's read slot.
        at: Point,
    },
    /// Second chance at a definition (§2.3): the next reference to a
    /// spilled temporary was a write, so it got a register and the store
    /// was postponed (often forever).
    DefRebind {
        /// The redefined temporary.
        temp: Temp,
        /// The register it was bound to.
        reg: PhysReg,
        /// The definition's write slot.
        at: Point,
    },
    /// The §2.5 move-coalescing check ran at a move instruction.
    CoalesceCheck {
        /// The move's destination temporary.
        dst: Temp,
        /// The move's (already rewritten) source register.
        src: PhysReg,
        /// The move's write slot.
        at: Point,
        /// What the check decided.
        outcome: CoalesceOutcome,
    },
    /// One repair operation on a CFG edge during resolution (§2.4).
    EdgeOp {
        /// Edge source (CFG predecessor).
        pred: BlockId,
        /// Edge target (CFG successor).
        succ: BlockId,
        /// The operation.
        op: ResolveOp,
    },
    /// The `USED_C` consistency dataflow converged.
    ConsistencyDone {
        /// Iterations to the fixed point.
        iterations: u32,
    },
    /// Two-pass comparator: a whole lifetime was packed into a register.
    PackAssign {
        /// The temporary.
        temp: Temp,
        /// The register its whole lifetime occupies.
        reg: PhysReg,
    },
    /// Two-pass comparator: a whole lifetime was spilled to memory.
    PackSpill {
        /// The spilled temporary.
        temp: Temp,
    },
    /// Two-pass comparator: an assigned lifetime was unassigned to make
    /// room for the point lifetimes of spilled references.
    PackUnassign {
        /// The victim whose whole lifetime moved to memory.
        temp: Temp,
        /// The instruction that needed the scratch registers.
        gi: u32,
    },
    /// Ion: a live-range bundle that could not be placed whole was split.
    SplitBundle {
        /// The temporary the bundle belongs to.
        temp: Temp,
        /// The cut point (top of a block, or the `before` slot of a use).
        at: Point,
        /// Where the cut was made.
        kind: SplitKind,
    },
    /// Ion: a placed bundle was evicted to make room for a heavier one.
    EvictBundle {
        /// The temporary whose bundle lost its register.
        temp: Temp,
        /// The register it lost.
        reg: PhysReg,
        /// Start of the evicting bundle's first range.
        at: Point,
    },
}

impl TraceEvent {
    /// Stable lower-snake-case kind name (the `"ev"` field of the JSONL
    /// form and the Chrome instant-event name).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FunctionBegin { .. } => "function_begin",
            TraceEvent::FunctionEnd { .. } => "function_end",
            TraceEvent::LifetimesBuilt { .. } => "lifetimes_built",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::BlockTop { .. } => "block_top",
            TraceEvent::HoleRestore { .. } => "hole_restore",
            TraceEvent::Pessimize { .. } => "pessimize",
            TraceEvent::Pressure { .. } => "pressure",
            TraceEvent::Assign { .. } => "assign",
            TraceEvent::SpillChoice { .. } => "spill_choice",
            TraceEvent::Evict { .. } => "evict",
            TraceEvent::Reload { .. } => "reload",
            TraceEvent::DefRebind { .. } => "def_rebind",
            TraceEvent::CoalesceCheck { .. } => "coalesce_check",
            TraceEvent::EdgeOp { .. } => "edge_op",
            TraceEvent::ConsistencyDone { .. } => "consistency_done",
            TraceEvent::PackAssign { .. } => "pack_assign",
            TraceEvent::PackSpill { .. } => "pack_spill",
            TraceEvent::PackUnassign { .. } => "pack_unassign",
            TraceEvent::SplitBundle { .. } => "split_bundle",
            TraceEvent::EvictBundle { .. } => "evict_bundle",
        }
    }

    /// One human-readable line describing the event (no trailing newline).
    pub fn describe(&self) -> String {
        match self {
            TraceEvent::FunctionBegin { name, temps, blocks, insts } => {
                format!("function @{name}: {temps} temps, {blocks} blocks, {insts} insts")
            }
            TraceEvent::FunctionEnd { name } => format!("end @{name}"),
            TraceEvent::LifetimesBuilt { live_temps, segments, holes } => {
                format!("lifetimes: {live_temps} live temps, {segments} segments, {holes} holes")
            }
            TraceEvent::Phase { name, seconds } => {
                format!("phase {name}: {:.3} ms", seconds * 1e3)
            }
            TraceEvent::BlockTop { block, first_gi } => {
                format!("{block}: first inst {first_gi}")
            }
            TraceEvent::HoleRestore { block, temp, reg } => {
                format!("restore {temp} -> {reg} (hole ended at top of {block})")
            }
            TraceEvent::Pessimize { block, temp } => {
                format!("pessimize {temp} -> mem at top of {block}")
            }
            TraceEvent::Pressure { gi, int_regs, float_regs } => {
                format!("pressure at inst {gi}: {int_regs} int, {float_regs} float")
            }
            TraceEvent::Assign { temp, reg, at, tier, free_until, lifetime_end } => {
                // The scan models an unoccupied register as a hole ending
                // at the sentinel `Point(u32::MAX)`.
                let until = if free_until.0 == u32::MAX {
                    "end".to_string()
                } else {
                    free_until.to_string()
                };
                format!(
                    "assign {temp} -> {reg} at {at} ({} hole, free until {until}, \
                     lifetime ends {lifetime_end})",
                    tier.name()
                )
            }
            TraceEvent::SpillChoice { for_temp, at, candidates, chosen } => {
                let mut s = format!("spill choice for {for_temp} at {at}:");
                if candidates.is_empty() {
                    s.push_str(" no evictable candidate");
                }
                for c in candidates {
                    let next = match c.next_ref {
                        Some(p) => format!("{p}"),
                        None => "none".to_string(),
                    };
                    s.push_str(&format!(
                        " {}:{}(prio {:.4}, w {}, next {next})",
                        c.reg, c.occupant, c.priority, c.weight
                    ));
                }
                match chosen {
                    Some(r) => s.push_str(&format!(" => evict {r}")),
                    None => s.push_str(" => fall back to insufficient hole"),
                }
                s
            }
            TraceEvent::Evict { reg, temp, at, convention, action } => {
                let why = if *convention { "convention" } else { "pressure" };
                let act = match action {
                    EvictAction::Stored => "stored".to_string(),
                    EvictAction::StoreSuppressed => "store suppressed (consistent)".to_string(),
                    EvictAction::HoleNoStore => "no store (in hole)".to_string(),
                    EvictAction::EarlyMove(r) => format!("early second chance -> {r}"),
                };
                format!("evict {temp} from {reg} at {at} ({why}): {act}")
            }
            TraceEvent::Reload { temp, reg, at } => {
                format!("second-chance reload {temp} -> {reg} at {at}")
            }
            TraceEvent::DefRebind { temp, reg, at } => {
                format!("def rebind {temp} -> {reg} at {at} (store postponed)")
            }
            TraceEvent::CoalesceCheck { dst, src, at, outcome } => {
                format!("coalesce {dst} with {src} at {at}: {}", outcome.name())
            }
            TraceEvent::EdgeOp { pred, succ, op } => {
                let body = match op {
                    ResolveOp::Move { temp, src, dst } => format!("move {temp}: {src} -> {dst}"),
                    ResolveOp::Load { temp, dst } => format!("load {temp} -> {dst}"),
                    ResolveOp::Store { temp, src } => format!("store {temp} from {src}"),
                    ResolveOp::ConsistencyStore { temp, src } => {
                        format!("consistency store {temp} from {src}")
                    }
                    ResolveOp::CycleBreak { temp } => {
                        format!("break swap cycle through memory for {temp}")
                    }
                };
                format!("edge {pred}->{succ}: {body}")
            }
            TraceEvent::ConsistencyDone { iterations } => {
                format!("USED_C dataflow converged in {iterations} iteration(s)")
            }
            TraceEvent::PackAssign { temp, reg } => {
                format!("pack whole lifetime {temp} -> {reg}")
            }
            TraceEvent::PackSpill { temp } => format!("pack whole lifetime {temp} -> memory"),
            TraceEvent::PackUnassign { temp, gi } => {
                format!("unassign {temp} for point lifetimes at inst {gi}")
            }
            TraceEvent::SplitBundle { temp, at, kind } => {
                format!("split bundle of {temp} at {at} ({})", kind.name())
            }
            TraceEvent::EvictBundle { temp, reg, at } => {
                format!("evict bundle of {temp} from {reg} (for a bundle at {at})")
            }
        }
    }

    /// The linear point the event is anchored at, when it has one.
    pub fn point(&self) -> Option<Point> {
        match self {
            TraceEvent::Assign { at, .. }
            | TraceEvent::SpillChoice { at, .. }
            | TraceEvent::Evict { at, .. }
            | TraceEvent::Reload { at, .. }
            | TraceEvent::DefRebind { at, .. }
            | TraceEvent::CoalesceCheck { at, .. }
            | TraceEvent::SplitBundle { at, .. }
            | TraceEvent::EvictBundle { at, .. } => Some(*at),
            _ => None,
        }
    }

    /// The global instruction index the event is anchored at: derived from
    /// [`TraceEvent::point`] (a boundary point `B_i` anchors at `i`), or
    /// carried directly by per-instruction events.
    pub fn anchor_gi(&self) -> Option<u32> {
        match self {
            TraceEvent::Pressure { gi, .. } => Some(*gi),
            TraceEvent::PackUnassign { gi, .. } => Some(*gi),
            // Point layout (see `lsra_analysis::lifetimes`): read(i) = 4i+4,
            // write(i) = 4i+6, before(i) = 4i+3 — all map to i via (p-3)/4.
            _ => self.point().map(|p| p.0.saturating_sub(3) / 4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_maps_points_to_instructions() {
        let ev = TraceEvent::Reload { temp: Temp(0), reg: PhysReg::int(0), at: Point::read(7) };
        assert_eq!(ev.anchor_gi(), Some(7));
        let ev = TraceEvent::Assign {
            temp: Temp(0),
            reg: PhysReg::int(0),
            at: Point::write(7),
            tier: FitTier::Sufficient,
            free_until: Point(100),
            lifetime_end: Point(90),
        };
        assert_eq!(ev.anchor_gi(), Some(7));
        let ev = TraceEvent::Evict {
            reg: PhysReg::int(1),
            temp: Temp(2),
            at: Point::before(7),
            convention: true,
            action: EvictAction::Stored,
        };
        assert_eq!(ev.anchor_gi(), Some(7));
    }

    #[test]
    fn kinds_are_distinct_for_decision_events() {
        let kinds = [
            TraceEvent::Reload { temp: Temp(0), reg: PhysReg::int(0), at: Point(4) }.kind(),
            TraceEvent::Evict {
                reg: PhysReg::int(0),
                temp: Temp(0),
                at: Point(4),
                convention: false,
                action: EvictAction::Stored,
            }
            .kind(),
            TraceEvent::SpillChoice {
                for_temp: Temp(0),
                at: Point(4),
                candidates: vec![],
                chosen: None,
            }
            .kind(),
            TraceEvent::CoalesceCheck {
                dst: Temp(0),
                src: PhysReg::int(0),
                at: Point(4),
                outcome: CoalesceOutcome::Coalesced,
            }
            .kind(),
            TraceEvent::EdgeOp {
                pred: BlockId(0),
                succ: BlockId(1),
                op: ResolveOp::CycleBreak { temp: Temp(0) },
            }
            .kind(),
        ];
        let mut unique = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}

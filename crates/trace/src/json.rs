//! A small escaping-safe JSON writer (and syntax checker), shared by every
//! machine-readable output in the workspace: the JSONL and Chrome-trace
//! sinks, the metrics report, and the benchmark harness's
//! `BENCH_alloc_time.json`.
//!
//! The workspace deliberately has no serde dependency; before this module,
//! each JSON producer hand-rolled its formatting and none escaped strings —
//! a workload or function name containing `"` or `\` produced invalid
//! output. [`JsonWriter`] centralises comma placement and escaping;
//! [`validate`] is a strict syntax checker used by tests and the fuzz/CI
//! smoke paths to prove emitted documents parse.

use std::fmt::Write as _;

/// Escapes `s` as JSON string *contents* (no surrounding quotes) into
/// `out`: `"`, `\`, and control characters become escape sequences.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The escaped form of `s`, quotes included.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Reverses [`escape_into`] on string *contents*; `None` on a malformed
/// escape. (Only the escapes the writer produces plus `\/`, `\b`, `\f`, and
/// `\uXXXX` are understood — enough to round-trip any writer output.)
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'u' => {
                let hex: String = (0..4).map(|_| it.next()).collect::<Option<_>>()?;
                let v = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(v)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// What the writer is inside of, for comma placement.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Ctx {
    Object,
    Array,
}

/// An append-only JSON document builder with automatic comma placement and
/// mandatory string escaping.
///
/// ```
/// use lsra_trace::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.string("say \"hi\"");
/// w.key("xs");
/// w.begin_array();
/// w.uint(1);
/// w.uint(2);
/// w.end_array();
/// w.end_object();
/// let doc = w.finish();
/// assert_eq!(doc, r#"{"name": "say \"hi\"", "xs": [1, 2]}"#);
/// lsra_trace::json::validate(&doc).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    stack: Vec<Ctx>,
    /// A value has already been written at the current nesting level.
    has_value: bool,
    /// A key was just written; the next value follows `: ` with no comma.
    after_key: bool,
}

impl JsonWriter {
    /// An empty document.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// The finished document text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed object/array");
        self.buf
    }

    /// Bytes written so far (for inspection mid-build).
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    fn pre_value(&mut self) {
        if self.after_key {
            self.after_key = false;
        } else if self.has_value {
            self.buf.push_str(", ");
        }
        self.has_value = true;
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.stack.push(Ctx::Object);
        self.has_value = false;
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        debug_assert_eq!(self.stack.pop(), Some(Ctx::Object));
        self.buf.push('}');
        self.has_value = true;
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.stack.push(Ctx::Array);
        self.has_value = false;
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        debug_assert_eq!(self.stack.pop(), Some(Ctx::Array));
        self.buf.push(']');
        self.has_value = true;
    }

    /// Writes an object key (escaped); the next call writes its value.
    pub fn key(&mut self, k: &str) {
        debug_assert_eq!(self.stack.last(), Some(&Ctx::Object));
        if self.has_value {
            self.buf.push_str(", ");
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\": ");
        self.has_value = true;
        self.after_key = true;
    }

    /// Writes a string value (escaped).
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, s);
        self.buf.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Writes a signed integer value.
    pub fn int(&mut self, v: i64) {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Writes a float value (shortest round-trip form; non-finite values
    /// become `null`, which JSON requires).
    pub fn float(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            // `{:?}` guarantees a decimal point or exponent, so the value
            // reads back as a float, not an integer.
            let _ = write!(self.buf, "{v:?}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.pre_value();
        self.buf.push_str("null");
    }

    /// Convenience: `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Convenience: `key` + unsigned value.
    pub fn field_uint(&mut self, k: &str, v: u64) {
        self.key(k);
        self.uint(v);
    }

    /// Convenience: `key` + float value.
    pub fn field_float(&mut self, k: &str, v: f64) {
        self.key(k);
        self.float(v);
    }
}

/// Strictly checks that `s` is one complete JSON value (objects, arrays,
/// strings, numbers, `true`/`false`/`null`; trailing whitespace allowed).
///
/// # Errors
///
/// Returns a byte offset and message for the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                expect(b, i, b':')?;
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(format!("expected a value at byte {i}")),
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*i) == Some(&c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {i}", c as char))
    }
}

fn literal(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'"')?;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {i}"));
                            }
                            *i += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control character at byte {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotes_and_backslashes_round_trip() {
        // The satellite regression: workload and function names containing
        // `"` and `\` must escape to valid JSON and unescape back exactly.
        for name in [r#"fn "quoted""#, r"path\to\fn", "tab\there", "\"\\\"", "mixed \\\" end"] {
            let q = quote(name);
            validate(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
            let inner = &q[1..q.len() - 1];
            assert_eq!(unescape(inner).as_deref(), Some(name), "round-trip of {name:?}");
        }
    }

    #[test]
    fn writer_builds_valid_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("workload", "we\"ird\\name");
        w.key("entries");
        w.begin_array();
        for k in 0..3 {
            w.begin_object();
            w.field_uint("k", k);
            w.field_float("v", 0.5 * k as f64);
            w.key("flag");
            w.bool(k == 1);
            w.end_object();
        }
        w.end_array();
        w.key("nothing");
        w.null();
        w.end_object();
        let doc = w.finish();
        validate(&doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        assert!(doc.contains(r#""workload": "we\"ird\\name""#));
    }

    #[test]
    fn floats_are_rereadable() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(1.0);
        w.float(0.1);
        w.float(f64::NAN);
        w.end_array();
        let doc = w.finish();
        validate(&doc).unwrap();
        assert_eq!(doc, "[1.0, 0.1, null]");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"\\x\"",
            "01x",
            "{} extra",
            "nul",
            "\"unterminated",
            "[1 2]",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
        for good in ["{}", "[]", "3.5e-2", "-0", "\"a\\u00e9b\"", "  [null, true]  "] {
            validate(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }
}

//! Structured observability for the linear-scan allocators.
//!
//! The allocator core emits [`TraceEvent`]s at every decision point —
//! lifetime construction, bin assignment, spill choice (with the full
//! candidate set and each loser's heuristic distance), eviction,
//! second-chance reload, coalesce check, resolution edge op, consistency
//! store — into a [`TraceSink`]. The default [`NoopSink`] is disabled, so
//! an untraced run pays one predictable branch per potential event and
//! builds no payloads; traced and untraced runs produce byte-identical
//! allocations (pinned by the determinism suite).
//!
//! Consumers of the stream:
//! - [`LogSink`]: human-readable decision log.
//! - [`JsonlSink`]: one JSON object per event per line, machine-parseable.
//! - [`ChromeSink`]: Chrome `trace_event` JSON, loadable in Perfetto.
//! - [`RecordSink`] + [`annotate`]: the allocated IR with decisions
//!   interleaved as comments (regalloc2-style).
//! - [`MetricsSink`]: counters and fixed-bucket histograms per function
//!   (register pressure, hole-fit rate, spill reasons, resolution op mix).
//!
//! The crate also owns the repo's one JSON writer ([`json::JsonWriter`]):
//! escaping-safe, no dependencies, shared by the sinks, `lsra bench`, and
//! the benchmark harness.

#![warn(missing_docs)]

pub mod annotate;
pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod sinks;

pub use annotate::annotate;
pub use chrome::ChromeSink;
pub use event::{
    CoalesceOutcome, EvictAction, FitTier, ResolveOp, SpillCandidate, SplitKind, TraceEvent,
};
pub use json::JsonWriter;
pub use metrics::{
    FunctionMetrics, Histogram, MetricsSink, ModuleMetrics, QualityLintSummary, VerifyNativeSummary,
};
pub use sink::{NoopSink, RecordSink, TraceSink};
pub use sinks::{JsonlSink, LogSink};
